"""The chase: materializing universal solutions.

Given a source instance ``I`` and a mapping ``M``, the chase produces the
canonical universal solution ``J*`` — the paper's Example 1 instance
``{Manager(Alice, ⊥1), Manager(Bob, ⊥2)}`` — by firing each st-tgd for
each premise binding, inventing fresh labelled nulls for existential
variables, and then firing target dependencies (egds / target tgds) to a
fixpoint.

Two st-tgd chase variants are provided:

* ``NAIVE`` (a.k.a. oblivious): fire every tgd once per distinct premise
  binding, always inventing fresh nulls.  Produces the *canonical*
  universal solution; deterministic.
* ``STANDARD`` (a.k.a. restricted): fire only when the conclusion is not
  already witnessed.  Produces a (possibly smaller) universal solution.

Egd steps unify values, preferring constants; unifying two distinct
constants raises :class:`ChaseFailure` (the mapping has no solution).
Target-tgd steps are restricted-chase and guarded by a step limit, with
:func:`~repro.mapping.dependencies.is_weakly_acyclic` available as a
static termination guarantee.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..budget import Budget, BudgetExceeded
from ..faults import fault_point
from ..logic.evaluation import (
    Binding,
    evaluate,
    evaluate_delta,
    evaluate_premise_ids,
    ground_atoms,
    premise_ids_eligible,
    satisfiable,
)
from ..logic.terms import Const, Var
from ..obs import get_registry, get_tracer
from ..options import DEFAULT_MAX_STEPS, ExchangeOptions
from ..provenance.store import NOOP, ProvenanceStore, resolve_provenance
from ..relational.columnar import ColumnStore, width_code
from ..relational.homomorphism import core as core_of
from ..relational.instance import Fact, Instance, Row
from ..relational.schema import AttributeType, Schema
from ..relational.values import (
    NullFactory,
    Value,
    is_constant,
    max_null_label,
    value_sort_key,
)
from .dependencies import (
    Egd,
    PositionCycle,
    TargetDependency,
    TargetTgd,
    weak_acyclicity_witness,
)
from .sttgd import SchemaMapping, StTgd


class ChaseVariant(enum.Enum):
    """Which st-tgd firing discipline to use."""

    NAIVE = "naive"
    STANDARD = "standard"


class ChaseFailure(Exception):
    """The chase failed: an egd required two distinct constants to be equal.

    ``statistics`` carries the partial :class:`ChaseStatistics` of the
    failing run, so traces of failed exchanges are not lost.
    """

    statistics: "ChaseStatistics | None" = None


class ChaseNonTermination(Exception):
    """The target-dependency chase exceeded its step limit.

    Like :class:`ChaseFailure`, carries partial ``statistics``; when the
    target tgds fail the weak-acyclicity test, ``witness`` holds the
    offending :class:`~repro.mapping.dependencies.PositionCycle` (the
    same cycle ``repro lint`` reports as RA101).  ``partial`` holds the
    facts chased before the cap tripped, so the service layer
    (:mod:`repro.service`) can degrade to a
    :class:`~repro.service.PartialSolution` instead of crashing.
    """

    statistics: "ChaseStatistics | None" = None
    witness: "PositionCycle | None" = None
    partial: "Instance | None" = None


@dataclass
class ChaseStatistics:
    """Counters describing one chase run.

    The dataclass is the run-local view; :meth:`publish` folds the
    counters into the global :class:`~repro.obs.MetricsRegistry` under
    ``chase.*`` names at the end of every run (successful or not), so
    the observability layer and the per-run view stay one source of
    truth apart from timing.
    """

    tgd_firings: int = 0
    egd_firings: int = 0
    target_tgd_firings: int = 0
    nulls_created: int = 0
    rounds: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (the JSON-able, drift-proof view)."""
        return {
            "tgd_firings": self.tgd_firings,
            "egd_firings": self.egd_firings,
            "target_tgd_firings": self.target_tgd_firings,
            "nulls_created": self.nulls_created,
            "rounds": self.rounds,
        }

    def publish(self, registry=None) -> None:
        """Fold these counters into *registry* (default: the global one)."""
        registry = registry if registry is not None else get_registry()
        for name, value in self.as_dict().items():
            if value:
                registry.counter(f"chase.{name}").inc(value)

    def __repr__(self) -> str:
        fields = self.as_dict()
        inner = ", ".join(
            f"{name.replace('_firings', '').replace('_created', '')}={value}"
            for name, value in fields.items()
        )
        return f"ChaseStatistics({inner})"


@dataclass
class ChaseResult:
    """The outcome of a chase: the solution instance plus statistics.

    ``provenance`` is the store the run recorded into — a
    :class:`~repro.provenance.ProvenanceLog` when provenance was enabled,
    the shared no-op otherwise.
    """

    solution: Instance
    statistics: ChaseStatistics = field(default_factory=ChaseStatistics)
    provenance: ProvenanceStore = NOOP


def _resolve_limits(
    options: ExchangeOptions | None,
    budget: Budget | None,
) -> tuple[int, Budget | None]:
    """Fold an :class:`~repro.options.ExchangeOptions` into the effective
    ``(max_steps, budget)`` pair shared by :func:`chase` and
    :func:`chase_target_dependencies`.  The pre-ExchangeOptions step-cap
    keywords (``max_target_steps=`` / ``max_steps=``) are gone — passing
    them is a ``TypeError`` now."""
    if options is not None:
        return options.max_steps, budget if budget is not None else options.budget()
    return DEFAULT_MAX_STEPS, budget


def chase(
    mapping: SchemaMapping,
    source: Instance,
    variant: ChaseVariant = ChaseVariant.NAIVE,
    *,
    options: ExchangeOptions | None = None,
    budget: Budget | None = None,
    provenance: ProvenanceStore | bool | None = None,
) -> ChaseResult:
    """Chase *source* with *mapping*, returning a universal solution.

    Limits come from *options* (an
    :class:`~repro.options.ExchangeOptions`): ``options.max_steps``
    bounds the target-dependency phase
    (:class:`ChaseNonTermination` past it) and
    ``options.deadline`` / ``options.max_facts`` build a per-request
    :class:`~repro.budget.Budget` checked cooperatively at every chase
    step (:class:`~repro.budget.BudgetExceeded` past either).  A
    pre-built *budget* can be passed directly (the service layer shares
    one budget across phases this way).  The pre-ExchangeOptions
    ``max_target_steps`` keyword was removed — passing it is a
    ``TypeError`` (see README "Migrating to ExchangeOptions").

    The st-tgd phase runs once (st-tgds cannot re-fire: their premises
    read only the source).  The target-dependency phase iterates egd and
    target-tgd steps to a fixpoint, bounded by the step cap.

    On failure the partial statistics are attached to the exception
    (``exc.statistics``) and published to the metrics registry before
    re-raising; :class:`~repro.budget.BudgetExceeded` and
    :class:`ChaseNonTermination` additionally carry ``exc.partial`` —
    the facts chased so far — so callers can degrade gracefully.

    Lineage recording follows ``options.provenance`` (or an explicit
    *provenance* store, which wins): every tgd firing and egd rewrite is
    recorded so the result's facts can be explained and replayed.  On a
    budget/step failure the partially recorded store is attached to the
    exception as ``exc.provenance``.
    """
    max_steps, budget = _resolve_limits(options, budget)
    if provenance is None and options is not None:
        provenance = options.provenance
    provenance = resolve_provenance(provenance)
    stats = ChaseStatistics()
    factory = NullFactory()
    source_store = source.columnar_store
    if source_store is not None:
        # Answering from the store keeps lazily decoded shard instances
        # lazy — scanning source.values() would force the value table.
        factory.reserve_through(source_store.max_labeled_null())
    else:
        factory.reserve_through(max_null_label(source.values()))
    tracer = get_tracer()
    target: Instance | None = None

    try:
        with tracer.span(
            "chase", variant=variant.value, source_facts=source.size()
        ) as span:
            with tracer.span("chase.st_tgds", tgds=len(mapping.tgds)):
                # The id-space fast path covers the common dispatch —
                # NAIVE, unbudgeted, no lineage, no target-dependency
                # phase to feed — and otherwise declines, leaving the
                # value-space engine (and its validation errors) intact.
                if (
                    variant is ChaseVariant.NAIVE
                    and budget is None
                    and not provenance.enabled
                    and not mapping.target_dependencies
                ):
                    target = _chase_st_tgds_ids(mapping, source, factory, stats)
                if target is None:
                    target_facts = _chase_st_tgds(
                        mapping.tgds, source, variant, factory, stats, budget,
                        provenance,
                    )
                    target = Instance(mapping.target, target_facts)

            if mapping.target_dependencies:
                with tracer.span(
                    "chase.target_dependencies",
                    dependencies=len(mapping.target_dependencies),
                ):
                    target = _chase_target_dependencies(
                        target,
                        mapping.target_dependencies,
                        factory,
                        stats,
                        max_steps,
                        budget,
                        provenance,
                    )
            span.set(target_facts=target.size(), **stats.as_dict())
    except BudgetExceeded as exc:
        exc.statistics = stats
        if exc.partial is None:
            # The st-tgd phase has no schema at hand; it leaves the raw
            # fact list on the exception and we promote it here.
            facts = exc.partial_facts if exc.partial_facts is not None else []
            exc.partial = Instance(mapping.target, facts)
        exc.provenance = provenance if provenance.enabled else None
        stats.publish()
        raise
    except (ChaseFailure, ChaseNonTermination) as exc:
        exc.statistics = stats
        exc.provenance = provenance if provenance.enabled else None
        stats.publish()
        raise
    stats.publish()
    return ChaseResult(target, stats, provenance)


def _canonical_bindings(bindings: Iterable[Binding]) -> list[Binding]:
    """Sort bindings into a deterministic firing order.

    Replaces the old sort-by-``repr``-of-everything hack with a cheap
    canonical key: variables ordered by name, values by
    :func:`~repro.relational.values.value_sort_key` (no string building
    for the common scalar kinds).
    """
    items = list(bindings)
    if len(items) <= 1:
        return items
    variables = sorted({v for b in items for v in b}, key=lambda v: v.name)
    absent = (-1, "", -1)

    def key(binding: Binding) -> tuple:
        return tuple(
            value_sort_key(binding[v]) if v in binding else absent
            for v in variables
        )

    items.sort(key=key)
    return items


def _chase_st_tgds_ids(
    mapping: SchemaMapping,
    source: Instance,
    factory: NullFactory,
    stats: ChaseStatistics,
) -> Instance | None:
    """NAIVE st-tgd chase entirely in id space, or ``None`` when ineligible.

    When the source carries a column store, premise bindings already
    come back as integer ids (:func:`evaluate_premise_ids`); this path
    keeps them that way all the way into the solution — conclusion rows
    are id tuples appended to per-relation lists, fresh nulls are bare
    labels, and the result is a deferred
    :class:`~repro.relational.columnar.ColumnStore` wrapped in a lazy
    :class:`Instance`.  No :class:`Fact`, value tuple or binding dict is
    built per firing, which roughly halves the chase's allocation
    traffic — the difference between scaling and stalling on
    memory-bandwidth-bound multi-core hosts (see docs/PERFORMANCE.md).

    Semantics match :func:`_chase_st_tgds` exactly:

    * firing order is bindings sorted as id tuples over name-sorted
      variables — on a value-sorted table (canonical stores and their
      slices) that *is* the ``value_sort_key`` order, so fresh nulls get
      identical labels; on other stores the order is still
      deterministic and the result equal up to null renaming;
    * set semantics via per-relation dedupe of rows with no per-firing
      existential (rows carrying one are unique by construction);
    * duplicate conclusion atoms collapse (they ground identically).

    Eligibility is decided for *every* tgd before any fires, so the
    fallback never leaves the factory or stats half-consumed.  Gated to:
    attached store without Skolem values, FuncTerm-free premises without
    side conditions, Var/Const-only conclusions into untyped (``ANY``)
    columns for variables — typed columns fall back so the validating
    constructor's ``TypeError`` behavior is preserved — and conclusion
    constants that type-check statically.
    """
    store = source.columnar_store
    if store is None or store.skolem_count():
        return None
    target_schema = mapping.target
    const_count = store.constant_count
    new_consts: dict = {}
    compiled = []
    for tgd in mapping.tgds:
        if not premise_ids_eligible(tgd.premise, source):
            return None
        conclusion_atoms = tgd.conclusion.atoms()
        if len(conclusion_atoms) != len(tgd.conclusion.literals):
            return None
        existentials = {v: i for i, v in enumerate(tgd.existential_variables)}
        frontier_set = set(tgd.frontier)
        specs: list[tuple[str, tuple[tuple[int, object], ...], bool]] = []
        seen_atoms: set = set()
        for atom in conclusion_atoms:
            if atom.relation not in target_schema:
                return None
            rel_schema = target_schema[atom.relation]
            if rel_schema.arity != len(atom.terms):
                return None
            atom_key = (atom.relation, tuple(atom.terms))
            if atom_key in seen_atoms:
                continue
            seen_atoms.add(atom_key)
            ops: list[tuple[int, object]] = []
            has_existential = False
            for term, attr in zip(atom.terms, rel_schema.attributes):
                if isinstance(term, Var):
                    position = existentials.get(term)
                    if position is not None:
                        ops.append((2, position))
                        has_existential = True
                        continue
                    if term not in frontier_set:
                        return None
                    if attr.type is not AttributeType.ANY:
                        return None
                    ops.append((0, term))
                elif isinstance(term, Const):
                    raw = term.value
                    if not attr.type.accepts(raw):
                        return None
                    try:
                        ident = store.peek_raw(raw)
                        if ident is None:
                            ident = new_consts.get(raw)
                            if ident is None:
                                ident = const_count + len(new_consts)
                                new_consts[raw] = ident
                    except TypeError:
                        return None
                    ops.append((1, ident))
                else:  # FuncTerm conclusions ground per value binding
                    return None
            specs.append((atom.relation, tuple(ops), has_existential))
        compiled.append((tgd.premise, tgd.existential_variables, specs))

    # Every tgd is eligible — from here on the run cannot fall back.
    # Result id space: source constants keep their ids, new conclusion
    # constants follow (so source null ids shift up by len(new_consts)),
    # then the source's labelled nulls, then the invented ones.
    shift = len(new_consts)
    labeled_count = store.labeled_count
    null_base = const_count + shift + labeled_count
    out_rows: dict[str, list[tuple[int, ...]]] = {
        name: [] for name in target_schema.relation_names
    }
    seen_rows: dict[str, set] = {}
    fresh_labels: list[int] = []
    for premise, existential_vars, specs in compiled:
        evaluated = evaluate_premise_ids(premise, source)
        assert evaluated is not None  # gated above, per tgd
        variables, rows = evaluated
        rows.sort()
        var_pos = {v: i for i, v in enumerate(variables)}
        resolved = [
            (
                relation,
                tuple(
                    (src, var_pos[payload] if src == 0 else payload)
                    for src, payload in ops
                ),
                has_existential,
            )
            for relation, ops, has_existential in specs
        ]
        n_exist = len(existential_vars)
        tgd_fresh_base = null_base + len(fresh_labels)
        if n_exist and rows:
            first_label = factory.fresh_block(n_exist * len(rows))
            fresh_labels.extend(
                range(first_label, first_label + n_exist * len(rows))
            )
        stats.tgd_firings += len(rows)
        stats.nulls_created += n_exist * len(rows)
        for k, row in enumerate(rows):
            if shift:
                row = tuple(
                    x if x < const_count else x + shift for x in row
                )
            fid0 = tgd_fresh_base + k * n_exist
            for relation, ops, has_existential in resolved:
                cells = []
                for src, payload in ops:
                    if src == 0:
                        cells.append(row[payload])
                    elif src == 1:
                        cells.append(payload)
                    else:
                        cells.append(fid0 + payload)
                out = tuple(cells)
                if not has_existential:
                    seen = seen_rows.get(relation)
                    if seen is None:
                        seen = seen_rows[relation] = set()
                    if out in seen:
                        continue
                    seen.add(out)
                out_rows[relation].append(out)

    table_size = null_base + len(fresh_labels)
    code = width_code(table_size)
    counts: dict[str, int] = {}
    columns: dict[str, tuple] = {}
    for name in target_schema.relation_names:
        rows_out = out_rows[name]
        counts[name] = len(rows_out)
        arity = target_schema[name].arity
        if arity and rows_out:
            columns[name] = tuple(array(code, col) for col in zip(*rows_out))
        else:
            columns[name] = tuple(array(code) for _ in range(arity))
    raw_constants = store.raw_constants()
    raw_constants.extend(new_consts)
    labels = store.null_labels()
    labels.extend(fresh_labels)
    result_store = ColumnStore._deferred(
        target_schema, raw_constants, labels, (), counts, columns
    )
    return Instance._from_store(target_schema, result_store)


def _chase_st_tgds(
    tgds: Sequence[StTgd],
    source: Instance,
    variant: ChaseVariant,
    factory: NullFactory,
    stats: ChaseStatistics,
    budget: Budget | None = None,
    provenance: ProvenanceStore = NOOP,
) -> list[Fact]:
    facts: list[Fact] = []
    # STANDARD needs to consult the target built so far; build incrementally.
    partial: dict[str, set[tuple[Value, ...]]] = {}
    partial_version = 0
    # One witnessed-probe snapshot per tgd, refreshed only when the partial
    # instance actually changed since the snapshot was built.
    probe_cache: dict[int, tuple[int, Instance]] = {}

    def witnessed(tgd_index: int, tgd: StTgd, frontier_binding: Mapping[Var, Value]) -> bool:
        cached = probe_cache.get(tgd_index)
        if cached is not None and cached[0] == partial_version:
            probe = cached[1]
        else:
            schema_rels = {a.relation for a in tgd.conclusion.atoms()}
            probe_schema = Schema(
                # A throwaway schema with just the needed relations.
                _relation_schemas_for(tgd, schema_rels)
            )
            probe = Instance(
                probe_schema,
                {r: frozenset(partial.get(r, set())) for r in schema_rels},
            )
            probe_cache[tgd_index] = (partial_version, probe)
        return satisfiable(tgd.conclusion, probe, seed=dict(frontier_binding))

    for tgd_index, tgd in enumerate(tgds):
        bindings = _canonical_bindings(evaluate(tgd.premise, source))
        # Per-tgd invariants, hoisted out of the per-binding loop: the
        # frontier/existential properties and atom lists each walk the
        # whole formula, which at thousands of bindings per tgd was a
        # measurable slice of the st-tgd phase.
        frontier = tgd.frontier
        existential_variables = tgd.existential_variables
        conclusion_atoms = tgd.conclusion.atoms()
        for binding in bindings:
            if budget is not None:
                try:
                    budget.check(facts=len(facts), phase="st_tgds")
                except BudgetExceeded as exc:
                    exc.partial_facts = list(facts)
                    raise
            frontier_binding = {v: binding[v] for v in frontier}
            if variant is ChaseVariant.STANDARD and witnessed(
                tgd_index, tgd, frontier_binding
            ):
                continue
            full_binding: dict[Var, Value] = dict(binding)
            existentials: dict[Var, Value] = {}
            for existential in existential_variables:
                fresh = factory.fresh()
                full_binding[existential] = fresh
                existentials[existential] = fresh
                stats.nulls_created += 1
            fired: list[Fact] = []
            for relation, row in ground_atoms(conclusion_atoms, full_binding):
                fact = Fact(relation, row)
                facts.append(fact)
                fired.append(fact)
                bucket = partial.setdefault(relation, set())
                if row not in bucket:
                    bucket.add(row)
                    partial_version += 1
            stats.tgd_firings += 1
            if provenance.enabled:
                premise_facts = [
                    Fact(relation, row)
                    for relation, row in ground_atoms(tgd.premise.atoms(), binding)
                ]
                provenance.record_firing(
                    f"tgd_{tgd_index}",
                    tgd.to_text(),
                    "st_tgds",
                    premise_facts,
                    binding,
                    existentials,
                    fired,
                )
    return facts


def _relation_schemas_for(tgd: StTgd, relations: set[str]):
    """Anonymous relation schemas matching the conclusion atoms' arities."""
    from ..relational.schema import RelationSchema

    arities: dict[str, int] = {}
    for atom in tgd.conclusion.atoms():
        arities[atom.relation] = atom.arity
    return [
        RelationSchema(r, [f"c{i}" for i in range(arities[r])])
        for r in relations
    ]


def _chase_target_dependencies(
    target: Instance,
    dependencies: Sequence[TargetDependency],
    factory: NullFactory,
    stats: ChaseStatistics,
    max_steps: int,
    budget: Budget | None = None,
    provenance: ProvenanceStore = NOOP,
) -> Instance:
    """Semi-naive fixpoint over egds and target tgds.

    Target tgds fire semi-naively: after the first round, a premise
    binding is only enumerated when it touches at least one tuple added
    in the previous round (:func:`~repro.logic.evaluation.evaluate_delta`).
    Egds fire one substitution at a time to a local fixpoint at the top
    of each round; an egd firing rewrites values across the whole
    instance, so after any firing every fact counts as new again and the
    next tgd pass re-derives from the full instance.

    Every step passes through :func:`~repro.faults.fault_point` (the
    ``"chase.step"`` seam) and, when a *budget* is present, a
    cooperative deadline/fact-cap check; a tripped budget raises
    :class:`~repro.budget.BudgetExceeded` carrying the partial target.
    """
    tracer = get_tracer()
    registry = get_registry()
    # Rule ids number the dependency list as given (dep_0, dep_1, …) so
    # the same mapping always names the same rule across runs/resumes.
    numbered = [(f"dep_{i}", d) for i, d in enumerate(dependencies)]
    egds = [(rid, d) for rid, d in numbered if isinstance(d, Egd)]
    tgds = [(rid, d) for rid, d in numbered if not isinstance(d, Egd)]
    delta: dict[str, set[Row]] | None = None  # None ⇒ every fact is new
    steps = 0

    def charge_step() -> None:
        fault_point("chase.step")
        if budget is not None:
            try:
                budget.check(facts=target.size(), phase="target_dependencies")
            except BudgetExceeded as exc:
                exc.partial = target
                raise
        if steps > max_steps:
            raise _non_termination(dependencies, max_steps, target)

    while True:
        stats.rounds += 1
        changed = False
        delta_size = (
            target.size() if delta is None else sum(len(r) for r in delta.values())
        )
        with tracer.span(
            "chase.round", round=stats.rounds, delta=delta_size
        ) as span:
            fired_this_round = 0
            # -- egd pass: fire substitutions to a local fixpoint ----------
            egd_fired = False
            if egds:
                fired_one = True
                while fired_one:
                    fired_one = False
                    for egd_id, egd in egds:
                        target, fired = _egd_step(
                            target, egd, stats, provenance, egd_id
                        )
                        if fired:
                            fired_one = egd_fired = True
                            fired_this_round += 1
                            steps += 1
                            charge_step()
            if egd_fired:
                changed = True
                delta = None  # map_values may have rewritten any fact
            # -- tgd pass: semi-naive, only delta-touching bindings --------
            enumerated = pruned = 0
            added: dict[str, set[Row]] = {}
            for tgd_id, tgd in tgds:
                if delta is None:
                    bindings = _canonical_bindings(evaluate(tgd.premise, target))
                else:
                    bindings = _canonical_bindings(
                        evaluate_delta(tgd.premise, target, delta)
                    )
                enumerated += len(bindings)
                for binding in bindings:
                    frontier_binding = {v: binding[v] for v in tgd.frontier}
                    if satisfiable(tgd.conclusion, target, seed=frontier_binding):
                        pruned += 1
                        continue
                    full_binding: dict[Var, Value] = dict(binding)
                    existentials: dict[Var, Value] = {}
                    for existential in tgd.existential_variables:
                        fresh = factory.fresh()
                        full_binding[existential] = fresh
                        existentials[existential] = fresh
                        stats.nulls_created += 1
                    new_facts = []
                    for relation, row in ground_atoms(
                        tgd.conclusion.atoms(), full_binding
                    ):
                        if row not in target.rows(relation):
                            added.setdefault(relation, set()).add(row)
                        new_facts.append(Fact(relation, row))
                    target = target.with_facts(new_facts)
                    if provenance.enabled:
                        premise_facts = [
                            Fact(relation, row)
                            for relation, row in ground_atoms(
                                tgd.premise.atoms(), binding
                            )
                        ]
                        provenance.record_firing(
                            tgd_id,
                            repr(tgd),
                            "target_dependencies",
                            premise_facts,
                            binding,
                            existentials,
                            new_facts,
                        )
                    stats.target_tgd_firings += 1
                    fired_this_round += 1
                    steps += 1
                    charge_step()
            if added:
                changed = True
            span.set(
                firings=fired_this_round,
                facts=target.size(),
                enumerated=enumerated,
                pruned=pruned,
            )
            registry.histogram("chase.delta_size").observe(delta_size)
            if enumerated:
                registry.counter("chase.bindings_enumerated").inc(enumerated)
            if pruned:
                registry.counter("chase.bindings_pruned").inc(pruned)
        if not changed:
            return target
        delta = added


def _non_termination(
    dependencies: Sequence[TargetDependency],
    max_steps: int,
    partial: Instance | None = None,
) -> ChaseNonTermination:
    """A :class:`ChaseNonTermination` carrying the diagnosis when one exists."""
    target_tgds = [d for d in dependencies if isinstance(d, TargetTgd)]
    witness = weak_acyclicity_witness(target_tgds)
    message = (
        f"target chase exceeded {max_steps} steps; "
        f"run `repro lint` on the mapping to diagnose non-termination"
    )
    if witness is not None:
        message += f" (special-edge cycle: {witness.describe()})"
    exc = ChaseNonTermination(message)
    exc.witness = witness
    exc.partial = partial
    return exc


def _egd_step(
    target: Instance,
    egd: Egd,
    stats: ChaseStatistics,
    provenance: ProvenanceStore = NOOP,
    rule_id: str = "egd",
) -> tuple[Instance, bool]:
    for binding in evaluate(egd.premise, target):
        left, right = binding[egd.left], binding[egd.right]
        if left == right:
            continue
        if is_constant(left) and is_constant(right):
            raise ChaseFailure(
                f"egd {egd!r} forces distinct constants {left!r} = {right!r}"
            )
        # Map the null onto the other value (keep constants).
        if is_constant(left):
            old, new = right, left
        else:
            old, new = left, right
        stats.egd_firings += 1
        if provenance.enabled:
            premise_facts = [
                Fact(relation, row)
                for relation, row in ground_atoms(egd.premise.atoms(), binding)
            ]
            provenance.record_rewrite(
                rule_id, repr(egd), old, new, premise_facts, binding
            )
        return target.map_values({old: new}), True
    return target, False


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def chase_target_dependencies(
    target: Instance,
    dependencies: Sequence[TargetDependency],
    *,
    options: ExchangeOptions | None = None,
    budget: Budget | None = None,
    provenance: ProvenanceStore | bool | None = None,
) -> Instance:
    """Chase an existing target instance with egds / target tgds only.

    Used by the compiled exchange engine to honour a mapping's target
    dependencies after the lens's forward direction materializes the
    target, and by :meth:`repro.service.ExchangeService.resume` to
    continue a budget-interrupted chase from its partial instance.
    Limits follow the same rules as :func:`chase`: pass *options* and/or
    a shared *budget* (the pre-ExchangeOptions ``max_steps`` keyword was
    removed; passing it is a ``TypeError``).
    Raises :class:`ChaseFailure` on egd conflicts,
    :class:`ChaseNonTermination` past the step cap and
    :class:`~repro.budget.BudgetExceeded` past the budget; every
    exception carries the partial statistics (``exc.statistics``) and
    the latter two the partial instance (``exc.partial``).
    """
    effective_max_steps, budget = _resolve_limits(options, budget)
    if provenance is None and options is not None:
        provenance = options.provenance
    provenance = resolve_provenance(provenance)
    stats = ChaseStatistics()
    factory = NullFactory()
    factory.reserve_through(max_null_label(target.values()))
    dependencies = tuple(dependencies)
    try:
        with get_tracer().span(
            "chase.target_dependencies", dependencies=len(dependencies)
        ):
            result = _chase_target_dependencies(
                target,
                dependencies,
                factory,
                stats,
                effective_max_steps,
                budget,
                provenance,
            )
    except (ChaseFailure, ChaseNonTermination, BudgetExceeded) as exc:
        exc.statistics = stats
        exc.provenance = provenance if provenance.enabled else None
        stats.publish()
        raise
    stats.publish()
    return result


def universal_solution(
    mapping: SchemaMapping,
    source: Instance,
    *,
    options: ExchangeOptions | None = None,
    budget: Budget | None = None,
) -> Instance:
    """The canonical universal solution (naive chase + target dependencies)."""
    return chase(mapping, source, options=options, budget=budget).solution


def core_universal_solution(mapping: SchemaMapping, source: Instance) -> Instance:
    """The core of the canonical universal solution — the smallest one.

    This is the "preferred solution" the paper's Example 1 calls the most
    general among all possible solutions, minimized.
    """
    return core_of(universal_solution(mapping, source))


def solution_space_sample(
    mapping: SchemaMapping,
    source: Instance,
    substitutions: Iterable[Mapping[Value, Value]],
) -> list[Instance]:
    """Solutions obtained by substituting values for the canonical nulls.

    Every homomorphic image of a universal solution that keeps the tgds
    satisfied is again a solution; this helper builds the images (e.g.
    Example 1's ``J1`` and ``J2``) and filters out non-solutions that a
    careless substitution might create when target dependencies exist.
    """
    canonical = universal_solution(mapping, source)
    out = []
    for substitution in substitutions:
        candidate = canonical.map_values(dict(substitution))
        if mapping.is_solution(source, candidate):
            out.append(candidate)
    return out
