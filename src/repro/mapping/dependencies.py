"""Target dependencies: egds and target tgds, with a weak-acyclicity test.

The paper notes (Section 2) that target dependencies — keys, foreign
keys — "add expressive power and can be used to decrease the level of
non-determinism when exchanging data, but at the same time, they
complicate the managing of mappings".  The chase must fire these *within*
the target; termination is guaranteed for weakly acyclic sets of target
tgds (Fagin–Kolaitis–Miller–Popa), which :func:`is_weakly_acyclic`
decides via the standard dependency-graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..logic.evaluation import evaluate
from ..logic.formulas import Atom, Conjunction
from ..logic.terms import Var
from ..relational.constraints import FunctionalDependency, KeyConstraint
from ..relational.instance import Instance
from ..relational.schema import Schema


@dataclass(frozen=True)
class Egd:
    """An equality-generating dependency ``∀x̄ (φ(x̄) → x_i = x_j)``.

    Keys and functional dependencies are egds; the chase resolves a fired
    egd by unifying the two values (preferring to keep constants), or
    fails when both are distinct constants.
    """

    premise: Conjunction
    left: Var
    right: Var

    def __post_init__(self) -> None:
        premise_vars = set(self.premise.variables())
        if self.left not in premise_vars or self.right not in premise_vars:
            raise ValueError("egd equality variables must occur in the premise")

    def satisfied_in(self, instance: Instance) -> bool:
        return all(
            binding[self.left] == binding[self.right]
            for binding in evaluate(self.premise, instance)
        )

    def __repr__(self) -> str:
        return f"{self.premise!r} → {self.left!r} = {self.right!r}"


@dataclass(frozen=True)
class TargetTgd:
    """A tgd entirely within the target schema (e.g. a foreign key)."""

    premise: Conjunction
    conclusion: Conjunction

    @property
    def existential_variables(self) -> tuple[Var, ...]:
        premise_vars = set(self.premise.variables())
        return tuple(v for v in self.conclusion.variables() if v not in premise_vars)

    @property
    def frontier(self) -> tuple[Var, ...]:
        premise_vars = set(self.premise.variables())
        return tuple(v for v in self.conclusion.variables() if v in premise_vars)

    def satisfied_in(self, instance: Instance) -> bool:
        from ..logic.evaluation import satisfiable

        for binding in evaluate(self.premise, instance):
            frontier_binding = {v: binding[v] for v in self.frontier}
            if not satisfiable(self.conclusion, instance, seed=frontier_binding):
                return False
        return True

    def __repr__(self) -> str:
        existentials = self.existential_variables
        if existentials:
            names = ", ".join(v.name for v in existentials)
            return f"{self.premise!r} → ∃{names}. {self.conclusion!r}"
        return f"{self.premise!r} → {self.conclusion!r}"


TargetDependency = Union[Egd, TargetTgd]


def egd_from_fd(fd: FunctionalDependency, schema: Schema) -> list[Egd]:
    """Translate an FD into egds (one per dependent column)."""
    rel = schema[fd.relation]
    # Two copies of the relation sharing determinant variables.
    left_vars = [Var(f"a{i}") for i in range(rel.arity)]
    right_vars = [Var(f"b{i}") for i in range(rel.arity)]
    det_pos = [rel.position_of(c) for c in fd.determinant]
    for p in det_pos:
        right_vars[p] = left_vars[p]
    premise = Conjunction(
        [Atom(fd.relation, tuple(left_vars)), Atom(fd.relation, tuple(right_vars))]
    )
    egds = []
    for c in fd.dependent:
        p = rel.position_of(c)
        if left_vars[p] == right_vars[p]:
            continue  # dependent column is part of the determinant
        egds.append(Egd(premise, left_vars[p], right_vars[p]))
    return egds


def egd_from_key(key: KeyConstraint, schema: Schema) -> list[Egd]:
    """Translate a key constraint into egds."""
    return egd_from_fd(key.as_fd(schema), schema)


def is_weakly_acyclic(tgds: Sequence[TargetTgd], schema: Schema) -> bool:
    """Weak-acyclicity of a set of target tgds.

    Build the dependency graph over positions ``(relation, index)``: for
    each tgd and each premise position holding a universal variable ``x``
    exported to the conclusion, add a *regular* edge to every conclusion
    position holding ``x``, and a *special* edge to every conclusion
    position holding an existential variable of the same tgd.  The set is
    weakly acyclic iff no cycle passes through a special edge — and then
    the standard chase terminates on every instance.
    """
    Position = tuple[str, int]
    regular: dict[Position, set[Position]] = {}
    special: dict[Position, set[Position]] = {}

    def add(edges: dict[Position, set[Position]], a: Position, b: Position) -> None:
        edges.setdefault(a, set()).add(b)

    for tgd in tgds:
        existentials = set(tgd.existential_variables)
        for premise_atom in tgd.premise.atoms():
            for i, term in enumerate(premise_atom.terms):
                if not isinstance(term, Var):
                    continue
                src: Position = (premise_atom.relation, i)
                for conclusion_atom in tgd.conclusion.atoms():
                    for j, cterm in enumerate(conclusion_atom.terms):
                        dst: Position = (conclusion_atom.relation, j)
                        if cterm == term:
                            add(regular, src, dst)
                        elif isinstance(cterm, Var) and cterm in existentials:
                            add(special, src, dst)

    # Find a cycle through a special edge: for each special edge (a, b),
    # check whether b reaches a through regular ∪ special edges.
    def reaches(start: Position, goal: Position) -> bool:
        stack, seen = [start], {start}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for nxt in regular.get(node, set()) | special.get(node, set()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    return not any(
        reaches(b, a) for a, succs in special.items() for b in succs
    )


def target_dependencies_from_constraints(
    constraints: Iterable[FunctionalDependency | KeyConstraint], schema: Schema
) -> list[Egd]:
    """Convenience: translate FDs and keys to the egds the chase consumes."""
    out: list[Egd] = []
    for c in constraints:
        if isinstance(c, KeyConstraint):
            out.extend(egd_from_key(c, schema))
        else:
            out.extend(egd_from_fd(c, schema))
    return out
