"""Target dependencies: egds and target tgds, with a weak-acyclicity test.

The paper notes (Section 2) that target dependencies — keys, foreign
keys — "add expressive power and can be used to decrease the level of
non-determinism when exchanging data, but at the same time, they
complicate the managing of mappings".  The chase must fire these *within*
the target; termination is guaranteed for weakly acyclic sets of target
tgds (Fagin–Kolaitis–Miller–Popa), which :func:`is_weakly_acyclic`
decides via the standard dependency-graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from ..logic.evaluation import evaluate
from ..logic.formulas import Atom, Conjunction
from ..logic.terms import Var
from ..relational.constraints import FunctionalDependency, KeyConstraint
from ..relational.instance import Instance
from ..relational.schema import Schema


@dataclass(frozen=True)
class Egd:
    """An equality-generating dependency ``∀x̄ (φ(x̄) → x_i = x_j)``.

    Keys and functional dependencies are egds; the chase resolves a fired
    egd by unifying the two values (preferring to keep constants), or
    fails when both are distinct constants.
    """

    premise: Conjunction
    left: Var
    right: Var

    def __post_init__(self) -> None:
        premise_vars = set(self.premise.variables())
        if self.left not in premise_vars or self.right not in premise_vars:
            raise ValueError("egd equality variables must occur in the premise")

    def satisfied_in(self, instance: Instance) -> bool:
        return all(
            binding[self.left] == binding[self.right]
            for binding in evaluate(self.premise, instance)
        )

    def __repr__(self) -> str:
        return f"{self.premise!r} → {self.left!r} = {self.right!r}"


@dataclass(frozen=True)
class TargetTgd:
    """A tgd entirely within the target schema (e.g. a foreign key)."""

    premise: Conjunction
    conclusion: Conjunction

    @property
    def existential_variables(self) -> tuple[Var, ...]:
        premise_vars = set(self.premise.variables())
        return tuple(v for v in self.conclusion.variables() if v not in premise_vars)

    @property
    def frontier(self) -> tuple[Var, ...]:
        premise_vars = set(self.premise.variables())
        return tuple(v for v in self.conclusion.variables() if v in premise_vars)

    def satisfied_in(self, instance: Instance) -> bool:
        from ..logic.evaluation import satisfiable

        for binding in evaluate(self.premise, instance):
            frontier_binding = {v: binding[v] for v in self.frontier}
            if not satisfiable(self.conclusion, instance, seed=frontier_binding):
                return False
        return True

    def __repr__(self) -> str:
        existentials = self.existential_variables
        if existentials:
            names = ", ".join(v.name for v in existentials)
            return f"{self.premise!r} → ∃{names}. {self.conclusion!r}"
        return f"{self.premise!r} → {self.conclusion!r}"


TargetDependency = Union[Egd, TargetTgd]


def egd_from_fd(fd: FunctionalDependency, schema: Schema) -> list[Egd]:
    """Translate an FD into egds (one per dependent column)."""
    rel = schema[fd.relation]
    # Two copies of the relation sharing determinant variables.
    left_vars = [Var(f"a{i}") for i in range(rel.arity)]
    right_vars = [Var(f"b{i}") for i in range(rel.arity)]
    det_pos = [rel.position_of(c) for c in fd.determinant]
    for p in det_pos:
        right_vars[p] = left_vars[p]
    premise = Conjunction(
        [Atom(fd.relation, tuple(left_vars)), Atom(fd.relation, tuple(right_vars))]
    )
    egds = []
    for c in fd.dependent:
        p = rel.position_of(c)
        if left_vars[p] == right_vars[p]:
            continue  # dependent column is part of the determinant
        egds.append(Egd(premise, left_vars[p], right_vars[p]))
    return egds


def egd_from_key(key: KeyConstraint, schema: Schema) -> list[Egd]:
    """Translate a key constraint into egds."""
    return egd_from_fd(key.as_fd(schema), schema)


Position = tuple[str, int]
"""A position ``(relation name, 0-based attribute index)`` of the
dependency graph the weak-acyclicity test is run over."""


def dependency_graph(
    tgds: Sequence[TargetTgd],
) -> tuple[
    dict[Position, set[Position]],
    dict[Position, set[Position]],
    dict[tuple[Position, Position], tuple[int, str]],
]:
    """The position dependency graph of *tgds*.

    Returns ``(regular, special, provenance)``: adjacency maps for the
    regular and special edges, plus, for every special edge, the
    ``(tgd index, existential variable name)`` that introduced it.
    """
    regular: dict[Position, set[Position]] = {}
    special: dict[Position, set[Position]] = {}
    provenance: dict[tuple[Position, Position], tuple[int, str]] = {}

    def add(edges: dict[Position, set[Position]], a: Position, b: Position) -> None:
        edges.setdefault(a, set()).add(b)

    for index, tgd in enumerate(tgds):
        existentials = set(tgd.existential_variables)
        conclusion_vars = set(tgd.conclusion.variables())
        for premise_atom in tgd.premise.atoms():
            for i, term in enumerate(premise_atom.terms):
                # Edges originate only at positions of universal variables
                # that are exported to the conclusion (Fagin et al.).
                if not isinstance(term, Var) or term not in conclusion_vars:
                    continue
                src: Position = (premise_atom.relation, i)
                for conclusion_atom in tgd.conclusion.atoms():
                    for j, cterm in enumerate(conclusion_atom.terms):
                        dst: Position = (conclusion_atom.relation, j)
                        if cterm == term:
                            add(regular, src, dst)
                        elif isinstance(cterm, Var) and cterm in existentials:
                            add(special, src, dst)
                            provenance.setdefault((src, dst), (index, cterm.name))
    return regular, special, provenance


@dataclass(frozen=True)
class PositionCycle:
    """A witness that a set of target tgds is **not** weakly acyclic.

    ``positions`` lists the cycle ``p₀ → p₁ → … → pₙ₋₁ → p₀``;
    ``labels[i]`` marks the edge leaving ``positions[i]`` as ``"special"``
    or ``"regular"``.  ``tgd_index`` / ``existential`` identify the tgd
    (index into the analysed sequence) and the existential variable whose
    special edge the cycle passes through — the chase step that keeps
    inventing fresh nulls forever.
    """

    positions: tuple[Position, ...]
    labels: tuple[str, ...]
    tgd_index: int
    existential: str

    def describe(self) -> str:
        """The cycle as ``(R, i) --∃--> (S, j) ----> (R, i)``."""
        parts = []
        for position, label in zip(self.positions, self.labels):
            arrow = "--∃-->" if label == "special" else "---->"
            parts.append(f"({position[0]}, {position[1]}) {arrow}")
        first = self.positions[0]
        return " ".join(parts) + f" ({first[0]}, {first[1]})"

    def as_dict(self) -> dict[str, object]:
        return {
            "positions": [list(p) for p in self.positions],
            "labels": list(self.labels),
            "tgd_index": self.tgd_index,
            "existential": self.existential,
        }

    def __repr__(self) -> str:
        return f"PositionCycle({self.describe()})"


def _strongly_connected_components(
    nodes: Iterable[Position], successors: dict[Position, set[Position]]
) -> dict[Position, int]:
    """Tarjan's SCC algorithm, iterative; maps each node to its SCC id."""
    index_of: dict[Position, int] = {}
    lowlink: dict[Position, int] = {}
    component: dict[Position, int] = {}
    stack: list[Position] = []
    on_stack: set[Position] = set()
    counter = 0
    components = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[Position, Iterator[Position]]] = []
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(successors.get(root, ()))))
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(successors.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = components
                    if member == node:
                        break
                components += 1
    return component


def weak_acyclicity_witness(tgds: Sequence[TargetTgd]) -> PositionCycle | None:
    """A special-edge cycle of the dependency graph, or ``None``.

    ``None`` means the tgds are weakly acyclic (the chase terminates on
    every instance).  A cycle passes through a special edge iff both
    endpoints of some special edge share a strongly connected component
    of the combined graph, so one SCC pass — O(V + E) — replaces the
    per-special-edge reachability searches of the naive test; the path
    closing the witness cycle is then recovered with a single BFS inside
    that component.
    """
    regular, special, provenance = dependency_graph(tgds)
    combined: dict[Position, set[Position]] = {}
    for edges in (regular, special):
        for src, dsts in edges.items():
            combined.setdefault(src, set()).update(dsts)
    nodes: set[Position] = set(combined)
    for dsts in combined.values():
        nodes |= dsts
    component = _strongly_connected_components(sorted(nodes), combined)

    for src in sorted(special):
        for dst in sorted(special[src]):
            if component[src] != component[dst]:
                continue
            # Close the cycle: BFS from dst back to src inside the SCC.
            path = _path_within_component(dst, src, combined, component)
            positions = (src, *path[:-1])
            labels = ["special"]
            for a, b in zip(path, path[1:]):
                labels.append("special" if b in special.get(a, ()) else "regular")
            tgd_index, existential = provenance[(src, dst)]
            return PositionCycle(tuple(positions), tuple(labels), tgd_index, existential)
    return None


def _path_within_component(
    start: Position,
    goal: Position,
    successors: dict[Position, set[Position]],
    component: dict[Position, int],
) -> list[Position]:
    """Shortest path ``start → … → goal`` staying inside start's SCC."""
    if start == goal:
        return [start]
    scc = component[start]
    parents: dict[Position, Position] = {}
    frontier = [start]
    while frontier:
        next_frontier: list[Position] = []
        for node in frontier:
            for child in sorted(successors.get(node, ())):
                if component.get(child) != scc or child in parents or child == start:
                    continue
                parents[child] = node
                if child == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                next_frontier.append(child)
        frontier = next_frontier
    raise AssertionError("no path within SCC — components were inconsistent")


def is_weakly_acyclic(tgds: Sequence[TargetTgd], schema: Schema | None = None) -> bool:
    """Weak-acyclicity of a set of target tgds.

    Build the dependency graph over positions ``(relation, index)``: for
    each tgd and each premise position holding a universal variable ``x``
    exported to the conclusion, add a *regular* edge to every conclusion
    position holding ``x``, and a *special* edge to every conclusion
    position holding an existential variable of the same tgd.  The set is
    weakly acyclic iff no cycle passes through a special edge — and then
    the standard chase terminates on every instance.

    Thin wrapper over :func:`weak_acyclicity_witness`, which additionally
    reports the offending cycle; *schema* is accepted for backward
    compatibility and unused (the graph is determined by the tgds alone).
    """
    return weak_acyclicity_witness(tgds) is None


def target_dependency_from_rule(rule) -> TargetDependency:
    """Interpret a parsed rule as a target dependency.

    A rule whose conclusion is a single equality between two premise
    variables becomes an :class:`Egd` (``E(x, y), E(x, z) -> y = z``);
    a rule whose conclusion is all atoms becomes a :class:`TargetTgd`.
    Anything else (disjunctions, mixed conclusions) is rejected.
    """
    from ..logic.formulas import Atom, Equality
    from ..logic.parser import ParsedRule

    assert isinstance(rule, ParsedRule)
    if rule.is_disjunctive:
        raise ValueError("target dependencies cannot have disjunctive conclusions")
    _, conclusion = rule.single_rhs()
    literals = conclusion.literals
    if len(literals) == 1 and isinstance(literals[0], Equality):
        equality = literals[0]
        if not (isinstance(equality.left, Var) and isinstance(equality.right, Var)):
            raise ValueError(
                f"egd conclusion must equate two variables; got {equality!r}"
            )
        return Egd(rule.lhs, equality.left, equality.right)
    if all(isinstance(lit, Atom) for lit in literals):
        return TargetTgd(rule.lhs, conclusion)
    raise ValueError(
        f"target dependency conclusion must be atoms or a single equality; "
        f"got {conclusion!r}"
    )


def target_dependencies_from_constraints(
    constraints: Iterable[FunctionalDependency | KeyConstraint], schema: Schema
) -> list[Egd]:
    """Convenience: translate FDs and keys to the egds the chase consumes."""
    out: list[Egd] = []
    for c in constraints:
        if isinstance(c, KeyConstraint):
            out.extend(egd_from_key(c, schema))
        else:
            out.extend(egd_from_fd(c, schema))
    return out
