"""Containment and equivalence of schema mappings, decided by the chase.

Implements the decision procedures of Calì & Torlone, *Containment of
Schema Mappings for Data Exchange*: a mapping ``M1`` is **contained** in
``M2`` (``M1 ⊑ M2``) iff ``Sol_M1(I) ⊆ Sol_M2(I)`` for every source
instance ``I``.  For dependency-based mappings that is exactly logical
implication of the dependency sets — ``Σ1 ⊨ Σ2`` — so containment
reduces to checking that every dependency of ``M2`` is implied by
``M1``'s.

Implication itself is the classic chase test (Beeri–Vardi): *freeze* the
candidate dependency's premise into a canonical instance (each variable
becomes a distinct labeled null, so egds may later unify them), chase it
with the implying dependency set, and check that the conclusion maps
into the result homomorphically with the frontier pinned to wherever the
chase took the frozen nulls.

The procedures are decision procedures only on the decidable fragment:

* plain tgds (atom-only premises — no inequalities or constant guards,
  which would make the canonical-instance test unsound), and
* weakly acyclic target tgds (so the chase terminates).

Outside that fragment :class:`ContainmentUndecidable` is raised, carrying
the weak-acyclicity witness cycle when that is the obstruction — callers
such as the RA6xx analysis passes report it instead of guessing.

:func:`saturate` additionally folds weakly acyclic, single-atom-premise
target tgds into the st-tgds themselves (by chasing each frozen premise
to its full canonical conclusion), yielding an equivalent mapping with
no target dependencies — the building block the composition-with-
target-constraints extension (Arenas–Fagin–Nash) uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..logic.evaluation import satisfiable
from ..logic.formulas import Atom, Conjunction
from ..logic.terms import Const, Term, Var
from ..obs import get_registry, get_tracer
from ..options import DEFAULT_MAX_STEPS, ExchangeOptions
from ..relational.instance import Fact, Instance
from ..relational.schema import RelationSchema, Schema
from ..relational.values import Constant, LabeledNull, Value, constant, is_null
from .chase import ChaseFailure, ChaseNonTermination, chase, chase_target_dependencies
from .dependencies import (
    Egd,
    PositionCycle,
    TargetDependency,
    TargetTgd,
    weak_acyclicity_witness,
)
from .sttgd import SchemaMapping, StTgd

__all__ = [
    "ContainmentUndecidable",
    "SaturationUnsupported",
    "ImplicationResult",
    "freeze_conjunction",
    "implies_st_tgd",
    "implies_target_dependency",
    "containment_certificate",
    "is_contained_in",
    "equivalent",
    "redundant_tgds",
    "prune_redundant",
    "saturate",
]

#: Auxiliary relation used to follow frozen frontier nulls through egd
#: rewrites during the target-dependency chase.
_TRACK = "__frozen"


class ContainmentUndecidable(Exception):
    """The mapping falls outside the decidable containment fragment.

    ``witness`` carries the :class:`PositionCycle` when the obstruction is
    a weak-acyclicity failure, else ``None``.  ``reason`` is a short
    machine-readable tag (``"side-conditions"``, ``"not-weakly-acyclic"``,
    ``"non-terminating"``, ``"function-terms"``).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "unsupported",
        witness: PositionCycle | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.witness = witness


class SaturationUnsupported(Exception):
    """Target dependencies cannot be folded into the st-tgds.

    Raised by :func:`saturate` for egds or joint (multi-atom) premises,
    where per-tgd folding would not preserve the mapping's semantics.
    """

    def __init__(self, message: str, *, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class ImplicationResult:
    """Outcome of one dependency-implication check inside a certificate."""

    implied: bool
    kind: str  # "st-tgd" | "egd" | "target-tgd"
    index: int
    text: str

    def as_dict(self) -> dict:
        return {
            "implied": self.implied,
            "kind": self.kind,
            "index": self.index,
            "text": self.text,
        }


def _plain_premise_atoms(premise: Conjunction, what: str) -> tuple[Atom, ...]:
    """The premise's atoms, refusing side conditions and function terms."""
    atoms = premise.atoms()
    if len(atoms) != len(premise.literals):
        raise ContainmentUndecidable(
            f"{what} has non-atom side conditions (equalities, inequalities "
            f"or constant guards); the canonical-instance implication test "
            f"is unsound outside plain tgds",
            reason="side-conditions",
        )
    for atom in atoms:
        for term in atom.terms:
            if not isinstance(term, (Var, Const)):
                raise ContainmentUndecidable(
                    f"{what} contains the function term {term!r}; implication "
                    f"is only decided for first-order tgds",
                    reason="function-terms",
                )
    return atoms


def _assert_plain_tgd(tgd: StTgd, what: str = "tgd") -> None:
    _plain_premise_atoms(tgd.premise, f"{what} premise")
    _plain_premise_atoms(tgd.conclusion, f"{what} conclusion")


def _assert_decidable(
    tgds: Sequence[StTgd], dependencies: Sequence[TargetDependency]
) -> None:
    for tgd in tgds:
        _assert_plain_tgd(tgd)
    for dep in dependencies:
        _plain_premise_atoms(dep.premise, "target dependency premise")
        if isinstance(dep, TargetTgd):
            _plain_premise_atoms(dep.conclusion, "target dependency conclusion")
    target_tgds = [d for d in dependencies if isinstance(d, TargetTgd)]
    witness = weak_acyclicity_witness(target_tgds)
    if witness is not None:
        raise ContainmentUndecidable(
            "target tgds are not weakly acyclic; the implication chase may "
            "not terminate (run `repro lint` for the RA101 witness)",
            reason="not-weakly-acyclic",
            witness=witness,
        )


def freeze_conjunction(
    premise: Conjunction, schema: Schema
) -> tuple[Instance, dict[Var, LabeledNull]]:
    """Freeze a premise into its canonical instance.

    Every variable becomes a distinct fresh labeled null (NOT a constant:
    egds fired later must be free to unify frozen values), constants stay
    themselves.  Returns the instance and the variable → null binding.
    """
    atoms = _plain_premise_atoms(premise, "premise")
    binding: dict[Var, LabeledNull] = {}
    facts: list[Fact] = []
    for atom in atoms:
        if atom.relation not in schema:
            raise ContainmentUndecidable(
                f"premise atom over {atom.relation!r} which is not in the "
                f"schema; cannot build the canonical instance",
                reason="unknown-relation",
            )
        row: list[Value] = []
        for term in atom.terms:
            if isinstance(term, Var):
                if term not in binding:
                    binding[term] = LabeledNull(len(binding))
                row.append(binding[term])
            else:
                row.append(constant(term.value))
        facts.append(Fact(atom.relation, tuple(row)))
    return Instance(schema, facts), binding


def _track_key(variable: Var) -> Constant:
    return constant(f"var:{variable.name}")


def _with_tracker(
    target: Instance, binding: Mapping[Var, Value]
) -> Instance:
    """Augment *target* with ``__frozen(name, value)`` tracking facts.

    Egd steps rewrite values across the whole instance, so after the
    target-dependency chase the tracking rows tell us where each frozen
    frontier null ended up — without needing provenance.
    """
    if _TRACK in target.schema:  # pragma: no cover - reserved name
        raise ContainmentUndecidable(
            f"target schema uses the reserved relation name {_TRACK!r}",
            reason="reserved-relation",
        )
    augmented_schema = target.schema.with_relation(
        RelationSchema(_TRACK, ["name", "value"])
    )
    facts = list(target.facts()) + [
        Fact(_TRACK, (_track_key(v), value)) for v, value in binding.items()
    ]
    return Instance(augmented_schema, facts)


def _read_tracker(
    chased: Instance, binding: Mapping[Var, Value]
) -> dict[Var, Value]:
    rows = {row[0]: row[1] for row in chased.rows(_TRACK)}
    return {v: rows[_track_key(v)] for v in binding}


def _chase_with_dependencies(
    target: Instance,
    dependencies: Sequence[TargetDependency],
    frontier: Mapping[Var, Value],
    max_steps: int,
) -> tuple[Instance, dict[Var, Value]] | None:
    """Chase *target* with *dependencies*, following the frontier binding.

    Returns ``(chased, final_frontier)``, or ``None`` when the chase fails
    (an egd forced two distinct constants equal — the premise is
    unsatisfiable under the dependencies, so implication holds vacuously).
    """
    tracked = _with_tracker(target, frontier)
    try:
        chased = chase_target_dependencies(
            tracked,
            tuple(dependencies),
            options=ExchangeOptions(max_steps=max_steps),
        )
    except ChaseFailure:
        return None
    except ChaseNonTermination as exc:
        raise ContainmentUndecidable(
            f"implication chase did not terminate within {max_steps} steps",
            reason="non-terminating",
            witness=getattr(exc, "witness", None),
        ) from exc
    return chased, _read_tracker(chased, frontier)


def implies_st_tgd(
    mapping: SchemaMapping,
    tgd: StTgd,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Whether *mapping*'s dependencies logically imply the st-tgd *tgd*.

    Freeze ``tgd``'s premise over the source schema, chase it with the
    mapping (st-tgds, then target dependencies), and check the conclusion
    is satisfiable in the result with the frontier pinned.
    """
    _assert_plain_tgd(tgd, "candidate tgd")
    _assert_decidable(mapping.tgds, mapping.target_dependencies)
    get_registry().counter("containment.implication_checks").inc()
    with get_tracer().span("containment.implies", kind="st-tgd") as span:
        frozen, binding = freeze_conjunction(tgd.premise, mapping.source)
        st_only = SchemaMapping(mapping.source, mapping.target, mapping.tgds)
        try:
            result = chase(
                st_only, frozen, options=ExchangeOptions(max_steps=max_steps)
            )
        except ChaseFailure:
            span.set(outcome="vacuous")
            return True
        except ChaseNonTermination as exc:
            raise ContainmentUndecidable(
                f"implication chase did not terminate within {max_steps} steps",
                reason="non-terminating",
                witness=getattr(exc, "witness", None),
            ) from exc
        target = result.solution
        frontier = {v: binding[v] for v in tgd.frontier}
        if mapping.target_dependencies:
            outcome = _chase_with_dependencies(
                target, mapping.target_dependencies, frontier, max_steps
            )
            if outcome is None:
                span.set(outcome="vacuous")
                return True
            target, frontier = outcome
        implied = satisfiable(tgd.conclusion, target, seed=frontier)
        span.set(outcome="implied" if implied else "not-implied")
        return implied


def implies_target_dependency(
    dependencies: Sequence[TargetDependency],
    candidate: TargetDependency,
    target_schema: Schema,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Whether *dependencies* imply the target dependency *candidate*.

    The candidate's premise is over the target schema, so st-tgds can
    never fire on its canonical instance — only *dependencies* matter.
    """
    _assert_decidable((), tuple(dependencies) + (candidate,))
    get_registry().counter("containment.implication_checks").inc()
    kind = "egd" if isinstance(candidate, Egd) else "target-tgd"
    with get_tracer().span("containment.implies", kind=kind) as span:
        frozen, binding = freeze_conjunction(candidate.premise, target_schema)
        if isinstance(candidate, Egd):
            tracked_vars = [
                t for t in (candidate.left, candidate.right) if isinstance(t, Var)
            ]
        else:
            tracked_vars = list(candidate.frontier)
        frontier = {v: binding[v] for v in tracked_vars}
        outcome = _chase_with_dependencies(
            frozen, tuple(dependencies), frontier, max_steps
        )
        if outcome is None:
            span.set(outcome="vacuous")
            return True
        chased, final = outcome
        if isinstance(candidate, Egd):
            left = (
                final[candidate.left]
                if isinstance(candidate.left, Var)
                else constant(candidate.left.value)
            )
            right = (
                final[candidate.right]
                if isinstance(candidate.right, Var)
                else constant(candidate.right.value)
            )
            implied = left == right
        else:
            implied = satisfiable(
                candidate.conclusion, chased, seed=final
            )
        span.set(outcome="implied" if implied else "not-implied")
        return implied


def containment_certificate(
    first: SchemaMapping,
    second: SchemaMapping,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> list[ImplicationResult]:
    """Per-dependency implication results witnessing ``first ⊑ second``.

    ``first ⊑ second`` (every solution of *first* is a solution of
    *second*) holds iff every dependency of *second* is implied by
    *first*'s dependency set; the certificate lists each check.
    """
    if first.source != second.source or first.target != second.target:
        raise ValueError(
            "containment is only defined for mappings over the same "
            "source and target schemas"
        )
    results: list[ImplicationResult] = []
    for i, tgd in enumerate(second.tgds):
        results.append(
            ImplicationResult(
                implies_st_tgd(first, tgd, max_steps=max_steps),
                "st-tgd",
                i,
                tgd.to_text(),
            )
        )
    for i, dep in enumerate(second.target_dependencies):
        results.append(
            ImplicationResult(
                implies_target_dependency(
                    first.target_dependencies, dep, first.target, max_steps=max_steps
                ),
                "egd" if isinstance(dep, Egd) else "target-tgd",
                i,
                repr(dep),
            )
        )
    return results


def is_contained_in(
    first: SchemaMapping,
    second: SchemaMapping,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Whether ``Sol_first(I) ⊆ Sol_second(I)`` for every source instance."""
    return all(
        r.implied
        for r in containment_certificate(first, second, max_steps=max_steps)
    )


def equivalent(
    first: SchemaMapping,
    second: SchemaMapping,
    *,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Whether the two mappings have the same solutions on every source."""
    return is_contained_in(first, second, max_steps=max_steps) and is_contained_in(
        second, first, max_steps=max_steps
    )


def redundant_tgds(
    mapping: SchemaMapping, *, max_steps: int = DEFAULT_MAX_STEPS
) -> list[int]:
    """Indices of tgds implied by the rest of the mapping.

    Mutually redundant tgds (e.g. two equivalent copies) are *each*
    reported; use :func:`prune_redundant` to drop a safe subset.
    """
    out: list[int] = []
    for i in range(len(mapping.tgds)):
        rest = SchemaMapping(
            mapping.source,
            mapping.target,
            mapping.tgds[:i] + mapping.tgds[i + 1 :],
            mapping.target_dependencies,
        )
        if implies_st_tgd(rest, mapping.tgds[i], max_steps=max_steps):
            out.append(i)
    return out


def prune_redundant(
    mapping: SchemaMapping, *, max_steps: int = DEFAULT_MAX_STEPS
) -> tuple[SchemaMapping, list[int]]:
    """Greedily drop redundant tgds, preserving equivalence at each step.

    Returns the pruned mapping and the original indices that were dropped.
    Each drop is individually justified by an implication check against
    the tgds still kept, so the result is always equivalent to the input
    (unlike dropping everything :func:`redundant_tgds` reports, which
    could remove both halves of an equivalent pair).
    """
    kept = list(mapping.tgds)
    pruned: list[int] = []
    for index, tgd in enumerate(mapping.tgds):
        if tgd not in kept:
            continue
        candidate_rest = [t for t in kept if t is not tgd]
        rest = SchemaMapping(
            mapping.source, mapping.target, candidate_rest, mapping.target_dependencies
        )
        if implies_st_tgd(rest, tgd, max_steps=max_steps):
            kept = candidate_rest
            pruned.append(index)
    if not pruned:
        return mapping, []
    return (
        SchemaMapping(
            mapping.source, mapping.target, kept, mapping.target_dependencies
        ),
        pruned,
    )


def saturate(
    mapping: SchemaMapping, *, max_steps: int = DEFAULT_MAX_STEPS
) -> SchemaMapping:
    """Fold the target dependencies into the st-tgds.

    Each st-tgd's premise is frozen and chased with the *whole* mapping
    (st-tgds plus target dependencies); the chased canonical target is
    read back as the tgd's new conclusion, with surviving frozen nulls
    turning back into their universal variables and invented nulls into
    fresh existentials.  The result has no target dependencies.

    This per-tgd folding is sound and complete only when every target
    dependency is a **single-atom-premise target tgd** (the foreign-key
    shape): each firing then depends on one fact, so the closure of a
    union is the union of per-fact closures.  Egds and joint premises
    (which can relate facts produced by *different* tgd firings) raise
    :class:`SaturationUnsupported` — callers fall back to materializing
    the intermediate instance.
    """
    deps = mapping.target_dependencies
    if not deps:
        return mapping
    for dep in deps:
        if isinstance(dep, Egd):
            raise SaturationUnsupported(
                "egds cannot be folded into st-tgds: equalities may relate "
                "facts produced by different tgd firings",
                reason="egd",
            )
        if len(dep.premise.atoms()) != 1 or len(dep.premise.literals) != 1:
            raise SaturationUnsupported(
                "target tgds with joint (multi-atom) premises cannot be "
                "folded per-tgd: they may join facts from different firings",
                reason="joint-premise",
            )
    _assert_decidable(mapping.tgds, deps)

    new_tgds: list[StTgd] = []
    for tgd in mapping.tgds:
        frozen, binding = freeze_conjunction(tgd.premise, mapping.source)
        try:
            result = chase(
                mapping, frozen, options=ExchangeOptions(max_steps=max_steps)
            )
        except ChaseNonTermination as exc:
            raise ContainmentUndecidable(
                f"saturation chase did not terminate within {max_steps} steps",
                reason="non-terminating",
                witness=getattr(exc, "witness", None),
            ) from exc
        back: dict[Value, Term] = {null: var for var, null in binding.items()}
        existentials = 0
        conclusion_atoms: list[Atom] = []
        for fact in sorted(result.solution.facts(), key=repr):
            terms: list[Term] = []
            for value in fact.row:
                if value in back:
                    terms.append(back[value])
                elif is_null(value):
                    fresh = Var(f"sat_e{existentials}")
                    existentials += 1
                    back[value] = fresh
                    terms.append(fresh)
                else:
                    terms.append(Const(value.value))
            conclusion_atoms.append(Atom(fact.relation, tuple(terms)))
        new_tgds.append(StTgd(tgd.premise, Conjunction(tuple(conclusion_atoms))))
    return SchemaMapping(mapping.source, mapping.target, new_tgds)
