"""Second-order tgds: the closure of st-tgds under composition.

The paper's Example 2 shows that composing two st-tgd mappings may require
a sentence of the form::

    ∃f [ ∀x (Emp(x) → Boss(x, f(x)))
       ∧ ∀x (Emp(x) ∧ x = f(x) → SelfMngr(x)) ]

— an **SO-tgd** (Fagin–Kolaitis–Popa–Tan 2005): an existentially
quantified list of function symbols over a conjunction of clauses whose
premises may contain equalities between terms.

Two semantics are provided:

* :meth:`SOMapping.chase` — the *canonical* (free / Herbrand)
  interpretation: every function symbol is interpreted as a term
  constructor, producing :class:`~repro.relational.values.SkolemValue`
  outputs.  This is the executable semantics used for data exchange and
  is what the composition algorithm's output gets chased with.
* :meth:`SOMapping.satisfied_by` — the *true* second-order semantics,
  decided for small instances by enumerating interpretations of the
  function symbols over the active domain.  Used by tests to confirm the
  composition is semantically correct, and by the E3 benchmark to witness
  that no st-tgd can replace the SO-tgd.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..logic.evaluation import evaluate, ground_atoms
from ..logic.formulas import Atom, Conjunction, Equality
from ..logic.terms import FuncTerm, Term, Var, functions_of
from ..relational.instance import Fact, Instance
from ..relational.schema import Schema
from ..relational.values import SkolemValue, Value


@dataclass(frozen=True)
class SOClause:
    """One clause ``∀x̄ (premise → conclusion)`` of an SO-tgd.

    The premise holds source atoms plus equalities whose terms may mention
    the SO-tgd's function symbols; the conclusion holds target atoms whose
    terms may mention function symbols.
    """

    premise: Conjunction
    conclusion: Conjunction

    def functions(self) -> set[str]:
        out: set[str] = set()
        for lit in itertools.chain(self.premise.literals, self.conclusion.literals):
            if isinstance(lit, Atom):
                for term in lit.terms:
                    out.update(functions_of(term))
            elif isinstance(lit, Equality):
                out.update(functions_of(lit.left))
                out.update(functions_of(lit.right))
        return out

    def __repr__(self) -> str:
        return f"∀({self.premise!r} → {self.conclusion!r})"


@dataclass(frozen=True)
class SOMapping:
    """A mapping specified by a single SO-tgd (a set of clauses).

    ``functions`` lists the second-order existentially quantified function
    symbols; it is computed from the clauses when omitted.
    """

    source: Schema
    target: Schema
    clauses: tuple[SOClause, ...]
    functions: tuple[str, ...]

    def __init__(
        self,
        source: Schema,
        target: Schema,
        clauses: Iterable[SOClause],
        functions: Iterable[str] | None = None,
    ) -> None:
        clauses = tuple(clauses)
        if functions is None:
            names: set[str] = set()
            for clause in clauses:
                names |= clause.functions()
            functions = tuple(sorted(names))
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "clauses", clauses)
        object.__setattr__(self, "functions", tuple(functions))

    # -- canonical (free) semantics -----------------------------------------

    def chase(self, source: Instance) -> Instance:
        """Chase under the free interpretation of function symbols.

        Function terms evaluate to :class:`SkolemValue`; premise equalities
        are decided in the free term algebra.  The result is the canonical
        universal solution of the SO-tgd.
        """
        facts: list[Fact] = []
        for clause in self.clauses:
            for binding in evaluate(clause.premise, source):
                for relation, row in ground_atoms(clause.conclusion.atoms(), binding):
                    facts.append(Fact(relation, row))
        return Instance(self.target, facts)

    # -- true second-order semantics -----------------------------------------

    def satisfied_by(
        self,
        source: Instance,
        target: Instance,
        extra_codomain: Iterable[Value] = (),
        max_interpretations: int = 2_000_000,
    ) -> bool:
        """Decide ``(source, target) ⊨ ∃f̄ ⋀ clauses`` by enumeration.

        Interpretations of each function symbol range over maps from
        relevant argument tuples (drawn from the active domain of
        *source*) to the combined active domain (plus *extra_codomain*).
        Exponential; intended for the small instances of tests and the E3
        benchmark.  Raises ``ValueError`` if the search space exceeds
        *max_interpretations*.
        """
        arg_domain = sorted(source.active_domain(), key=repr)
        codomain = sorted(
            set(source.active_domain())
            | set(target.active_domain())
            | set(extra_codomain),
            key=repr,
        )
        if not codomain:
            codomain = arg_domain or []

        arities = self._function_arities()
        # Relevant argument tuples per function: full cross product of the
        # source active domain at the function's arity.
        arg_tuples: dict[str, list[tuple[Value, ...]]] = {
            f: list(itertools.product(arg_domain, repeat=arities[f]))
            for f in self.functions
        }
        total = 1
        for f in self.functions:
            total *= max(1, len(codomain)) ** len(arg_tuples[f])
            if total > max_interpretations:
                raise ValueError(
                    f"SO-tgd interpretation space too large ({total} candidates)"
                )

        for interpretation in self._interpretations(arg_tuples, codomain):
            if self._holds_under(source, target, interpretation):
                return True
        return False

    def _function_arities(self) -> dict[str, int]:
        arities: dict[str, int] = {}

        def visit(term: Term) -> None:
            if isinstance(term, FuncTerm):
                prior = arities.setdefault(term.function, len(term.arguments))
                if prior != len(term.arguments):
                    raise ValueError(
                        f"function {term.function!r} used at arities {prior} and "
                        f"{len(term.arguments)}"
                    )
                for arg in term.arguments:
                    visit(arg)

        for clause in self.clauses:
            for lit in itertools.chain(
                clause.premise.literals, clause.conclusion.literals
            ):
                if isinstance(lit, Atom):
                    for term in lit.terms:
                        visit(term)
                elif isinstance(lit, Equality):
                    visit(lit.left)
                    visit(lit.right)
        for f in self.functions:
            arities.setdefault(f, 1)
        return arities

    def _interpretations(
        self,
        arg_tuples: Mapping[str, list[tuple[Value, ...]]],
        codomain: Sequence[Value],
    ) -> Iterator[dict[str, dict[tuple[Value, ...], Value]]]:
        functions = list(self.functions)

        def recurse(index: int, acc: dict[str, dict[tuple[Value, ...], Value]]):
            if index == len(functions):
                yield {f: dict(table) for f, table in acc.items()}
                return
            f = functions[index]
            tuples = arg_tuples[f]
            for outputs in itertools.product(codomain, repeat=len(tuples)):
                acc[f] = dict(zip(tuples, outputs))
                yield from recurse(index + 1, acc)
            acc.pop(f, None)

        yield from recurse(0, {})

    def _holds_under(
        self,
        source: Instance,
        target: Instance,
        interpretation: Mapping[str, Mapping[tuple[Value, ...], Value]],
    ) -> bool:
        def eval_term(term: Term, binding: Mapping[Var, Value]) -> Value:
            if isinstance(term, Var):
                return binding[term]
            if isinstance(term, FuncTerm):
                args = tuple(eval_term(a, binding) for a in term.arguments)
                table = interpretation[term.function]
                if args not in table:
                    # Argument outside the enumerated domain: interpret freely.
                    return SkolemValue(term.function, args)
                return table[args]
            return term.value

        for clause in self.clauses:
            atoms_only = Conjunction(clause.premise.atoms())
            for binding in evaluate(atoms_only, source):
                equalities_hold = all(
                    eval_term(eq.left, binding) == eval_term(eq.right, binding)
                    for eq in clause.premise.equalities()
                )
                if not equalities_hold:
                    continue
                for atom in clause.conclusion.atoms():
                    row = tuple(eval_term(t, binding) for t in atom.terms)
                    if row not in target.rows(atom.relation):
                        return False
        return True

    def __repr__(self) -> str:
        funcs = ", ".join(self.functions)
        body = "\n".join(f"    {c!r}" for c in self.clauses)
        return f"∃{funcs}[\n{body}\n]"
