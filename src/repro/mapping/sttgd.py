"""Source-to-target tuple-generating dependencies and schema mappings.

An st-tgd is a sentence ``∀x̄ (φ_S(x̄) → ∃ȳ ψ_T(x̄, ȳ))`` with conjunctive
``φ`` over the source schema and ``ψ`` over the target schema (paper,
Section 2, formula (1)).  A :class:`SchemaMapping` bundles a source
schema, a target schema, a set of st-tgds and optional target
dependencies, and gives the standard satisfaction and solution-space
semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..logic.evaluation import Binding, evaluate, satisfiable
from ..logic.formulas import Atom, Conjunction
from ..logic.parser import ParsedRule, parse_rule, parse_rules
from ..logic.terms import Var
from ..relational.instance import Instance
from ..relational.schema import Schema
from .dependencies import TargetDependency


@dataclass(frozen=True)
class StTgd:
    """One source-to-target tgd ``premise → ∃(existentials) conclusion``.

    The premise may contain equality/inequality/constant-predicate side
    conditions (used by enriched mapping languages); a *plain* st-tgd has
    atoms only.  The conclusion is a conjunction of atoms.  Existential
    variables are exactly the conclusion variables not bound by the
    premise.
    """

    premise: Conjunction
    conclusion: Conjunction

    def __post_init__(self) -> None:
        if not self.conclusion.atoms():
            raise ValueError("st-tgd conclusion must contain at least one atom")
        non_atoms = [
            lit for lit in self.conclusion.literals if not isinstance(lit, Atom)
        ]
        if non_atoms:
            raise ValueError(
                f"st-tgd conclusions are conjunctions of atoms; found {non_atoms!r}"
            )

    # -- structure ---------------------------------------------------------

    @property
    def universal_variables(self) -> tuple[Var, ...]:
        """Premise variables (implicitly universally quantified)."""
        return tuple(self.premise.variables())

    @property
    def frontier(self) -> tuple[Var, ...]:
        """Variables shared by premise and conclusion (the exported ones)."""
        premise_vars = set(self.premise.variables())
        return tuple(v for v in self.conclusion.variables() if v in premise_vars)

    @property
    def existential_variables(self) -> tuple[Var, ...]:
        """Conclusion variables not bound by the premise (∃-quantified)."""
        premise_vars = set(self.premise.variables())
        return tuple(v for v in self.conclusion.variables() if v not in premise_vars)

    def is_full(self) -> bool:
        """Whether the tgd has no existential variables (a *full* tgd).

        Full tgds are the fragment closed under composition (Fagin et al.,
        cited in the paper's Section 2).
        """
        return not self.existential_variables

    def source_relations(self) -> set[str]:
        return self.premise.relations()

    def target_relations(self) -> set[str]:
        return self.conclusion.relations()

    # -- semantics ---------------------------------------------------------

    def satisfied_by(self, source: Instance, target: Instance) -> bool:
        """Whether ``(source, target) ⊨ tgd``.

        For every premise binding in *source*, some extension of the
        frontier binding must witness the conclusion in *target*.
        """
        for binding in evaluate(self.premise, source):
            frontier_binding = {v: binding[v] for v in self.frontier}
            if not satisfiable(self.conclusion, target, seed=frontier_binding):
                return False
        return True

    def violations(self, source: Instance, target: Instance) -> list[Binding]:
        """Premise bindings whose conclusion is not witnessed in *target*."""
        missing = []
        for binding in evaluate(self.premise, source):
            frontier_binding = {v: binding[v] for v in self.frontier}
            if not satisfiable(self.conclusion, target, seed=frontier_binding):
                missing.append(binding)
        return missing

    # -- transformation ----------------------------------------------------

    def normalize(self) -> list["StTgd"]:
        """Split the conclusion into connected components of existentials.

        Two conclusion atoms belong together iff they share an existential
        variable.  Splitting preserves logical equivalence and gives the
        single-component tgds that the inversion construction and the lens
        compiler both prefer.
        """
        atoms = self.conclusion.atoms()
        existentials = set(self.existential_variables)
        # Union-find over atoms, merging atoms sharing an existential.
        parent = list(range(len(atoms)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        for (i, a), (j, b) in itertools.combinations(enumerate(atoms), 2):
            if existentials & set(a.variables()) & set(b.variables()):
                union(i, j)
        groups: dict[int, list[Atom]] = {}
        for i, a in enumerate(atoms):
            groups.setdefault(find(i), []).append(a)
        if len(groups) <= 1:
            return [self]
        return [StTgd(self.premise, Conjunction(group)) for group in groups.values()]

    def rename_variables(self, suffix: str) -> "StTgd":
        """A variant with every variable renamed by appending *suffix*.

        Used to keep variables of different tgds disjoint during
        composition.
        """
        renaming = {
            v: Var(f"{v.name}{suffix}")
            for v in set(self.premise.variables()) | set(self.conclusion.variables())
        }
        return StTgd(self.premise.substitute(renaming), self.conclusion.substitute(renaming))

    def to_text(self) -> str:
        """The tgd in the parser's concrete syntax (re-parseable).

        >>> StTgd.parse("Emp(x) -> exists y . Manager(x, y)").to_text()
        'Emp(x) -> exists y . Manager(x, y)'
        """
        from ..logic.printing import conjunction_to_text

        lhs = conjunction_to_text(self.premise)
        rhs = conjunction_to_text(self.conclusion)
        existentials = self.existential_variables
        if existentials:
            names = ", ".join(v.name for v in existentials)
            return f"{lhs} -> exists {names} . {rhs}"
        return f"{lhs} -> {rhs}"

    @classmethod
    def parse(cls, text: str) -> "StTgd":
        """Parse an st-tgd from text, e.g. ``"Emp(x) -> exists y . Manager(x, y)"``."""
        rule = parse_rule(text)
        return cls.from_parsed(rule)

    @classmethod
    def from_parsed(cls, rule: ParsedRule) -> "StTgd":
        explicit, conclusion = rule.single_rhs()
        tgd = cls(rule.lhs, conclusion)
        declared = set(explicit)
        inferred = set(tgd.existential_variables)
        if declared and declared != inferred:
            raise ValueError(
                f"declared existentials {sorted(v.name for v in declared)} disagree "
                f"with inferred {sorted(v.name for v in inferred)} in {text_of(rule)}"
            )
        return tgd

    def __repr__(self) -> str:
        existentials = self.existential_variables
        if existentials:
            names = ", ".join(v.name for v in existentials)
            return f"{self.premise!r} → ∃{names}. {self.conclusion!r}"
        return f"{self.premise!r} → {self.conclusion!r}"


def text_of(rule: ParsedRule) -> str:
    return repr(rule)


@dataclass(frozen=True)
class SchemaMapping:
    """A schema mapping ``M = (S, T, Σ_st [, Σ_t])``.

    ``tgds`` relate source to target; ``target_dependencies`` (egds and
    target tgds) constrain the target alone.  A pair ``(I, J)`` satisfies
    the mapping iff it satisfies every st-tgd and ``J`` satisfies every
    target dependency.
    """

    source: Schema
    target: Schema
    tgds: tuple[StTgd, ...]
    target_dependencies: tuple[TargetDependency, ...] = field(default_factory=tuple)

    def __init__(
        self,
        source: Schema,
        target: Schema,
        tgds: Iterable[StTgd],
        target_dependencies: Iterable[TargetDependency] = (),
    ) -> None:
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "tgds", tuple(tgds))
        object.__setattr__(self, "target_dependencies", tuple(target_dependencies))
        self._validate()

    def _validate(self) -> None:
        for tgd in self.tgds:
            for atom in tgd.premise.atoms():
                if atom.relation not in self.source:
                    raise ValueError(
                        f"premise atom {atom!r} references {atom.relation!r}, "
                        f"not a source relation"
                    )
                if atom.arity != self.source[atom.relation].arity:
                    raise ValueError(f"arity mismatch in premise atom {atom!r}")
            for atom in tgd.conclusion.atoms():
                if atom.relation not in self.target:
                    raise ValueError(
                        f"conclusion atom {atom!r} references {atom.relation!r}, "
                        f"not a target relation"
                    )
                if atom.arity != self.target[atom.relation].arity:
                    raise ValueError(f"arity mismatch in conclusion atom {atom!r}")

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(
        cls,
        source: Schema,
        target: Schema,
        text: str,
        target_dependencies: Iterable[TargetDependency] = (),
    ) -> "SchemaMapping":
        """Parse a mapping from a block of tgd lines (see :mod:`repro.logic.parser`)."""
        tgds = [StTgd.from_parsed(rule) for rule in parse_rules(text)]
        return cls(source, target, tgds, target_dependencies)

    def with_tgds(self, tgds: Iterable[StTgd]) -> "SchemaMapping":
        return SchemaMapping(
            self.source, self.target, list(self.tgds) + list(tgds), self.target_dependencies
        )

    def normalize(self) -> "SchemaMapping":
        """Split every tgd into existential-connected components."""
        out: list[StTgd] = []
        for tgd in self.tgds:
            out.extend(tgd.normalize())
        return SchemaMapping(self.source, self.target, out, self.target_dependencies)

    # -- semantics ---------------------------------------------------------

    def is_full(self) -> bool:
        """Whether every tgd is full (no existentials)."""
        return all(t.is_full() for t in self.tgds)

    def to_text(self) -> str:
        """The mapping as a re-parseable block of tgd lines.

        Target dependencies are not part of the text format and are
        rejected (serialize them separately).
        """
        if self.target_dependencies:
            raise ValueError(
                "to_text() cannot serialize target dependencies; "
                "write them separately"
            )
        return "\n".join(t.to_text() for t in self.tgds)

    def satisfied_by(self, source: Instance, target: Instance) -> bool:
        """Whether ``(source, target)`` satisfies all tgds and target deps."""
        if not all(t.satisfied_by(source, target) for t in self.tgds):
            return False
        return all(d.satisfied_in(target) for d in self.target_dependencies)

    def is_solution(self, source: Instance, candidate: Instance) -> bool:
        """Whether *candidate* is a solution for *source* under this mapping."""
        return self.satisfied_by(source, candidate)

    def __iter__(self) -> Iterator[StTgd]:
        return iter(self.tgds)

    def __len__(self) -> int:
        return len(self.tgds)

    def __repr__(self) -> str:
        lines = [f"  {t!r}" for t in self.tgds]
        lines += [f"  [target] {d!r}" for d in self.target_dependencies]
        body = "\n".join(lines)
        return f"SchemaMapping(\n{body}\n)"
