"""Deterministic fault injection: every degradation path testable in CI.

The canonical import path is :mod:`repro.service.faults`; the
implementation lives here (a leaf module) so the layers it instruments —
:mod:`repro.mapping.chase` and :mod:`repro.exec.parallel` — can import
the hook without cycles.

Code under test calls :func:`fault_point` at named seams; a
:class:`FaultPlan` installed via :func:`fault_injection` decides, from a
deterministic schedule, whether the Nth arrival at a seam raises, sleeps
or passes.  With no plan installed the hook is one global read and a
``None`` check — effectively free on the chase hot path.

Seams currently instrumented:

* ``"pool.spawn"``  — :class:`~repro.exec.parallel.ParallelExchange`
  creating its ``ProcessPoolExecutor`` (inject ``OSError`` to simulate
  spawn failure);
* ``"pool.map"``    — dispatching a shard batch to the pool (inject
  ``BrokenProcessPool`` to simulate a worker crash);
* ``"chase.step"``  — each target-dependency chase step (inject a sleep
  to simulate a slow/hostile chase and trip deadlines).

Cookbook::

    from repro.service.faults import FaultPlan, fault_injection

    # the first two shard dispatches crash the pool, the third succeeds
    with fault_injection(FaultPlan.pool_crashes(2)):
        service.exchange(source)

    # a seeded schedule: reproducible, but not hand-placed
    with fault_injection(FaultPlan.seeded(7, site="pool.map", faults=2, horizon=8)):
        ...
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "active_fault_plan",
    "fault_injection",
    "fault_point",
    "install_fault_plan",
]

KNOWN_SITES = ("pool.spawn", "pool.map", "chase.step")


class InjectedFault(RuntimeError):
    """Default exception for injected faults with no explicit type."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: at *site*, on visit number *index* (0-based).

    ``exc`` (an exception class or instance) is raised; with ``exc``
    unset and ``sleep_seconds`` > 0 the fault sleeps instead (a "slow
    chase"); with neither, :class:`InjectedFault` is raised.
    """

    site: str
    index: int
    exc: type[BaseException] | BaseException | None = None
    sleep_seconds: float = 0.0

    def fire(self) -> None:
        if self.exc is None and self.sleep_seconds > 0:
            time.sleep(self.sleep_seconds)
            return
        exc = self.exc if self.exc is not None else InjectedFault(
            f"injected fault at {self.site}[{self.index}]"
        )
        if isinstance(exc, type):
            exc = exc(f"injected fault at {self.site}[{self.index}]")
        raise exc


@dataclass
class FaultPlan:
    """A deterministic schedule of faults, consumed as seams are visited.

    The plan counts arrivals per seam; arrival *i* at seam *s* fires the
    fault scheduled at ``(s, i)`` if any.  ``fired`` and ``hits`` make
    the consumed schedule assertable in tests.
    """

    faults: tuple[Fault, ...] = ()
    _by_site: dict[str, dict[int, Fault]] = field(init=False, repr=False)
    _hits: dict[str, int] = field(init=False, repr=False)
    _fired: list[Fault] = field(init=False, repr=False)
    _lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_site = {}
        for fault in self.faults:
            slot = self._by_site.setdefault(fault.site, {})
            if fault.index in slot:
                raise ValueError(
                    f"two faults scheduled at {fault.site}[{fault.index}]"
                )
            slot[fault.index] = fault
        self._hits = {}
        self._fired = []
        self._lock = threading.Lock()

    # -- constructors --------------------------------------------------------

    @classmethod
    def pool_crashes(cls, count: int, site: str = "pool.map") -> "FaultPlan":
        """The first *count* visits to *site* raise ``BrokenProcessPool``."""
        from concurrent.futures.process import BrokenProcessPool

        return cls(
            tuple(
                Fault(site, i, exc=BrokenProcessPool) for i in range(count)
            )
        )

    @classmethod
    def pool_spawn_failures(cls, count: int) -> "FaultPlan":
        """The first *count* pool creations raise ``OSError``."""
        return cls(tuple(Fault("pool.spawn", i, exc=OSError) for i in range(count)))

    @classmethod
    def slow_chase(cls, seconds: float, steps: int = 1_000_000) -> "FaultPlan":
        """Every chase step up to *steps* sleeps *seconds* (trips deadlines)."""
        return cls(
            tuple(
                Fault("chase.step", i, sleep_seconds=seconds)
                for i in range(steps)
            )
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        site: str = "pool.map",
        faults: int = 2,
        horizon: int = 8,
        exc: type[BaseException] | None = None,
    ) -> "FaultPlan":
        """*faults* crashes at ``random.Random(seed)``-chosen visit indices.

        The schedule is a pure function of the arguments — the same seed
        always fails the same visits, so CI failures reproduce locally.
        """
        if faults > horizon:
            raise ValueError(f"cannot place {faults} faults in horizon {horizon}")
        if exc is None:
            from concurrent.futures.process import BrokenProcessPool

            exc = BrokenProcessPool
        indices = sorted(random.Random(seed).sample(range(horizon), faults))
        return cls(tuple(Fault(site, i, exc=exc) for i in indices))

    def merged_with(self, other: "FaultPlan") -> "FaultPlan":
        """One plan scheduling both plans' faults (indices must not clash)."""
        return FaultPlan(self.faults + other.faults)

    # -- runtime -------------------------------------------------------------

    def trigger(self, site: str) -> None:
        """Record a visit to *site*; fire the fault scheduled for it, if any."""
        with self._lock:
            index = self._hits.get(site, 0)
            self._hits[site] = index + 1
            fault = self._by_site.get(site, {}).get(index)
            if fault is not None:
                self._fired.append(fault)
        if fault is not None:
            fault.fire()

    def hits(self, site: str) -> int:
        """How many times *site* was visited under this plan."""
        return self._hits.get(site, 0)

    @property
    def fired(self) -> tuple[Fault, ...]:
        """The faults that actually fired, in firing order."""
        return tuple(self._fired)


_active: FaultPlan | None = None


def active_fault_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` (the normal, fault-free state)."""
    return _active


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install *plan* globally (``None`` disables injection); returns it."""
    global _active
    _active = plan
    return plan


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope *plan* around a block, restoring the previous plan after."""
    previous = _active
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)


def fault_point(site: str) -> None:
    """The seam hook: a no-op unless a plan is installed.

    Instrumented code calls this at the seams listed in the module
    docstring; injected exceptions propagate exactly as the real fault
    would (a ``BrokenProcessPool`` from ``"pool.map"`` takes the same
    retry path as a genuine worker crash).
    """
    plan = _active
    if plan is not None:
        plan.trigger(site)
