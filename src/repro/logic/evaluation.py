"""Evaluation of conjunctive formulas over instances.

:func:`evaluate` computes all satisfying variable bindings of a
:class:`~repro.logic.formulas.Conjunction` in an instance.  This is the
workhorse for:

* firing tgds in the chase (premise bindings);
* checking dependency satisfaction ``(I, J) ⊨ σ``;
* naive evaluation of queries over instances with nulls (certain answers).

The evaluator treats labelled nulls as ordinary values ("naive table"
evaluation); the certain-answers layer filters null-carrying answers.

Two evaluation strategies are provided:

* :func:`evaluate` — the default engine.  It plans a join order once up
  front (greedy most-bound-first, smaller relation on ties) and matches
  each atom by probing a per-``(relation, columns)`` hash index of the
  instance on the atom's bound positions, falling back to a relation
  scan for atoms with no bound position — and for the *first*
  single-atom probe of a not-yet-built index, where one scan is
  strictly cheaper than building the index for a single lookup.  Index
  builds/hits/misses/skips and rows scanned are published to the
  :mod:`repro.obs` metrics registry (``evaluate.*`` counters).
* :func:`evaluate_scan` — the seed reference engine: dynamic
  most-bound-first atom selection with full relation scans.  Kept as
  the oracle for cross-checking the indexed engine and as the baseline
  in ``benchmarks/bench_chase_scaling.py``.

Both engines raise :class:`ArityMismatchError` when a query atom's arity
disagrees with a relation that *is* present in the instance — a
malformed query/instance pair used to be silently skipped row by row.

:func:`evaluate_delta` is the semi-naive primitive used by the chase:
it enumerates only the bindings that touch at least one tuple of a
given delta.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..obs import get_registry
from ..relational.instance import Instance, Row
from ..relational.values import Value, is_constant
from .formulas import (
    Atom,
    Conjunction,
    ConstantPredicate,
    Equality,
    Inequality,
)
from .terms import Const, FuncTerm, Var, evaluate_term

Binding = dict[Var, Value]

Delta = Mapping[str, Iterable[Row]]

_ENV_DEFAULT = os.environ.get("REPRO_EVAL_INDEXES", "1").lower() not in {
    "0",
    "false",
    "no",
    "off",
}
_indexes_enabled: bool = _ENV_DEFAULT


def indexes_enabled() -> bool:
    """Whether :func:`evaluate` probes hash indexes by default."""
    return _indexes_enabled


def set_indexes_enabled(enabled: bool | None) -> bool:
    """Set the default indexing mode (``None`` restores the env default).

    The default comes from ``REPRO_EVAL_INDEXES`` (on unless set to
    ``0``/``false``/``no``/``off``).  Benchmarks flip this to measure the
    scan baseline; per-call overrides use ``evaluate(..., use_indexes=)``.
    """
    global _indexes_enabled
    _indexes_enabled = _ENV_DEFAULT if enabled is None else bool(enabled)
    return _indexes_enabled


class ArityMismatchError(ValueError):
    """A query atom's arity disagrees with the instance's relation.

    Every row of a validated :class:`~repro.relational.instance.Instance`
    matches its relation's declared arity, so a mismatching atom can
    never bind — silently yielding nothing used to hide malformed
    queries and hand-built instances.
    """

    def __init__(self, atom: Atom, expected: int) -> None:
        super().__init__(
            f"atom {atom!r} has arity {atom.arity} but relation "
            f"{atom.relation!r} has arity {expected} in the instance; "
            f"the query does not fit the instance schema"
        )
        self.atom = atom
        self.expected = expected


def _check_arities(atoms: Sequence[Atom], instance: Instance) -> None:
    for atom in atoms:
        if atom.relation in instance.schema:
            expected = instance.schema[atom.relation].arity
            if expected != atom.arity:
                raise ArityMismatchError(atom, expected)


def _match_atom(atom: Atom, row: Row, binding: Binding) -> Binding | None:
    """Extend *binding* so the atom matches *row*, or ``None``.

    Function terms in atoms are matched by evaluating them under the
    binding (all their variables must already be bound).
    """
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Var):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif isinstance(term, Const):
            if term.value != value:
                return None
        else:  # FuncTerm: evaluate and compare
            try:
                if evaluate_term(term, extended) != value:
                    return None
            except KeyError:
                return None
    return extended


def _atom_boundness(atom: Atom, binding: Binding) -> int:
    """How constrained an atom is under *binding* (higher = match first)."""
    score = 0
    for term in atom.terms:
        if isinstance(term, Const):
            score += 2
        elif isinstance(term, Var) and term in binding:
            score += 2
        elif isinstance(term, FuncTerm):
            score += 1
    return score


def _check_side_conditions(conjunction: Conjunction, binding: Binding) -> bool:
    """Check equalities, inequalities and C() under a complete binding."""
    for lit in conjunction.literals:
        if isinstance(lit, Equality):
            if evaluate_term(lit.left, binding) != evaluate_term(lit.right, binding):
                return False
        elif isinstance(lit, Inequality):
            if evaluate_term(lit.left, binding) == evaluate_term(lit.right, binding):
                return False
        elif isinstance(lit, ConstantPredicate):
            if not is_constant(evaluate_term(lit.term, binding)):
                return False
    return True


def greedy_join_order(
    atoms: Sequence[Atom],
    seed_vars: Iterable[Var],
    size_of: "Callable[[str], int]",
) -> list[int]:
    """The greedy most-bound-first join order over *atoms*.

    Scores each pending atom by its bound positions (constants and
    variables bound by the seed or an earlier atom count 2, function
    terms 1) and picks the most constrained, breaking ties toward the
    relation with the smaller ``size_of(relation)``.  This is the order
    the indexed evaluator plans with; :mod:`repro.backends.sql` reuses it
    as the FROM-clause join hint when lowering tgd premises to SELECTs,
    so both engines walk premises the same way.
    """
    bound: set[Var] = set(seed_vars)
    remaining = list(range(len(atoms)))
    order: list[int] = []

    def boundness(i: int) -> int:
        score = 0
        for term in atoms[i].terms:
            if isinstance(term, Const):
                score += 2
            elif isinstance(term, Var):
                if term in bound:
                    score += 2
            else:
                score += 1
        return score

    while remaining:
        best = max(remaining, key=lambda i: (boundness(i), -size_of(atoms[i].relation)))
        remaining.remove(best)
        order.append(best)
        for term in atoms[best].terms:
            if isinstance(term, Var):
                bound.add(term)
    return order


def _plan_joins(
    atoms: Sequence[Atom], seed_vars: Iterable[Var], instance: Instance
) -> tuple[list[int], list[tuple[int, ...]]]:
    """Choose a join order and the index-probe columns for each atom.

    Greedy most-bound-first (same scoring as the seed engine's dynamic
    choice), breaking ties toward smaller relations; chosen **once** per
    evaluation instead of per recursion step.  ``probes[k]`` holds the
    positions of ``atoms[order[k]]`` whose value is known when the atom
    is reached — constant positions plus positions of variables bound by
    the seed or an earlier atom — i.e. the key columns of the hash index
    probed for that atom.  Atoms with no bound position fall back to a
    scan (empty probe tuple).
    """

    store = instance.columnar_store

    def size(relation: str) -> int:
        if relation not in instance.schema:
            return 0
        # A store answers from its row counts — materializing value
        # tuples just to count them would force lazily decoded shards.
        if store is not None:
            return store.counts.get(relation, 0)
        return len(instance.rows(relation))

    order = greedy_join_order(atoms, seed_vars, size)
    bound: set[Var] = set(seed_vars)
    probes: list[tuple[int, ...]] = []
    for i in order:
        atom = atoms[i]
        probes.append(
            tuple(
                position
                for position, term in enumerate(atom.terms)
                if isinstance(term, Const) or (isinstance(term, Var) and term in bound)
            )
        )
        for term in atom.terms:
            if isinstance(term, Var):
                bound.add(term)
    return order, probes


def _publish(counters: dict[str, int]) -> None:
    registry = get_registry()
    registry.counter("evaluate.calls").inc()
    for name, amount in counters.items():
        if amount:
            registry.counter(name).inc(amount)


def _id_join_eligible(instance: Instance, atoms: Sequence[Atom]) -> bool:
    """Whether the id-space join engine can run this evaluation.

    Requires a column store already attached to the instance (never
    built speculatively — serial workloads that would not amortize a
    build keep the row engine) and FuncTerm-free atoms (function terms
    need value-level evaluation per row).  Side-condition literals are
    fine either way: they are checked on the materialized value binding.
    """
    if instance.columnar_store is None:
        return False
    return all(
        isinstance(term, (Var, Const)) for atom in atoms for term in atom.terms
    )


def _evaluate_id_bindings(
    instance: Instance,
    atoms: Sequence[Atom],
    order: Sequence[int],
    probes: Sequence[tuple[int, ...]],
    counters: dict[str, int],
) -> Iterator[dict[Var, int]]:
    """The id-space join core: yield variable → id bindings.

    Probes and scans entirely over the attached column store's integer
    ids — hash-index keys are int tuples, equality checks are int
    comparisons, and unbound variables bind by reading a column array
    cell.  No :class:`Value` is ever built here; callers that need value
    bindings materialize them per *result* binding
    (:func:`_evaluate_ids`), and the chase's id-space fast path consumes
    the raw id bindings directly.
    """
    store = instance.columnar_store
    planned = [atoms[i] for i in order]
    # Per planned atom: constant ids for Const positions (an absent
    # constant can match no row — the conjunction is unsatisfiable), the
    # positions binding a fresh variable, and within-atom duplicate
    # positions needing an id equality check.  Probed columns (constants
    # and already-bound variables) are guaranteed by the index key and
    # are skipped in the inner loop.
    specs = []
    for atom, columns in zip(planned, probes):
        const_ids: dict[int, int] = {}
        firsts: list[tuple[int, Var]] = []
        dup_checks: list[tuple[int, int]] = []
        first_at: dict[Var, int] = {}
        probed = set(columns)
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const):
                ident = store.peek(term.value)
                if ident is None:
                    return
                const_ids[position] = ident
            else:
                seen_at = first_at.get(term)
                if position in probed:
                    continue
                if seen_at is None and term not in first_at:
                    first_at[term] = position
                    firsts.append((position, term))
                elif seen_at is not None:
                    dup_checks.append((position, seen_at))
        specs.append((atom, columns, const_ids, firsts, dup_checks))

    def recurse(depth: int, id_binding: dict[Var, int]) -> Iterator[dict[Var, int]]:
        if depth == len(planned):
            yield id_binding
            return
        atom, columns, const_ids, firsts, dup_checks = specs[depth]
        cols = store.columns[atom.relation]
        if columns:
            terms = atom.terms
            key = tuple(
                const_ids[c] if isinstance(terms[c], Const) else id_binding[terms[c]]
                for c in columns
            )
            counters["evaluate.index_probes"] += 1
            bucket = store.index(atom.relation, columns).get(key)
            if bucket is None:
                counters["evaluate.index_misses"] += 1
                return
            counters["evaluate.index_hits"] += 1
            positions: Iterable[int] = bucket
        else:
            positions = range(store.counts[atom.relation])
        for row_position in positions:
            counters["evaluate.rows_scanned"] += 1
            matched = True
            for position, first_position in dup_checks:
                if cols[position][row_position] != cols[first_position][row_position]:
                    matched = False
                    break
            if not matched:
                continue
            extended = dict(id_binding)
            for position, var in firsts:
                ident = cols[position][row_position]
                bound = extended.get(var)
                if bound is None:
                    extended[var] = ident
                elif bound != ident:
                    matched = False
                    break
            if matched:
                yield from recurse(depth + 1, extended)

    yield from recurse(0, {})


def _evaluate_ids(
    conjunction: Conjunction,
    instance: Instance,
    atoms: Sequence[Atom],
    order: Sequence[int],
    probes: Sequence[tuple[int, ...]],
    counters: dict[str, int],
) -> Iterator[Binding]:
    """Id-space join with value bindings: the :func:`evaluate` engine.

    Wraps :func:`_evaluate_id_bindings`, materializing one value binding
    per result (ids are in bijection with the store's values, so id
    equality is value equality) and applying side-condition literals,
    which need value-level term evaluation.
    """
    values = instance.columnar_store.values
    for id_binding in _evaluate_id_bindings(instance, atoms, order, probes, counters):
        binding = {var: values[ident] for var, ident in id_binding.items()}
        if _check_side_conditions(conjunction, binding):
            yield binding


def premise_ids_eligible(conjunction: Conjunction, instance: Instance) -> bool:
    """Whether :func:`evaluate_premise_ids` would run (no evaluation done).

    The chase's fast path decides eligibility for *all* tgds before
    firing any of them — a mid-run fallback would leave the null factory
    partially consumed — so the gate is exposed separately from the
    evaluation itself.
    """
    atoms = conjunction.atoms()
    return (
        len(atoms) == len(conjunction.literals)
        and _indexes_enabled
        and _id_join_eligible(instance, atoms)
    )


def evaluate_premise_ids(
    conjunction: Conjunction, instance: Instance
) -> tuple[tuple[Var, ...], list[tuple[int, ...]]] | None:
    """All premise bindings as id tuples, or ``None`` when ineligible.

    The chase's id-space fast path (:mod:`repro.mapping.chase`) asks for
    every satisfying binding of a tgd premise as a tuple of store ids —
    no value objects, no per-binding dicts surviving the call.  Returns
    ``(variables, rows)`` with *variables* sorted by name and each row
    the ids bound to them in that order; rows come back unsorted (the
    chase sorts id tuples itself, which on a value-sorted table is
    exactly the canonical ``value_sort_key`` firing order).

    ``None`` (fall back to value-space evaluation) when the instance has
    no attached column store, indexing is disabled, any atom carries a
    function term, or the conjunction has side-condition literals
    (equalities and friends need value-level term evaluation).
    """
    atoms = conjunction.atoms()
    if len(atoms) != len(conjunction.literals):
        return None
    if not _indexes_enabled or not _id_join_eligible(instance, atoms):
        return None
    _check_arities(atoms, instance)
    variables = tuple(
        sorted(
            {t for atom in atoms for t in atom.terms if isinstance(t, Var)},
            key=lambda v: v.name,
        )
    )
    if any(atom.relation not in instance.schema for atom in atoms):
        return variables, []
    order, probes = _plan_joins(atoms, (), instance)
    counters = {
        "evaluate.index_builds": 0,
        "evaluate.index_probes": 0,
        "evaluate.index_hits": 0,
        "evaluate.index_misses": 0,
        "evaluate.index_skips": 0,
        "evaluate.rows_scanned": 0,
        "evaluate.id_joins": 1,
    }
    rows: list[tuple[int, ...]] = []
    try:
        for id_binding in _evaluate_id_bindings(
            instance, atoms, order, probes, counters
        ):
            rows.append(tuple(id_binding[v] for v in variables))
    finally:
        _publish(counters)
    return variables, rows


def evaluate(
    conjunction: Conjunction,
    instance: Instance,
    seed: Mapping[Var, Value] | None = None,
    *,
    use_indexes: bool | None = None,
) -> Iterator[Binding]:
    """Yield every binding of the conjunction's variables satisfying it.

    *seed* pre-binds some variables (used when checking whether a tgd's
    conclusion is already witnessed for a given premise binding).
    Atoms over relations absent from the instance simply fail to match;
    atoms whose arity disagrees with a relation that *is* present raise
    :class:`ArityMismatchError`.  *use_indexes* overrides the module
    default (:func:`set_indexes_enabled`); with indexing off the planned
    join order is kept but every atom is matched by scanning.
    """
    atoms = list(conjunction.atoms())
    _check_arities(atoms, instance)
    initial: Binding = dict(seed) if seed else {}
    if any(atom.relation not in instance.schema for atom in atoms):
        return
    indexed = _indexes_enabled if use_indexes is None else use_indexes
    order, probes = _plan_joins(atoms, initial, instance)
    planned = [atoms[i] for i in order]
    counters = {
        "evaluate.index_builds": 0,
        "evaluate.index_probes": 0,
        "evaluate.index_hits": 0,
        "evaluate.index_misses": 0,
        "evaluate.index_skips": 0,
        "evaluate.rows_scanned": 0,
        "evaluate.id_joins": 0,
    }
    # Instances that already carry a column store (unpacked shards in
    # pool workers, sliced shards in the partitioner) evaluate in id
    # space: index keys become packed int tuples and equality checks
    # compare ids, materializing values only per result binding.  Seeded
    # evaluations (witness checks) and function terms keep the row
    # engine — seeds arrive as values, and FuncTerms need value-level
    # evaluation per row.
    if indexed and not initial and _id_join_eligible(instance, atoms):
        counters["evaluate.id_joins"] = 1
        try:
            yield from _evaluate_ids(
                conjunction, instance, atoms, order, probes, counters
            )
        finally:
            _publish(counters)
        return
    # Single-atom conjunctions issue exactly one index probe, so building
    # a missing index (a full scan *plus* dict construction) is strictly
    # more expensive than the one scan the probe replaces.  Skip the
    # build for the first such request per (relation, columns) on each
    # instance; a second request on the same instance builds as usual, so
    # repeatedly-probed instances (e.g. the standard chase's witness
    # snapshots) still amortize into hash probes.
    skip_single = (
        indexed
        and len(planned) == 1
        and bool(probes[0])
        and not instance.has_index(planned[0].relation, probes[0])
        and instance.defer_single_probe(planned[0].relation, probes[0])
    )

    def recurse(depth: int, binding: Binding) -> Iterator[Binding]:
        if depth == len(planned):
            if _check_side_conditions(conjunction, binding):
                yield dict(binding)
            return
        atom = planned[depth]
        columns = probes[depth]
        rows: Iterable[Row]
        if indexed and columns and not (skip_single and depth == 0):
            if not instance.has_index(atom.relation, columns):
                counters["evaluate.index_builds"] += 1
            index = instance.index(atom.relation, columns)
            key = tuple(
                term.value if isinstance(term, Const) else binding[term]
                for term in (atom.terms[c] for c in columns)
            )
            counters["evaluate.index_probes"] += 1
            bucket = index.get(key)
            if bucket is None:
                counters["evaluate.index_misses"] += 1
                return
            counters["evaluate.index_hits"] += 1
            rows = bucket
        else:
            if skip_single and depth == 0 and columns:
                counters["evaluate.index_skips"] += 1
            rows = instance.rows(atom.relation)
        for row in rows:
            counters["evaluate.rows_scanned"] += 1
            extended = _match_atom(atom, row, binding)
            if extended is not None:
                yield from recurse(depth + 1, extended)

    try:
        yield from recurse(0, initial)
    finally:
        _publish(counters)


def evaluate_scan(
    conjunction: Conjunction,
    instance: Instance,
    seed: Mapping[Var, Value] | None = None,
) -> Iterator[Binding]:
    """The seed reference evaluator: dynamic atom order, full scans.

    Chooses the most-constrained pending atom at every recursion step and
    matches it against every row of its relation.  Semantically identical
    to :func:`evaluate` (the test suite cross-checks the two); kept as
    the oracle and scan baseline.
    """
    atoms = list(conjunction.atoms())
    _check_arities(atoms, instance)

    def recurse(pending: list[Atom], binding: Binding) -> Iterator[Binding]:
        if not pending:
            if _check_side_conditions(conjunction, binding):
                yield dict(binding)
            return
        # Most-constrained atom first keeps the search shallow.
        best_index = max(
            range(len(pending)), key=lambda i: _atom_boundness(pending[i], binding)
        )
        atom = pending[best_index]
        rest = pending[:best_index] + pending[best_index + 1 :]
        if atom.relation not in instance.schema:
            return
        for row in instance.rows(atom.relation):
            extended = _match_atom(atom, row, binding)
            if extended is not None:
                yield from recurse(rest, extended)

    initial: Binding = dict(seed) if seed else {}
    yield from recurse(atoms, initial)


def evaluate_delta(
    conjunction: Conjunction,
    instance: Instance,
    delta: Delta,
    seed: Mapping[Var, Value] | None = None,
) -> Iterator[Binding]:
    """Yield the bindings that use at least one *delta* row.

    The semi-naive primitive: *delta* maps relation names to the rows
    added since the conjunction was last evaluated over *instance*.  For
    each atom occurrence, the atom is matched against the delta rows only
    while the remaining literals are evaluated against the full instance;
    bindings reachable through several delta atoms are deduplicated.  The
    union of :func:`evaluate_delta` over the delta and the bindings found
    before the delta was added is exactly ``evaluate`` over the grown
    instance.
    """
    seen: set[tuple] = set()
    literals = conjunction.literals
    base: Binding = dict(seed) if seed else {}
    for position, literal in enumerate(literals):
        if not isinstance(literal, Atom):
            continue
        rows = delta.get(literal.relation)
        if not rows:
            continue
        rest = Conjunction(literals[:position] + literals[position + 1 :])
        for row in rows:
            if len(row) != literal.arity:
                raise ArityMismatchError(literal, len(row))
            partial = _match_atom(literal, row, base)
            if partial is None:
                continue
            for binding in evaluate(rest, instance, seed=partial):
                key = tuple(sorted((v.name, binding[v]) for v in binding))
                if key not in seen:
                    seen.add(key)
                    yield binding


def satisfiable(
    conjunction: Conjunction,
    instance: Instance,
    seed: Mapping[Var, Value] | None = None,
) -> bool:
    """Whether at least one satisfying binding exists."""
    return next(evaluate(conjunction, instance, seed), None) is not None


def answers(
    conjunction: Conjunction,
    head_variables: Sequence[Var],
    instance: Instance,
) -> set[tuple[Value, ...]]:
    """All answer tuples of the CQ ``head_variables ← conjunction``."""
    return {
        tuple(b[v] for v in head_variables) for b in evaluate(conjunction, instance)
    }


def answer_witnesses(
    conjunction: Conjunction,
    head_variables: Sequence[Var],
    instance: Instance,
) -> Iterator[tuple[tuple[Value, ...], Binding, list[tuple[str, tuple[Value, ...]]]]]:
    """Yield ``(answer, binding, grounded_atoms)`` per satisfying binding.

    The witness view of :func:`answers`: alongside each answer tuple, the
    full query-variable binding that produced it and the query atoms
    grounded under that binding — the instance facts justifying the
    answer.  One triple per *binding*, so an answer reachable several
    ways appears once per witness; callers keep the first (or all).
    """
    atoms = list(conjunction.atoms())
    for binding in evaluate(conjunction, instance):
        answer = tuple(binding[v] for v in head_variables)
        yield answer, binding, ground_atoms(atoms, binding)


def ground_atoms(
    atoms: Sequence[Atom], binding: Mapping[Var, Value]
) -> list[tuple[str, tuple[Value, ...]]]:
    """Ground each atom under *binding* to (relation, row) pairs.

    Unbound variables raise; callers bind existentials (to fresh nulls or
    Skolem values) before grounding.
    """
    return [
        (a.relation, tuple(evaluate_term(t, binding) for t in a.terms)) for a in atoms
    ]
