"""Evaluation of conjunctive formulas over instances.

:func:`evaluate` computes all satisfying variable bindings of a
:class:`~repro.logic.formulas.Conjunction` in an instance.  This is the
workhorse for:

* firing tgds in the chase (premise bindings);
* checking dependency satisfaction ``(I, J) ⊨ σ``;
* naive evaluation of queries over instances with nulls (certain answers).

The evaluator treats labelled nulls as ordinary values ("naive table"
evaluation); the certain-answers layer filters null-carrying answers.
Atoms are matched greedily most-bound-first; within an atom, rows are
matched with unification of repeated variables and constants.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..relational.instance import Instance, Row
from ..relational.values import Value, is_constant
from .formulas import (
    Atom,
    Conjunction,
    ConstantPredicate,
    Equality,
    Inequality,
)
from .terms import Const, FuncTerm, Var, evaluate_term

Binding = dict[Var, Value]


def _match_atom(atom: Atom, row: Row, binding: Binding) -> Binding | None:
    """Extend *binding* so the atom matches *row*, or ``None``.

    Function terms in atoms are matched by evaluating them under the
    binding (all their variables must already be bound).
    """
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Var):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
        elif isinstance(term, Const):
            if term.value != value:
                return None
        else:  # FuncTerm: evaluate and compare
            try:
                if evaluate_term(term, extended) != value:
                    return None
            except KeyError:
                return None
    return extended


def _atom_boundness(atom: Atom, binding: Binding) -> int:
    """How constrained an atom is under *binding* (higher = match first)."""
    score = 0
    for term in atom.terms:
        if isinstance(term, Const):
            score += 2
        elif isinstance(term, Var) and term in binding:
            score += 2
        elif isinstance(term, FuncTerm):
            score += 1
    return score


def _check_side_conditions(conjunction: Conjunction, binding: Binding) -> bool:
    """Check equalities, inequalities and C() under a complete binding."""
    for lit in conjunction.literals:
        if isinstance(lit, Equality):
            if evaluate_term(lit.left, binding) != evaluate_term(lit.right, binding):
                return False
        elif isinstance(lit, Inequality):
            if evaluate_term(lit.left, binding) == evaluate_term(lit.right, binding):
                return False
        elif isinstance(lit, ConstantPredicate):
            if not is_constant(evaluate_term(lit.term, binding)):
                return False
    return True


def evaluate(
    conjunction: Conjunction,
    instance: Instance,
    seed: Mapping[Var, Value] | None = None,
) -> Iterator[Binding]:
    """Yield every binding of the conjunction's variables satisfying it.

    *seed* pre-binds some variables (used when checking whether a tgd's
    conclusion is already witnessed for a given premise binding).
    Atoms over relations absent from the instance simply fail to match.
    """
    atoms = list(conjunction.atoms())

    def recurse(pending: list[Atom], binding: Binding) -> Iterator[Binding]:
        if not pending:
            if _check_side_conditions(conjunction, binding):
                yield dict(binding)
            return
        # Most-constrained atom first keeps the search shallow.
        best_index = max(
            range(len(pending)), key=lambda i: _atom_boundness(pending[i], binding)
        )
        atom = pending[best_index]
        rest = pending[:best_index] + pending[best_index + 1 :]
        if atom.relation not in instance.schema:
            return
        for row in instance.rows(atom.relation):
            if len(row) != atom.arity:
                continue
            extended = _match_atom(atom, row, binding)
            if extended is not None:
                yield from recurse(rest, extended)

    initial: Binding = dict(seed) if seed else {}
    yield from recurse(atoms, initial)


def satisfiable(
    conjunction: Conjunction,
    instance: Instance,
    seed: Mapping[Var, Value] | None = None,
) -> bool:
    """Whether at least one satisfying binding exists."""
    return next(evaluate(conjunction, instance, seed), None) is not None


def answers(
    conjunction: Conjunction,
    head_variables: Sequence[Var],
    instance: Instance,
) -> set[tuple[Value, ...]]:
    """All answer tuples of the CQ ``head_variables ← conjunction``."""
    return {
        tuple(b[v] for v in head_variables) for b in evaluate(conjunction, instance)
    }


def ground_atoms(
    atoms: Sequence[Atom], binding: Mapping[Var, Value]
) -> list[tuple[str, tuple[Value, ...]]]:
    """Ground each atom under *binding* to (relation, row) pairs.

    Unbound variables raise; callers bind existentials (to fresh nulls or
    Skolem values) before grounding.
    """
    return [
        (a.relation, tuple(evaluate_term(t, binding) for t in a.terms)) for a in atoms
    ]
