"""Terms of the dependency language: variables, constants, function terms.

Function terms (``f(x)``) only occur in second-order tgds, the output
language of mapping composition (paper, Example 2).  First-order st-tgds
use only variables and constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping, Union

from ..relational.values import Constant, SkolemValue, Value, constant


@dataclass(frozen=True, slots=True)
class Var:
    """A first-order variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A constant term wrapping a relational :class:`Constant` value."""

    value: Constant

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class FuncTerm:
    """A second-order function term ``f(t₁, …, tₙ)`` (SO-tgds only)."""

    function: str
    arguments: tuple["Term", ...]

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.arguments)
        return f"{self.function}({args})"


Term = Union[Var, Const, FuncTerm]


def const(raw: Hashable) -> Const:
    """Wrap a raw scalar as a constant term."""
    return Const(constant(raw))


def var(name: str) -> Var:
    """Shorthand variable constructor."""
    return Var(name)


def variables_of(term: Term) -> Iterator[Var]:
    """All variables occurring in *term* (depth-first, with repetition)."""
    if isinstance(term, Var):
        yield term
    elif isinstance(term, FuncTerm):
        for arg in term.arguments:
            yield from variables_of(arg)


def functions_of(term: Term) -> Iterator[str]:
    """All function symbols occurring in *term*."""
    if isinstance(term, FuncTerm):
        yield term.function
        for arg in term.arguments:
            yield from functions_of(arg)


def substitute_term(term: Term, binding: Mapping[Var, Term]) -> Term:
    """Apply a variable → term substitution (identity off the binding)."""
    if isinstance(term, Var):
        return binding.get(term, term)
    if isinstance(term, FuncTerm):
        return FuncTerm(
            term.function, tuple(substitute_term(a, binding) for a in term.arguments)
        )
    return term


def evaluate_term(term: Term, binding: Mapping[Var, Value]) -> Value:
    """Ground a term to a value under a variable → value binding.

    Function terms are interpreted freely: ``f(t̄)`` becomes the
    :class:`SkolemValue` ``f(v̄)``.  This is the canonical interpretation
    used by the SO-tgd chase.
    """
    if isinstance(term, Var):
        try:
            return binding[term]
        except KeyError:
            raise KeyError(f"unbound variable {term!r}") from None
    if isinstance(term, Const):
        return term.value
    return SkolemValue(
        term.function, tuple(evaluate_term(a, binding) for a in term.arguments)
    )


def is_ground(term: Term) -> bool:
    """Whether the term contains no variables."""
    return next(variables_of(term), None) is None
