"""Render formulas back to the parser's concrete syntax.

``repr`` on formulas uses mathematical glyphs (∧, →, ∃) for readability;
this module emits the ASCII grammar of :mod:`repro.logic.parser`, so
mappings can be written to `.tgd` files and re-parsed losslessly (the CLI
workflow).  Round-trip property: ``parse(print(x))`` is structurally
equal to ``x`` for every construct in the fragment.
"""

from __future__ import annotations

from .formulas import (
    Atom,
    Conjunction,
    ConstantPredicate,
    Equality,
    Inequality,
    Literal,
)
from .terms import Const, FuncTerm, Term, Var


class UnprintableError(ValueError):
    """The construct has no concrete syntax (e.g. exotic constant types)."""


def term_to_text(term: Term) -> str:
    """A term in parser syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        payload = term.value.value
        if isinstance(payload, bool):
            raise UnprintableError("boolean constants have no parser syntax")
        if isinstance(payload, (int, float)):
            return repr(payload)
        if isinstance(payload, str):
            if "'" in payload and '"' in payload:
                raise UnprintableError(
                    f"string constant {payload!r} mixes both quote kinds"
                )
            quote = '"' if "'" in payload else "'"
            return f"{quote}{payload}{quote}"
        raise UnprintableError(f"constant payload {payload!r} is not printable")
    if isinstance(term, FuncTerm):
        args = ", ".join(term_to_text(a) for a in term.arguments)
        return f"{term.function}({args})"
    raise UnprintableError(f"unknown term {term!r}")


def literal_to_text(literal: Literal) -> str:
    """A literal in parser syntax."""
    if isinstance(literal, Atom):
        args = ", ".join(term_to_text(t) for t in literal.terms)
        return f"{literal.relation}({args})"
    if isinstance(literal, Equality):
        return f"{term_to_text(literal.left)} = {term_to_text(literal.right)}"
    if isinstance(literal, Inequality):
        return f"{term_to_text(literal.left)} != {term_to_text(literal.right)}"
    if isinstance(literal, ConstantPredicate):
        return f"C({term_to_text(literal.term)})"
    raise UnprintableError(f"unknown literal {literal!r}")


def conjunction_to_text(conjunction: Conjunction) -> str:
    """A conjunction in parser syntax (comma-separated literals)."""
    if not conjunction.literals:
        raise UnprintableError("the empty conjunction has no parser syntax")
    return ", ".join(literal_to_text(lit) for lit in conjunction.literals)
