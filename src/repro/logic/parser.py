"""A text syntax for dependencies.

The examples and tests write dependencies the way the paper does::

    Emp(x) -> exists y . Manager(x, y)
    Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)
    Manager(x, x) -> SelfMngr(x)
    Parent(x, y), C(x), C(y) -> Father(x, y) | Mother(x, y)

Conventions:

* identifiers starting with an upper-case letter are **relation names**;
* identifiers starting with a lower-case letter are **variables**;
* numbers and quoted strings are **constants**;
* ``C(t)`` is the constant predicate (``C`` is reserved);
* ``exists v1, v2 .`` introduces explicit existential variables — optional,
  since existentials can be inferred as the RHS variables missing from the
  LHS;
* ``|`` separates disjuncts on the right-hand side (recovery language);
* ``=`` / ``!=`` write equalities and inequalities.

The parser produces plain :mod:`repro.logic.formulas` objects; the mapping
layer turns them into st-tgds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .formulas import (
    Atom,
    Conjunction,
    ConstantPredicate,
    Equality,
    Inequality,
    Literal,
)
from .terms import FuncTerm, Term, Var, const

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<neq>!=)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[(),.|=])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int


class ParseError(ValueError):
    """Raised on malformed dependency text."""


def _tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        if kind == "string":
            # normalize: includes the inner second group for floats
            pass
        if kind != "ws":
            token_kind = kind if kind != "sym" else match.group(0)
            if kind in ("arrow", "neq"):
                token_kind = match.group(0)
            tokens.append(Token(token_kind, match.group(0), pos))
        pos = match.end()
    return tokens


@dataclass(frozen=True)
class ParsedRule:
    """A parsed dependency: LHS conjunction, RHS disjuncts with existentials.

    ``branches`` holds ``(explicit_existentials, conjunction)`` pairs — one
    pair for plain tgds, several for disjunctive (recovery) rules.
    """

    lhs: Conjunction
    branches: tuple[tuple[tuple[Var, ...], Conjunction], ...]

    @property
    def is_disjunctive(self) -> bool:
        return len(self.branches) > 1

    def single_rhs(self) -> tuple[tuple[Var, ...], Conjunction]:
        if self.is_disjunctive:
            raise ParseError("rule has a disjunctive right-hand side")
        return self.branches[0]


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0
        self._text = text

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind!r} but found {token.text!r} at offset {token.position}"
            )
        return token

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    # -- grammar -----------------------------------------------------------

    def parse_rule(self) -> ParsedRule:
        lhs = self._conjunction()
        self._expect("->")
        branches = [self._branch()]
        while self._at("|"):
            self._next()
            branches.append(self._branch())
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(
                f"trailing input {token.text!r} at offset {token.position}"  # type: ignore[union-attr]
            )
        return ParsedRule(lhs, tuple(branches))

    def parse_conjunction(self) -> Conjunction:
        result = self._conjunction()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(
                f"trailing input {token.text!r} at offset {token.position}"  # type: ignore[union-attr]
            )
        return result

    def _branch(self) -> tuple[tuple[Var, ...], Conjunction]:
        existentials: list[Var] = []
        token = self._peek()
        if token is not None and token.kind == "name" and token.text == "exists":
            self._next()
            existentials.append(Var(self._expect("name").text))
            while self._at(","):
                self._next()
                existentials.append(Var(self._expect("name").text))
            self._expect(".")
        return tuple(existentials), self._conjunction()

    def _conjunction(self) -> Conjunction:
        literals = [self._literal()]
        while self._at(","):
            self._next()
            literals.append(self._literal())
        return Conjunction(literals)

    def _literal(self) -> Literal:
        token = self._peek()
        if token is None:
            raise ParseError("expected a literal, found end of input")
        if token.kind == "name" and token.text[0].isupper():
            return self._atom_or_constant_predicate()
        # term (in)equality
        left = self._term()
        op = self._next()
        if op.kind == "=":
            return Equality(left, self._term())
        if op.kind == "!=":
            return Inequality(left, self._term())
        raise ParseError(f"expected '=' or '!=' at offset {op.position}")

    def _atom_or_constant_predicate(self) -> Literal:
        name = self._expect("name").text
        self._expect("(")
        terms = [self._term()]
        while self._at(","):
            self._next()
            terms.append(self._term())
        self._expect(")")
        if name == "C":
            if len(terms) != 1:
                raise ParseError("C() takes exactly one argument")
            return ConstantPredicate(terms[0])
        return Atom(name, tuple(terms))

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "number":
            if "." in token.text:
                return const(float(token.text))
            return const(int(token.text))
        if token.kind == "string":
            return const(token.text[1:-1])
        if token.kind == "name":
            if self._at("("):
                # function term: f(t1, ..., tn)
                self._next()
                args = [self._term()]
                while self._at(","):
                    self._next()
                    args.append(self._term())
                self._expect(")")
                return FuncTerm(token.text, tuple(args))
            if token.text[0].isupper():
                raise ParseError(
                    f"{token.text!r} looks like a relation name used as a term "
                    f"at offset {token.position}; quote string constants"
                )
            return Var(token.text)
        raise ParseError(f"expected a term at offset {token.position}, got {token.text!r}")


def parse_rule(text: str) -> ParsedRule:
    """Parse one dependency rule (tgd or disjunctive rule)."""
    return _Parser(text).parse_rule()


def parse_rules(text: str) -> list[ParsedRule]:
    """Parse a block of rules: one per non-empty, non-comment line.

    Lines starting with ``#`` are comments; ``;`` also separates rules.
    """
    rules = []
    for chunk in re.split(r"[;\n]", text):
        chunk = chunk.strip()
        if not chunk or chunk.startswith("#"):
            continue
        rules.append(parse_rule(chunk))
    return rules


def parse_conjunction(text: str) -> Conjunction:
    """Parse a bare conjunction (for queries)."""
    return _Parser(text).parse_conjunction()
