"""A text syntax for dependencies.

The examples and tests write dependencies the way the paper does::

    Emp(x) -> exists y . Manager(x, y)
    Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)
    Manager(x, x) -> SelfMngr(x)
    Parent(x, y), C(x), C(y) -> Father(x, y) | Mother(x, y)

Conventions:

* identifiers starting with an upper-case letter are **relation names**;
* identifiers starting with a lower-case letter are **variables**;
* numbers and quoted strings are **constants**;
* ``C(t)`` is the constant predicate (``C`` is reserved);
* ``exists v1, v2 .`` introduces explicit existential variables — optional,
  since existentials can be inferred as the RHS variables missing from the
  LHS;
* ``|`` separates disjuncts on the right-hand side (recovery language);
* ``=`` / ``!=`` write equalities and inequalities.

The parser produces plain :mod:`repro.logic.formulas` objects; the mapping
layer turns them into st-tgds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .formulas import (
    Atom,
    Conjunction,
    ConstantPredicate,
    Equality,
    Inequality,
    Literal,
)
from .terms import FuncTerm, Term, Var, const

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<neq>!=)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[(),.|=])
    """,
    re.VERBOSE,
)


def _line_col(text: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of *offset* within *text*."""
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    return line, offset - last_newline


@dataclass(frozen=True)
class Span:
    """A source location: 1-based line/column plus the text it covers.

    ``source`` is a file name or other label (``None`` for ad-hoc
    strings); ``text`` is the rule (or token) text at the location.
    Spans flow from the parser into :mod:`repro.analysis` diagnostics.
    """

    line: int
    column: int
    source: str | None = None
    text: str = ""

    def location(self) -> str:
        """``file:line:column`` (or ``line:column`` without a source)."""
        prefix = f"{self.source}:" if self.source else ""
        return f"{prefix}{self.line}:{self.column}"

    def as_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "line": self.line,
            "column": self.column,
            "text": self.text,
        }

    def __repr__(self) -> str:
        return f"Span({self.location()})"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int
    line: int = 1
    column: int = 1


class ParseError(ValueError):
    """Raised on malformed dependency text.

    Carries the error position when known: ``offset`` (0-based character
    offset), ``line`` / ``column`` (1-based), and ``source`` (file name
    or ``None``).  The message always embeds the line/column so bare
    ``str(exc)`` stays actionable.
    """

    def __init__(
        self,
        message: str,
        *,
        offset: int | None = None,
        line: int | None = None,
        column: int | None = None,
        source: str | None = None,
    ) -> None:
        self.offset = offset
        self.line = line
        self.column = column
        self.source = source
        if line is not None:
            where = f"{source}:" if source else ""
            message = f"{message} ({where}line {line}, column {column})"
        super().__init__(message)

    @property
    def span(self) -> Span | None:
        """The error location as a :class:`Span` (``None`` if unknown)."""
        if self.line is None:
            return None
        return Span(self.line, self.column or 1, self.source)


def _tokenize(
    text: str,
    *,
    source: str | None = None,
    full_text: str | None = None,
    base_offset: int = 0,
) -> list[Token]:
    """Tokenize *text*; positions are absolute within *full_text*.

    When tokenizing one chunk of a multi-rule block, *full_text* and
    *base_offset* situate the chunk so line/column numbers refer to the
    original block (and hence the original file).
    """
    context = full_text if full_text is not None else text
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            line, column = _line_col(context, base_offset + pos)
            raise ParseError(
                f"unexpected character {text[pos]!r}",
                offset=base_offset + pos,
                line=line,
                column=column,
                source=source,
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            token_kind = kind if kind != "sym" else match.group(0)
            if kind in ("arrow", "neq"):
                token_kind = match.group(0)
            line, column = _line_col(context, base_offset + pos)
            tokens.append(
                Token(token_kind, match.group(0), base_offset + pos, line, column)
            )
        pos = match.end()
    return tokens


@dataclass(frozen=True)
class ParsedRule:
    """A parsed dependency: LHS conjunction, RHS disjuncts with existentials.

    ``branches`` holds ``(explicit_existentials, conjunction)`` pairs — one
    pair for plain tgds, several for disjunctive (recovery) rules.
    """

    lhs: Conjunction
    branches: tuple[tuple[tuple[Var, ...], Conjunction], ...]

    @property
    def is_disjunctive(self) -> bool:
        return len(self.branches) > 1

    def single_rhs(self) -> tuple[tuple[Var, ...], Conjunction]:
        if self.is_disjunctive:
            raise ParseError("rule has a disjunctive right-hand side")
        return self.branches[0]


class _Parser:
    def __init__(
        self,
        text: str,
        *,
        source: str | None = None,
        full_text: str | None = None,
        base_offset: int = 0,
    ) -> None:
        self._source = source
        self._context = full_text if full_text is not None else text
        self._base_offset = base_offset
        self._tokens = _tokenize(
            text, source=source, full_text=full_text, base_offset=base_offset
        )
        self._index = 0
        self._text = text

    # -- token helpers -----------------------------------------------------

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        if token is None:
            offset = self._base_offset + len(self._text)
            line, column = _line_col(self._context, offset)
        else:
            offset, line, column = token.position, token.line, token.column
        return ParseError(
            message, offset=offset, line=line, column=column, source=self._source
        )

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise self._error(f"unexpected end of input in {self._text.strip()!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise self._error(
                f"expected {kind!r} but found {token.text!r}", token
            )
        return token

    def _at(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    # -- grammar -----------------------------------------------------------

    def parse_rule(self) -> ParsedRule:
        lhs = self._conjunction()
        self._expect("->")
        branches = [self._branch()]
        while self._at("|"):
            self._next()
            branches.append(self._branch())
        token = self._peek()
        if token is not None:
            raise self._error(f"trailing input {token.text!r}", token)
        return ParsedRule(lhs, tuple(branches))

    def parse_conjunction(self) -> Conjunction:
        result = self._conjunction()
        token = self._peek()
        if token is not None:
            raise self._error(f"trailing input {token.text!r}", token)
        return result

    def _branch(self) -> tuple[tuple[Var, ...], Conjunction]:
        existentials: list[Var] = []
        token = self._peek()
        if token is not None and token.kind == "name" and token.text == "exists":
            self._next()
            existentials.append(Var(self._expect("name").text))
            while self._at(","):
                self._next()
                existentials.append(Var(self._expect("name").text))
            self._expect(".")
        return tuple(existentials), self._conjunction()

    def _conjunction(self) -> Conjunction:
        literals = [self._literal()]
        while self._at(","):
            self._next()
            literals.append(self._literal())
        return Conjunction(literals)

    def _literal(self) -> Literal:
        token = self._peek()
        if token is None:
            raise self._error("expected a literal, found end of input")
        if token.kind == "name" and token.text[0].isupper():
            return self._atom_or_constant_predicate()
        # term (in)equality
        left = self._term()
        op = self._next()
        if op.kind == "=":
            return Equality(left, self._term())
        if op.kind == "!=":
            return Inequality(left, self._term())
        raise self._error("expected '=' or '!='", op)

    def _atom_or_constant_predicate(self) -> Literal:
        name_token = self._expect("name")
        name = name_token.text
        self._expect("(")
        terms = [self._term()]
        while self._at(","):
            self._next()
            terms.append(self._term())
        self._expect(")")
        if name == "C":
            if len(terms) != 1:
                raise self._error("C() takes exactly one argument", name_token)
            return ConstantPredicate(terms[0])
        return Atom(name, tuple(terms))

    def _term(self) -> Term:
        token = self._next()
        if token.kind == "number":
            if "." in token.text:
                return const(float(token.text))
            return const(int(token.text))
        if token.kind == "string":
            return const(token.text[1:-1])
        if token.kind == "name":
            if self._at("("):
                # function term: f(t1, ..., tn)
                self._next()
                args = [self._term()]
                while self._at(","):
                    self._next()
                    args.append(self._term())
                self._expect(")")
                return FuncTerm(token.text, tuple(args))
            if token.text[0].isupper():
                raise self._error(
                    f"{token.text!r} looks like a relation name used as a term; "
                    f"quote string constants",
                    token,
                )
            return Var(token.text)
        raise self._error(f"expected a term, got {token.text!r}", token)


@dataclass(frozen=True)
class SpannedRule:
    """A parsed rule together with its source location."""

    rule: ParsedRule
    span: Span


def parse_rule(text: str, source: str | None = None) -> ParsedRule:
    """Parse one dependency rule (tgd or disjunctive rule)."""
    return _Parser(text, source=source).parse_rule()


def parse_rules_spanned(text: str, source: str | None = None) -> list[SpannedRule]:
    """Parse a block of rules, keeping each rule's source span.

    Rules are separated by newlines or ``;``; lines starting with ``#``
    are comments.  Parse errors carry the absolute line/column within the
    block, so errors in a ``.tgd`` file point at the real file position.
    """
    rules: list[SpannedRule] = []
    for match in re.finditer(r"[^;\n]+", text):
        chunk = match.group(0)
        stripped = chunk.strip()
        if not stripped or stripped.startswith("#"):
            continue
        leading = len(chunk) - len(chunk.lstrip())
        line, column = _line_col(text, match.start() + leading)
        rule = _Parser(
            chunk, source=source, full_text=text, base_offset=match.start()
        ).parse_rule()
        rules.append(SpannedRule(rule, Span(line, column, source, stripped)))
    return rules


def parse_rules(text: str) -> list[ParsedRule]:
    """Parse a block of rules: one per non-empty, non-comment line.

    Lines starting with ``#`` are comments; ``;`` also separates rules.
    """
    return [spanned.rule for spanned in parse_rules_spanned(text)]


def parse_conjunction(text: str) -> Conjunction:
    """Parse a bare conjunction (for queries)."""
    return _Parser(text).parse_conjunction()
