"""Formulas of the dependency language.

The fragment implemented is exactly what the paper's Section 2 needs:

* conjunctions of relational **atoms** — the bodies of st-tgds;
* **equalities** between terms — required by SO-tgds (Example 2's
  ``x = f(x)`` premise);
* **inequalities** and the **constant predicate** ``C(x)`` — required by
  the inversion language of Arenas et al. (Example 3 and the discussion of
  closure under inversion);
* **disjunctions** of conjunctions — required on the right-hand side of
  maximum recoveries (``Parent(x,y) → Father(x,y) ∨ Mother(x,y)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .terms import Const, FuncTerm, Term, Var, substitute_term, variables_of


@dataclass(frozen=True, slots=True)
class Atom:
    """A relational atom ``R(t₁, …, tₙ)``."""

    relation: str
    terms: tuple[Term, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Var]:
        """Variables of the atom, in order of first occurrence."""
        seen: dict[Var, None] = {}
        for term in self.terms:
            for v in variables_of(term):
                seen.setdefault(v, None)
        return list(seen)

    def substitute(self, binding: Mapping[Var, Term]) -> "Atom":
        return Atom(self.relation, tuple(substitute_term(t, binding) for t in self.terms))

    def is_first_order(self) -> bool:
        """Whether no term is a function term."""
        return all(not isinstance(t, FuncTerm) for t in self.terms)


@dataclass(frozen=True, slots=True)
class Equality:
    """``left = right`` between terms (SO-tgd premises use these)."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"{self.left!r} = {self.right!r}"

    def variables(self) -> list[Var]:
        seen: dict[Var, None] = {}
        for v in variables_of(self.left):
            seen.setdefault(v, None)
        for v in variables_of(self.right):
            seen.setdefault(v, None)
        return list(seen)

    def substitute(self, binding: Mapping[Var, Term]) -> "Equality":
        return Equality(substitute_term(self.left, binding), substitute_term(self.right, binding))


@dataclass(frozen=True, slots=True)
class Inequality:
    """``left ≠ right`` — part of the closed inversion language of [4]."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"{self.left!r} ≠ {self.right!r}"

    def variables(self) -> list[Var]:
        seen: dict[Var, None] = {}
        for v in variables_of(self.left):
            seen.setdefault(v, None)
        for v in variables_of(self.right):
            seen.setdefault(v, None)
        return list(seen)

    def substitute(self, binding: Mapping[Var, Term]) -> "Inequality":
        return Inequality(substitute_term(self.left, binding), substitute_term(self.right, binding))


@dataclass(frozen=True, slots=True)
class ConstantPredicate:
    """``C(t)`` — true iff the term denotes a constant (not a null).

    The inversion literature adds this predicate to distinguish the
    constants of the original source from nulls invented by the exchange.
    """

    term: Term

    def __repr__(self) -> str:
        return f"C({self.term!r})"

    def variables(self) -> list[Var]:
        return list(dict.fromkeys(variables_of(self.term)))

    def substitute(self, binding: Mapping[Var, Term]) -> "ConstantPredicate":
        return ConstantPredicate(substitute_term(self.term, binding))


Literal = Atom | Equality | Inequality | ConstantPredicate


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of literals: the basic building block of dependencies."""

    literals: tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal]) -> None:
        object.__setattr__(self, "literals", tuple(literals))

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __repr__(self) -> str:
        if not self.literals:
            return "⊤"
        return " ∧ ".join(repr(lit) for lit in self.literals)

    def atoms(self) -> list[Atom]:
        return [lit for lit in self.literals if isinstance(lit, Atom)]

    def equalities(self) -> list[Equality]:
        return [lit for lit in self.literals if isinstance(lit, Equality)]

    def inequalities(self) -> list[Inequality]:
        return [lit for lit in self.literals if isinstance(lit, Inequality)]

    def constant_predicates(self) -> list[ConstantPredicate]:
        return [lit for lit in self.literals if isinstance(lit, ConstantPredicate)]

    def variables(self) -> list[Var]:
        """Variables in order of first occurrence."""
        seen: dict[Var, None] = {}
        for lit in self.literals:
            for v in lit.variables():
                seen.setdefault(v, None)
        return list(seen)

    def substitute(self, binding: Mapping[Var, Term]) -> "Conjunction":
        return Conjunction(lit.substitute(binding) for lit in self.literals)

    def relations(self) -> set[str]:
        return {a.relation for a in self.atoms()}

    def and_also(self, other: "Conjunction") -> "Conjunction":
        return Conjunction(self.literals + other.literals)

    def is_first_order(self) -> bool:
        """Whether no literal contains a function term."""
        for lit in self.literals:
            if isinstance(lit, Atom) and not lit.is_first_order():
                return False
            if isinstance(lit, (Equality, Inequality)):
                if isinstance(lit.left, FuncTerm) or isinstance(lit.right, FuncTerm):
                    return False
            if isinstance(lit, ConstantPredicate) and isinstance(lit.term, FuncTerm):
                return False
        return True


@dataclass(frozen=True)
class Disjunction:
    """A disjunction of conjunctions — RHS language of maximum recoveries."""

    branches: tuple[Conjunction, ...]

    def __init__(self, branches: Iterable[Conjunction]) -> None:
        branches = tuple(branches)
        if not branches:
            raise ValueError("disjunction needs at least one branch")
        object.__setattr__(self, "branches", branches)

    def __iter__(self) -> Iterator[Conjunction]:
        return iter(self.branches)

    def __len__(self) -> int:
        return len(self.branches)

    def __getitem__(self, index: int) -> Conjunction:
        return self.branches[index]

    def __repr__(self) -> str:
        return " ∨ ".join(f"({b!r})" for b in self.branches)

    def variables(self) -> list[Var]:
        seen: dict[Var, None] = {}
        for branch in self.branches:
            for v in branch.variables():
                seen.setdefault(v, None)
        return list(seen)

    def substitute(self, binding: Mapping[Var, Term]) -> "Disjunction":
        return Disjunction(b.substitute(binding) for b in self.branches)


def conj(*literals: Literal) -> Conjunction:
    """Shorthand conjunction constructor."""
    return Conjunction(literals)


def atom(relation: str, *terms: Term | str | int) -> Atom:
    """Shorthand atom constructor: bare strings become variables, ints constants.

    >>> atom("Emp", "x")          # Emp(x)
    >>> atom("Age", "x", 42)      # Age(x, 42)
    """
    out: list[Term] = []
    for t in terms:
        if isinstance(t, (Var, Const, FuncTerm)):
            out.append(t)
        elif isinstance(t, str):
            out.append(Var(t))
        else:
            from .terms import const

            out.append(const(t))
    return Atom(relation, tuple(out))
