"""Chase-cost estimation for the mapping optimizer.

Costs are in "estimated premise bindings" — the number of tuples the
chase's join evaluation is expected to enumerate, the quantity that
dominates an interpreted exchange.  Built on
:meth:`repro.stats.Statistics.estimate_bindings` (System-R style);
absolute accuracy is not the point, *relative ordering* of rewrite
candidates is.
"""

from __future__ import annotations

from typing import Sequence

from ..mapping.dependencies import TargetTgd
from ..mapping.sttgd import SchemaMapping
from ..stats import RelationStatistics, Statistics

__all__ = ["estimate_chase_cost", "propagate_statistics", "pipeline_cost"]


def propagate_statistics(mapping: SchemaMapping, statistics: Statistics) -> Statistics:
    """Estimated statistics of the mapping's *target* after one exchange.

    Each tgd contributes its estimated binding count to every relation in
    its conclusion; target tgds with single-atom premises cascade one
    round (enough for the foreign-key shapes the optimizer handles).
    Distinct counts are left at the cardinality default — downstream
    estimates only need rough magnitudes.
    """
    cards: dict[str, float] = {name: 0.0 for name in mapping.target.relation_names}
    for tgd in mapping.tgds:
        bindings = statistics.estimate_bindings(tgd.premise, mapping.source)
        for atom in tgd.conclusion.atoms():
            cards[atom.relation] = cards.get(atom.relation, 0.0) + bindings
    # One cascade round for target tgds reading already-estimated relations.
    interim = Statistics(
        {
            name: RelationStatistics(name, int(round(count)))
            for name, count in cards.items()
        }
    )
    for dep in mapping.target_dependencies:
        if not isinstance(dep, TargetTgd):
            continue
        bindings = interim.estimate_bindings(dep.premise, mapping.target)
        for atom in dep.conclusion.atoms():
            cards[atom.relation] = cards.get(atom.relation, 0.0) + bindings
    return Statistics(
        {
            name: RelationStatistics(name, int(round(count)))
            for name, count in cards.items()
        }
    )


def estimate_chase_cost(mapping: SchemaMapping, statistics: Statistics) -> float:
    """Estimated bindings enumerated by one exchange under *mapping*.

    The st-tgd phase joins each premise against the source; the
    target-dependency phase joins each dependency premise against the
    (estimated) target.
    """
    cost = sum(
        statistics.estimate_bindings(tgd.premise, mapping.source)
        for tgd in mapping.tgds
    )
    if mapping.target_dependencies:
        target_stats = propagate_statistics(mapping, statistics)
        cost += sum(
            target_stats.estimate_bindings(dep.premise, mapping.target)
            for dep in mapping.target_dependencies
        )
    return cost


def pipeline_cost(
    stages: Sequence[SchemaMapping], statistics: Statistics
) -> tuple[float, list[float]]:
    """Total and per-stage estimated cost of chasing *stages* in sequence.

    Stage *i + 1* is costed against the statistics *propagated* through
    stage *i* — this is what makes n materialized hops more expensive
    than one composed chase: every hop re-joins the (growing)
    intermediate instance.
    """
    per_stage: list[float] = []
    stats = statistics
    for stage in stages:
        per_stage.append(estimate_chase_cost(stage, stats))
        stats = propagate_statistics(stage, stats)
    return sum(per_stage), per_stage
