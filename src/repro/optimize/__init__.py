"""repro.optimize — semantic rewriting of mappings and pipelines.

Built on the containment/equivalence decision procedures
(:mod:`repro.mapping.containment`) and composition-with-constraints
(:mod:`repro.mapping.composition`): prune redundant tgds, collapse
pipelines into one composed chase, choose an evolution strategy by
cost — every rewrite chase-verified before being suggested.  Surface:
``repro optimize`` (text/``--json``/``--apply``).
"""

from .cost import estimate_chase_cost, pipeline_cost, propagate_statistics
from .evolution import EvolutionDecision, choose_evolution_strategy
from .optimizer import optimize_mapping, optimize_pipeline
from .rewrite import RewriteAction, RewritePlan

__all__ = [
    "EvolutionDecision",
    "RewriteAction",
    "RewritePlan",
    "choose_evolution_strategy",
    "estimate_chase_cost",
    "optimize_mapping",
    "optimize_pipeline",
    "pipeline_cost",
    "propagate_statistics",
]
