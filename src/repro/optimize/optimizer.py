"""The mapping optimizer: prune redundant tgds, collapse pipelines.

Two entry points:

* :func:`optimize_mapping` — prune tgds proven implied by the rest of
  the mapping (chase-based implication, Calì–Torlone);
* :func:`optimize_pipeline` — additionally collapse consecutive stages
  into one composed mapping (Fagin et al. composition, with the
  Arenas–Fagin–Nash target-constraint folding) so the exchange runs one
  chase instead of n materialized hops.

Every rewrite is **verified before being suggested**: the original and
optimized mappings are chased on generated source instances and the
results compared with :func:`~repro.relational.canonical.canonically_equal`
(falling back to homomorphic equivalence for inexact canonical forms).
A refuted rewrite is abandoned — the plan then returns the original
stages with the offending actions marked ``verified=False``.

Observability: every phase runs in a span (``optimize.prune``,
``optimize.collapse``, ``optimize.verify``) with prune decisions recorded
as span attributes, and the ``optimize.*`` counters/gauges feed
``--trace-json`` so analysis time is attributable per pass.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Sequence

from ..mapping.chase import ChaseFailure, universal_solution
from ..mapping.composition import CompositionError, compose_with_constraints
from ..mapping.containment import ContainmentUndecidable, prune_redundant
from ..mapping.sttgd import SchemaMapping
from ..obs import get_registry, get_tracer
from ..options import DEFAULT_MAX_STEPS
from ..relational.canonical import canonically_equal
from ..relational.homomorphism import homomorphically_equivalent
from ..relational.instance import Instance
from ..stats import Statistics
from ..workloads.generators import random_instance
from .cost import estimate_chase_cost, pipeline_cost
from .rewrite import RewriteAction, RewritePlan

__all__ = ["optimize_mapping", "optimize_pipeline"]


def _exchange_through(
    stages: Sequence[SchemaMapping],
) -> Callable[[Instance], Instance]:
    """The n-hop exchange: chase each stage, feeding the next."""

    def run(source: Instance) -> Instance:
        current = source
        for stage in stages:
            current = universal_solution(stage, current.cast(stage.source))
        return current

    return run


def _verify_stages(
    original: Sequence[SchemaMapping],
    optimized: Sequence[SchemaMapping],
    *,
    seeds: Sequence[int],
    rows: int,
) -> dict:
    """Chase both stage lists on generated instances and compare results.

    A :class:`ChaseFailure` (an egd refuting the generated instance) must
    occur on *both* sides to count as agreement.  Returns a verification
    record for the plan; ``equivalent`` is ``False`` the moment one
    instance disagrees.
    """
    before = _exchange_through(original)
    after = _exchange_through(optimized)
    source_schema = original[0].source
    checked = 0
    with get_tracer().span("optimize.verify", instances=len(seeds)) as span:
        for seed in seeds:
            source = random_instance(
                source_schema, Random(seed), rows_per_relation=rows
            )
            checked += 1
            get_registry().counter("optimize.verify_chases").inc(2)
            try:
                expected = before(source)
            except ChaseFailure:
                try:
                    after(source)
                except ChaseFailure:
                    continue  # both reject this instance: consistent
                span.set(outcome="refuted", seed=seed)
                return {"checked": checked, "equivalent": False, "seed": seed}
            try:
                actual = after(source)
            except ChaseFailure:
                span.set(outcome="refuted", seed=seed)
                return {"checked": checked, "equivalent": False, "seed": seed}
            if not (
                canonically_equal(expected, actual)
                or homomorphically_equivalent(expected, actual)
            ):
                span.set(outcome="refuted", seed=seed)
                return {"checked": checked, "equivalent": False, "seed": seed}
        span.set(outcome="equivalent")
    return {"checked": checked, "equivalent": True}


def _prune_stage(
    stage: SchemaMapping,
    stage_index: int | None,
    actions: list[RewriteAction],
    *,
    max_steps: int,
) -> SchemaMapping:
    """Prune one stage's redundant tgds, recording each decision."""
    label = "" if stage_index is None else f"stage {stage_index}: "
    with get_tracer().span(
        "optimize.prune", tgds=len(stage.tgds), stage=stage_index or 0
    ) as span:
        try:
            pruned_stage, dropped = prune_redundant(stage, max_steps=max_steps)
        except ContainmentUndecidable as exc:
            span.set(outcome="skipped", reason=exc.reason)
            actions.append(
                RewriteAction(
                    "skip-prune",
                    f"{label}redundancy analysis skipped: {exc}",
                    {"reason": exc.reason},
                )
            )
            return stage
        span.set(pruned=len(dropped), dropped=repr(dropped))
        get_registry().counter("optimize.tgds_pruned").inc(len(dropped))
        for index in dropped:
            actions.append(
                RewriteAction(
                    "prune-tgd",
                    f"{label}tgd#{index} is implied by the remaining tgds: "
                    f"{stage.tgds[index].to_text()}",
                    {"stage": stage_index, "tgd": index,
                     "text": stage.tgds[index].to_text()},
                )
            )
        return pruned_stage


def _finalize(
    kind: str,
    original: Sequence[SchemaMapping],
    optimized: Sequence[SchemaMapping],
    actions: list[RewriteAction],
    statistics: Statistics,
    *,
    verify: bool,
    verify_seeds: Sequence[int],
    verify_rows: int,
) -> RewritePlan:
    """Verify (reverting on refutation) and assemble the plan."""
    changed = list(optimized) != list(original)
    verification: dict = {"checked": 0, "equivalent": None}
    if changed and verify:
        verification = _verify_stages(
            original, optimized, seeds=verify_seeds, rows=verify_rows
        )
        if verification["equivalent"]:
            actions = [
                a.with_verified(True)
                if a.kind in ("prune-tgd", "collapse-stages")
                else a
                for a in actions
            ]
        else:
            actions = [
                a.with_verified(False)
                if a.kind in ("prune-tgd", "collapse-stages")
                else a
                for a in actions
            ]
            actions.append(
                RewriteAction(
                    "revert",
                    "chase cross-check refuted the rewrite; keeping the "
                    "original mapping (please report this — it indicates a "
                    "bug in the implication or composition procedures)",
                    {"seed": verification.get("seed")},
                )
            )
            optimized = list(original)
            get_registry().counter("optimize.rewrites_reverted").inc()
    cost_before, _ = pipeline_cost(original, statistics)
    cost_after, _ = pipeline_cost(optimized, statistics)
    get_registry().gauge("optimize.estimated_cost_before").set(cost_before)
    get_registry().gauge("optimize.estimated_cost_after").set(cost_after)
    return RewritePlan(
        kind,
        tuple(original),
        tuple(optimized),
        tuple(actions),
        cost_before,
        cost_after,
        verification,
    )


def optimize_mapping(
    mapping: SchemaMapping,
    statistics: Statistics | None = None,
    *,
    verify: bool = True,
    verify_seeds: Sequence[int] = (0, 1),
    verify_rows: int = 6,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RewritePlan:
    """Rewrite plan for a single mapping: prune redundant tgds.

    *statistics* (defaulting to :meth:`Statistics.assumed` over the source
    schema) drive the before/after cost estimates.  With *verify* on
    (default), the pruned mapping is chased against the original on
    ``len(verify_seeds)`` generated instances before being suggested.
    """
    stats = statistics or Statistics.assumed(mapping.source)
    actions: list[RewriteAction] = []
    with get_tracer().span("optimize.mapping", tgds=len(mapping.tgds)):
        optimized = _prune_stage(mapping, None, actions, max_steps=max_steps)
        return _finalize(
            "mapping",
            [mapping],
            [optimized],
            actions,
            stats,
            verify=verify,
            verify_seeds=verify_seeds,
            verify_rows=verify_rows,
        )


def optimize_pipeline(
    stages: Sequence[SchemaMapping],
    statistics: Statistics | None = None,
    *,
    verify: bool = True,
    verify_seeds: Sequence[int] = (0, 1),
    verify_rows: int = 6,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RewritePlan:
    """Rewrite plan for a pipeline: prune, collapse, prune again.

    Each stage is pruned *before* composition is attempted — a redundant
    existential tgd is not just wasted chase work, its Skolem function is
    often the very thing that obstructs de-Skolemization of the
    composition.  The pruned stages are then folded left-to-right through
    :func:`compose_with_constraints`; a stage that refuses to compose
    (SO-tgd obstruction or mid-schema constraints outside the foldable
    fragment) closes the current group and starts a new one, so the plan
    degrades gracefully to "collapse what can be collapsed".  Groups that
    absorbed more than one stage are pruned once more (composition can
    introduce implied tgds), and the whole optimized pipeline is
    chase-verified against the original end to end.
    """
    stages = list(stages)
    if not stages:
        raise ValueError("cannot optimize an empty pipeline")
    for i in range(len(stages) - 1):
        if stages[i].target != stages[i + 1].source:
            raise ValueError(
                f"stage {i}'s target schema differs from stage {i + 1}'s "
                f"source; not a pipeline"
            )
    stats = statistics or Statistics.assumed(stages[0].source)
    actions: list[RewriteAction] = []
    with get_tracer().span("optimize.pipeline", stages=len(stages)):
        pre_pruned = [
            _prune_stage(stage, i, actions, max_steps=max_steps)
            for i, stage in enumerate(stages)
        ]
        collapsed: list[tuple[SchemaMapping, int]] = []
        group_start = 0
        current = pre_pruned[0]
        with get_tracer().span("optimize.collapse", stages=len(stages)) as span:
            for index in range(1, len(pre_pruned)):
                try:
                    composed = compose_with_constraints(
                        current, pre_pruned[index]
                    )
                except CompositionError as error:
                    actions.append(
                        RewriteAction(
                            "keep-stage",
                            f"stages {group_start}..{index - 1} cannot absorb "
                            f"stage {index}: {error}",
                            {
                                "stages": [group_start, index],
                                "obstruction": (
                                    error.obstruction.as_dict()
                                    if error.obstruction
                                    else None
                                ),
                            },
                        )
                    )
                    collapsed.append((current, index - group_start))
                    current = pre_pruned[index]
                    group_start = index
                    continue
                actions.append(
                    RewriteAction(
                        "collapse-stages",
                        f"stages {group_start}..{index} compose into one "
                        f"mapping with {len(composed.tgds)} tgd(s); one chase "
                        f"replaces {index - group_start + 1} hops",
                        {
                            "stages": [group_start, index],
                            "tgds": len(composed.tgds),
                        },
                    )
                )
                get_registry().counter("optimize.stages_collapsed").inc()
                current = composed
            collapsed.append((current, len(pre_pruned) - group_start))
            span.set(collapsed_to=len(collapsed))
        optimized = [
            _prune_stage(stage, i, actions, max_steps=max_steps)
            if group_size > 1
            else stage
            for i, (stage, group_size) in enumerate(collapsed)
        ]
        return _finalize(
            "pipeline",
            stages,
            optimized,
            actions,
            stats,
            verify=verify,
            verify_seeds=verify_seeds,
            verify_rows=verify_rows,
        )
