"""Rewrite plans: the optimizer's structured, renderable output.

A :class:`RewritePlan` records what the optimizer did (or declined to
do): the original and optimized stages, one :class:`RewriteAction` per
decision, before/after tgd counts and estimated chase cost, the
verification outcome, and any analysis diagnostics (RA6xx) gathered
along the way.  ``repro optimize`` renders it as text or JSON; with
``--apply`` the optimized stages are written back to disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..analysis.diagnostics import Diagnostic
from ..mapping.sttgd import SchemaMapping

__all__ = ["RewriteAction", "RewritePlan"]


@dataclass(frozen=True)
class RewriteAction:
    """One optimizer decision.

    ``kind`` is a stable tag: ``"prune-tgd"``, ``"collapse-stages"``,
    ``"keep-stage"`` (collapse obstructed), ``"skip-prune"`` (outside the
    decidable fragment), ``"revert"`` (verification failed — the rewrite
    was abandoned).  ``verified`` is ``True`` once the chase cross-check
    confirmed the rewrite, ``False`` when it refuted it, ``None`` when
    verification did not apply or was disabled.
    """

    kind: str
    description: str
    data: Mapping[str, object] = field(default_factory=dict)
    verified: bool | None = None

    def with_verified(self, verified: bool) -> "RewriteAction":
        return RewriteAction(self.kind, self.description, dict(self.data), verified)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "data": dict(self.data),
            "verified": self.verified,
        }


@dataclass(frozen=True)
class RewritePlan:
    """The optimizer's output: stages before/after plus the decision log."""

    kind: str  # "mapping" | "pipeline"
    original: tuple[SchemaMapping, ...]
    optimized: tuple[SchemaMapping, ...]
    actions: tuple[RewriteAction, ...]
    cost_before: float
    cost_after: float
    verification: Mapping[str, object]
    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def changed(self) -> bool:
        return any(
            a.kind in ("prune-tgd", "collapse-stages") and a.verified is not False
            for a in self.actions
        )

    def tgd_counts(self, stages: Sequence[SchemaMapping]) -> list[int]:
        return [len(stage.tgds) for stage in stages]

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "original": {
                "stages": len(self.original),
                "tgds": self.tgd_counts(self.original),
                "estimated_cost": self.cost_before,
            },
            "optimized": {
                "stages": len(self.optimized),
                "tgds": self.tgd_counts(self.optimized),
                "estimated_cost": self.cost_after,
            },
            "changed": self.changed,
            "actions": [a.as_dict() for a in self.actions],
            "verification": dict(self.verification),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable plan (the CLI's default output)."""
        lines = [f"rewrite plan ({self.kind})"]
        lines.append(
            f"  stages: {len(self.original)} -> {len(self.optimized)}"
            f" | tgds: {sum(self.tgd_counts(self.original))} -> "
            f"{sum(self.tgd_counts(self.optimized))}"
        )
        lines.append(
            f"  estimated chase cost: {self.cost_before:,.0f} -> "
            f"{self.cost_after:,.0f}"
        )
        if self.actions:
            lines.append("  actions:")
            for action in self.actions:
                status = {True: " [verified]", False: " [REFUTED]", None: ""}[
                    action.verified
                ]
                lines.append(f"    - {action.kind}: {action.description}{status}")
        else:
            lines.append("  actions: none (nothing to rewrite)")
        checked = self.verification.get("checked", 0)
        if checked:
            outcome = (
                "equivalent"
                if self.verification.get("equivalent")
                else "NOT equivalent — rewrite abandoned"
            )
            lines.append(
                f"  verification: {checked} generated instance(s) chased "
                f"both ways: {outcome}"
            )
        else:
            lines.append("  verification: skipped")
        for diagnostic in self.diagnostics:
            lines.append(f"  note: {diagnostic.render()}")
        return "\n".join(lines)
