"""Choosing an execution strategy for schema evolution.

The repo has two routes for "the source schema evolved, keep exchanging":

* **channel propagation** (:mod:`repro.channels`) — push the evolution
  primitives through the mapping symbolically, then chase the rewritten
  mapping directly on the evolved source (one hop);
* **invert∘compose** (:mod:`repro.mapping.evolution`) — invert the
  evolution mapping (maximum recovery), recover the original source by
  chasing, then run the base mapping (two hops, but works for evolutions
  no primitive vocabulary expresses).

:func:`choose_evolution_strategy` costs both with
:mod:`repro.stats` cardinality estimates and picks the cheaper
*applicable* one — the optimizer's third rewrite family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..channels import EvolutionError, EvolutionPrimitive, RenameTable, propagate_all
from ..channels.primitives import DropTable, evolution_mapping
from ..mapping.composition import CompositionError
from ..mapping.evolution import (
    EvolutionAmbiguity,
    EvolvedMapping,
    evolve_source,
    first_branch_chooser,
)
from ..mapping.inversion import InversionError
from ..mapping.sttgd import SchemaMapping
from ..obs import get_tracer
from ..stats import RelationStatistics, Statistics
from .cost import estimate_chase_cost

__all__ = ["EvolutionDecision", "choose_evolution_strategy"]


@dataclass(frozen=True)
class EvolutionDecision:
    """Outcome of the strategy choice.

    ``strategy`` is ``"channel-propagation"``, ``"invert-compose"``, or
    ``"none"`` when neither route applies.  The costs are estimated
    chase bindings (``None`` when that route is inapplicable);
    ``rewritten`` / ``evolved`` carry the executable artifacts of the
    applicable routes.
    """

    strategy: str
    channel_cost: float | None
    invert_cost: float | None
    reason: str
    rewritten: SchemaMapping | None = None
    evolved: EvolvedMapping | None = None

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "channel_cost": self.channel_cost,
            "invert_cost": self.invert_cost,
            "reason": self.reason,
        }


def _evolved_statistics(
    statistics: Statistics, primitives: Sequence[EvolutionPrimitive]
) -> Statistics:
    """Statistics of the evolved source, keyed by the evolved names."""
    table: dict[str, RelationStatistics] = dict(statistics.relations)
    for primitive in primitives:
        if isinstance(primitive, RenameTable) and primitive.old in table:
            stats = table.pop(primitive.old)
            table[primitive.new] = RelationStatistics(
                primitive.new, stats.cardinality, dict(stats.distinct)
            )
        elif isinstance(primitive, DropTable):
            table.pop(primitive.relation, None)
    return Statistics(table)


def choose_evolution_strategy(
    base: SchemaMapping,
    primitives: Sequence[EvolutionPrimitive],
    statistics: Statistics | None = None,
) -> EvolutionDecision:
    """Pick the cheaper applicable route for exchanging after evolution.

    Channel propagation costs one chase of the rewritten mapping on the
    evolved source; invert∘compose costs the recovery chase **plus** the
    base chase (two materialized hops).  When an estimate ties, channel
    propagation wins — it avoids the inversion's ambiguity policy
    entirely.
    """
    stats = statistics or Statistics.assumed(base.source)
    evolved_stats = _evolved_statistics(stats, primitives)
    with get_tracer().span(
        "optimize.evolution", primitives=len(primitives)
    ) as span:
        channel_cost: float | None = None
        rewritten: SchemaMapping | None = None
        channel_note = ""
        try:
            result = propagate_all(base, list(primitives))
            rewritten = result.mapping
            channel_cost = estimate_chase_cost(rewritten, evolved_stats)
        except EvolutionError as exc:
            channel_note = f"channel propagation inapplicable: {exc}"

        invert_cost: float | None = None
        evolved: EvolvedMapping | None = None
        invert_note = ""
        try:
            evolution = evolution_mapping(list(primitives), base.source)
            evolved = evolve_source(base, evolution, chooser=first_branch_chooser)
            invert_cost = estimate_chase_cost(
                evolved.inverse_evolution, evolved_stats
            ) + estimate_chase_cost(base, stats)
        except (
            InversionError,
            EvolutionAmbiguity,
            CompositionError,
            EvolutionError,
        ) as exc:
            invert_note = f"invert∘compose inapplicable: {exc}"

        if channel_cost is None and invert_cost is None:
            decision = EvolutionDecision(
                "none",
                None,
                None,
                "; ".join(n for n in (channel_note, invert_note) if n)
                or "no applicable route",
            )
        elif invert_cost is None or (
            channel_cost is not None and channel_cost <= invert_cost
        ):
            reason = (
                f"channel propagation chases once "
                f"(~{channel_cost:,.0f} bindings)"
            )
            if invert_cost is not None:
                reason += f" vs invert∘compose's two hops (~{invert_cost:,.0f})"
            elif invert_note:
                reason += f"; {invert_note}"
            decision = EvolutionDecision(
                "channel-propagation",
                channel_cost,
                invert_cost,
                reason,
                rewritten=rewritten,
                evolved=evolved,
            )
        else:
            reason = (
                f"invert∘compose (~{invert_cost:,.0f} bindings) beats "
                f"channel propagation"
                + (
                    f" (~{channel_cost:,.0f})"
                    if channel_cost is not None
                    else f"; {channel_note}"
                )
            )
            decision = EvolutionDecision(
                "invert-compose",
                channel_cost,
                invert_cost,
                reason,
                rewritten=rewritten,
                evolved=evolved,
            )
        span.set(strategy=decision.strategy)
        return decision
