"""Fault injection for the exchange service — the canonical import path.

The implementation lives in :mod:`repro.faults` (a leaf module, so the
instrumented layers can import the seam hook without cycles); this
module is the service-level face of it::

    from repro.service.faults import FaultPlan, fault_injection

    with fault_injection(FaultPlan.pool_crashes(2)):
        service.exchange(source)   # first two pool dispatches crash

See the :mod:`repro.faults` docstring for the seam list and cookbook,
and docs/ROBUSTNESS.md for the degradation contract each seam tests.
"""

from ..faults import (
    KNOWN_SITES,
    Fault,
    FaultPlan,
    InjectedFault,
    active_fault_plan,
    fault_injection,
    fault_point,
    install_fault_plan,
)

__all__ = [
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "KNOWN_SITES",
    "active_fault_plan",
    "fault_injection",
    "fault_point",
    "install_fault_plan",
]
