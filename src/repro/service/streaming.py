"""Incremental delivery of target facts: shard payloads out, chunks back.

The batch service buffers a whole solution before the first byte reaches
the client.  Streaming inverts that: :class:`StreamSession` plans one
request as a set of independent worker payloads (one per source shard
when the mapping parallelizes, one whole-exchange payload otherwise),
:func:`exchange_payload` runs each payload inside a pool worker, and the
session turns every finished payload into :class:`FactChunk`\\ s the
moment it lands — so the first facts flow while later shards are still
chasing.  Soundness is the executor's merge argument restated per chunk:
shards are premise-disjoint, invented nulls are relabeled into disjoint
namespaces as each shard unpacks, and ground duplicates are filtered
against the facts already emitted, so the union of all chunks is the
canonical universal solution up to null renaming.

Two front ends drive a session:

* :meth:`repro.service.ExchangeService.stream` — synchronous, yields a
  :class:`StreamingSolution`;
* :mod:`repro.service.aserve` — the asyncio HTTP layer, writing each
  chunk as one NDJSON line (docs/SERVICE.md "Streaming format").

Budgeted or provenance-recording requests take the single-payload path:
their interruption/lineage state lives in one worker, which still
reports ``partial`` outcomes with a resumable
:class:`~repro.service.api.ResumptionToken` built parent-side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterator

from ..budget import Budget, BudgetExceeded
from ..mapping.chase import ChaseNonTermination, chase, chase_target_dependencies
from ..mapping.sttgd import SchemaMapping
from ..options import ExchangeOptions
from ..provenance import ProvenanceLog, Solution
from ..relational.columnar import pack_instance, unpack_instance, unpack_rows
from ..relational.instance import Instance, Row
from ..relational.serialization import value_from_json, value_to_json
from ..relational.values import LabeledNull, NullFactory, max_null_label
from .api import ExchangeRequest, ExchangeResponse, PartialSolution, ResumptionToken

__all__ = [
    "DEFAULT_CHUNK_FACTS",
    "FactChunk",
    "StreamSession",
    "StreamingSolution",
    "exchange_payload",
]

DEFAULT_CHUNK_FACTS = 2048
"""Facts per NDJSON chunk: big enough to amortize a line's JSON overhead,
small enough that the first chunk leaves before a large shard finishes
encoding."""


@dataclass(frozen=True)
class FactChunk:
    """One streamed batch of target facts.

    ``shard`` is the source shard that produced the batch (``-1`` for
    single-payload runs); ``facts`` are ``(relation, row)`` pairs already
    relabeled into the request's global null namespace.
    """

    shard: int
    facts: tuple[tuple[str, Row], ...]

    def __len__(self) -> int:
        return len(self.facts)

    def as_dict(self) -> dict[str, Any]:
        """One NDJSON ``facts`` line (docs/SERVICE.md)."""
        return {
            "kind": "facts",
            "shard": self.shard,
            "count": len(self.facts),
            "facts": [
                {"relation": name, "row": [value_to_json(v) for v in row]}
                for name, row in self.facts
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FactChunk":
        """Decode a ``facts`` line (the client half of the codec)."""
        return cls(
            shard=int(data.get("shard", -1)),
            facts=tuple(
                (f["relation"], tuple(value_from_json(v) for v in f["row"]))
                for f in data["facts"]
            ),
        )


def exchange_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Pool worker: run one streaming payload, return a packed outcome.

    Module-level so ``ProcessPoolExecutor`` can pickle it.  The payload
    carries the :class:`~repro.mapping.sttgd.SchemaMapping` itself
    (mappings pickle compactly, target dependencies included — unlike
    ``to_text``), the source/shard as a flat column buffer, the options
    as their wire dict, and — for continuations — the token's partial
    instance and lineage snapshot.  Deadlines travel as absolute unix
    time so pool queue wait counts against the budget.

    Outcome dict: ``status`` (``"complete"``/``"partial"``), ``solution``
    (packed buffer — the chase prefix when partial), ``violated``/
    ``phase`` (partial only), ``provenance`` (JSON text or ``None``) and
    ``seconds``.  Chase *failures* (unsatisfiable egds) raise through
    the pool: no amount of streaming fixes a mapping with no solution.
    """
    started = time.perf_counter()
    mapping: SchemaMapping = payload["mapping"]
    options = ExchangeOptions.from_dict(payload["options"])
    mode = payload["mode"]
    source = unpack_instance(payload["source"])

    if mode == "shard":
        # Shard payloads are planned only for unbudgeted, provenance-free
        # requests; the chase needs nothing but the step cap.
        solution = chase(
            mapping, source, options=ExchangeOptions(max_steps=options.max_steps)
        ).solution
        return {
            "status": "complete",
            "solution": _pack(solution),
            "violated": None,
            "phase": None,
            "provenance": None,
            "seconds": time.perf_counter() - started,
        }

    deadline_at = payload.get("deadline_at")
    budget = None
    if deadline_at is not None or options.max_facts is not None:
        remaining = (
            max(1e-9, deadline_at - time.time()) if deadline_at is not None else None
        )
        budget = Budget(deadline=remaining, max_facts=options.max_facts)
    provenance = ProvenanceLog() if payload["want_provenance"] else None
    if provenance is not None and payload.get("token_provenance") is not None:
        # Continue the interrupted history: the token's snapshot seeds
        # the log and new records extend it in step order.
        provenance.absorb(ProvenanceLog.from_json_text(payload["token_provenance"]))

    try:
        if mode == "resume":
            partial = unpack_instance(payload["partial"])
            solution = chase_target_dependencies(
                partial,
                mapping.target_dependencies,
                options=options,
                budget=budget,
                provenance=provenance,
            )
        else:
            solution = chase(
                mapping,
                source,
                options=options,
                budget=budget,
                provenance=provenance,
            ).solution
    except BudgetExceeded as exc:
        return _partial_outcome(
            mapping, exc.violated, exc.partial, exc.phase or "st_tgds",
            exc, provenance, started,
        )
    except ChaseNonTermination as exc:
        return _partial_outcome(
            mapping, "max_steps", exc.partial, "target_dependencies",
            exc, provenance, started,
        )
    return {
        "status": "complete",
        "solution": _pack(solution),
        "violated": None,
        "phase": None,
        "provenance": provenance.to_json_text() if provenance is not None else None,
        "seconds": time.perf_counter() - started,
    }


def _partial_outcome(
    mapping: SchemaMapping,
    violated: str,
    partial: Instance | None,
    phase: str,
    exc: BaseException,
    provenance: ProvenanceLog | None,
    started: float,
) -> dict[str, Any]:
    if partial is None:
        partial = Instance(mapping.target, [])
    attached = getattr(exc, "provenance", None)
    log = attached if attached is not None else provenance
    return {
        "status": "partial",
        "solution": _pack(partial),
        "violated": violated,
        "phase": phase,
        "provenance": log.to_json_text() if log is not None else None,
        "seconds": time.perf_counter() - started,
    }


def _pack(instance: Instance) -> bytes:
    store = instance.columnar_store
    if store is not None:
        return store.pack()
    return pack_instance(instance)


class StreamSession:
    """Parent-side state for one streaming exchange.

    Construction plans the payloads (:attr:`payloads`); the driver runs
    them — in-process, on a thread/process pool, however it likes — and
    feeds each outcome back through :meth:`chunks`, which yields
    relabeled, deduplicated :class:`FactChunk`\\ s.  After every payload
    has been processed, :meth:`response` assembles the final
    :class:`~repro.service.api.ExchangeResponse` (and
    :meth:`summary_dict` the NDJSON trailer).
    """

    def __init__(
        self,
        mapping: SchemaMapping,
        request: ExchangeRequest,
        options: ExchangeOptions,
        *,
        mapping_fingerprint: str,
        chunk_facts: int = DEFAULT_CHUNK_FACTS,
    ) -> None:
        if chunk_facts < 1:
            raise ValueError(f"chunk_facts must be >= 1, got {chunk_facts}")
        self._mapping = mapping
        self._request = request
        self._options = options
        self._mapping_fingerprint = mapping_fingerprint
        self._chunk_facts = chunk_facts
        self._fact_count = 0
        self._rows: dict[str, set[Row]] = {
            name: set() for name in mapping.target.relation_names
        }
        # Serial-payload outcome (filled by chunks()):
        self._status = "complete"
        self._violated: str | None = None
        self._phase: str | None = None
        self._provenance: ProvenanceLog | None = None
        self._result_instance: Instance | None = None
        self.payloads: list[dict[str, Any]] = []
        self._shard_maxima: list[int] = []
        self._dedupe = False
        self._factory: NullFactory | None = None
        self._plan(request, options)

    # -- planning ------------------------------------------------------------

    def _plan(self, request: ExchangeRequest, options: ExchangeOptions) -> None:
        source = request.source
        options_wire = options.as_dict()
        deadline_at = (
            time.time() + options.deadline if options.deadline is not None else None
        )
        if request.token is not None and request.token.resumable_in_place:
            self.payloads = [
                {
                    "mode": "resume",
                    "mapping": self._mapping,
                    "options": options_wire,
                    "source": _pack(source),
                    "partial": _pack(request.token.partial),
                    "token_provenance": (
                        request.token.provenance.to_json_text()
                        if request.token.provenance is not None
                        and options.wants_provenance
                        else None
                    ),
                    "want_provenance": options.wants_provenance,
                    "deadline_at": deadline_at,
                }
            ]
            return
        shards = self._plan_shards(source, options)
        if shards is None:
            self.payloads = [
                {
                    "mode": "full",
                    "mapping": self._mapping,
                    "options": options_wire,
                    "source": _pack(source),
                    "token_provenance": None,
                    "want_provenance": options.wants_provenance,
                    "deadline_at": deadline_at,
                }
            ]
            return
        from ..exec.parallel import _needs_merge_dedupe

        self._dedupe = _needs_merge_dedupe(self._mapping)
        store = source.columnar_store
        if store is not None and store.canonical:
            max_source_label = store.max_labeled_null()
        else:
            max_source_label = max_null_label(source.values())
        self._factory = NullFactory()
        self._factory.reserve_through(max_source_label)
        for shard in shards:
            shard_store = shard.columnar_store
            if shard_store is not None:
                self._shard_maxima.append(shard_store.max_labeled_null())
            else:
                self._shard_maxima.append(max_null_label(shard.values()))
            self.payloads.append(
                {
                    "mode": "shard",
                    "mapping": self._mapping,
                    "options": options_wire,
                    "source": _pack(shard),
                    "token_provenance": None,
                    "want_provenance": False,
                    "deadline_at": None,
                }
            )

    def _plan_shards(
        self, source: Instance, options: ExchangeOptions
    ) -> list[Instance] | None:
        """Premise-disjoint shards, or ``None`` for the single-payload path.

        Sharded streaming mirrors the executor's eligibility rules
        (parallelizable mapping, >1 workers, source big enough) plus two
        of its own: budgets and provenance keep their single-worker
        seam, where interruption state is coherent.
        """
        if options.budgeted or options.wants_provenance:
            return None
        workers = options.workers or 1
        if workers <= 1:
            return None
        from ..exec.parallel import _AUTO_MIN_PARALLEL_FACTS
        from ..exec.partition import parallelizability, partition_source

        if not parallelizability(self._mapping).parallelizable:
            return None
        min_facts = options.min_parallel_facts
        if min_facts is None:
            min_facts = _AUTO_MIN_PARALLEL_FACTS
        if source.size() < min_facts:
            return None
        partitioning = partition_source(
            self._mapping, source, workers, memo_key=self._mapping_fingerprint
        )
        if len(partitioning.shards) <= 1:
            return None
        return list(partitioning.shards)

    # -- introspection -------------------------------------------------------

    @property
    def sharded(self) -> bool:
        return len(self.payloads) > 1

    @property
    def fact_count(self) -> int:
        return self._fact_count

    # -- chunk production ----------------------------------------------------

    def chunks(self, index: int, outcome: dict[str, Any]) -> Iterator[FactChunk]:
        """Turn payload *index*'s outcome into relabeled fact chunks.

        Callable from any payload-completion order; relabeling uses the
        per-shard invented-null watermark, so interleaving is safe.  For
        single-payload runs this also records the outcome (status,
        violated budget, lineage) that :meth:`response` reports.
        """
        if self.sharded:
            shard_max = self._shard_maxima[index]
            factory = self._factory
            assert factory is not None

            def relabel(null: LabeledNull) -> LabeledNull:
                return factory.fresh() if null.label > shard_max else null

            rows_by_rel = unpack_rows(outcome["solution"], null_relabel=relabel)
            yield from self._emit(index, rows_by_rel)
            return
        self._status = outcome["status"]
        self._violated = outcome["violated"]
        self._phase = outcome["phase"]
        if outcome["provenance"] is not None:
            self._provenance = ProvenanceLog.from_json_text(outcome["provenance"])
        instance = unpack_instance(outcome["solution"])
        self._result_instance = instance
        yield from self._emit(
            -1, {name: instance.rows(name) for name in instance.relation_names()}
        )

    def _emit(
        self, shard: int, rows_by_rel: dict[str, Any]
    ) -> Iterator[FactChunk]:
        batch: list[tuple[str, Row]] = []
        track = self.sharded  # serial runs keep their decoded instance instead
        for name, rows in rows_by_rel.items():
            seen = self._rows.setdefault(name, set())
            for row in rows:
                if self._dedupe and row in seen:
                    continue
                if track:
                    seen.add(row)
                batch.append((name, row))
                if len(batch) >= self._chunk_facts:
                    self._fact_count += len(batch)
                    yield FactChunk(shard, tuple(batch))
                    batch = []
        if batch:
            self._fact_count += len(batch)
            yield FactChunk(shard, tuple(batch))

    # -- completion ----------------------------------------------------------

    def _token(self) -> ResumptionToken | None:
        if self._status != "partial":
            return None
        partial = self._result_instance
        assert partial is not None
        return ResumptionToken(
            mapping_fingerprint=self._mapping_fingerprint,
            source_fingerprint=self._request.source.fingerprint(),
            phase=self._phase or "st_tgds",
            partial=partial,
            provenance=self._provenance,
        )

    def response(self, *, elapsed_seconds: float = 0.0) -> ExchangeResponse:
        """The final response once every payload's chunks were drained."""
        if self.sharded or self._result_instance is None:
            facts = Instance._unsafe(
                self._mapping.target,
                {name: frozenset(rows) for name, rows in self._rows.items()},
            )
        else:
            facts = self._result_instance
        result: Instance | Solution | PartialSolution = facts
        token = self._token()
        if token is not None:
            result = PartialSolution(
                facts, self._violated or "deadline", None, token, self._provenance
            )
        elif self._provenance is not None:
            result = Solution(facts, self._provenance, self._request.source)
        return ExchangeResponse.from_result(
            result,
            tenant=self._request.tenant,
            request_id=self._request.request_id,
            elapsed_seconds=elapsed_seconds,
        )

    def summary_dict(self, *, elapsed_seconds: float = 0.0) -> dict[str, Any]:
        """The NDJSON ``summary`` trailer line (docs/SERVICE.md)."""
        token = self._token()
        return {
            "kind": "summary",
            "status": self._status,
            "violated": self._violated,
            "fact_count": self._fact_count,
            "token": token.as_dict() if token is not None else None,
            "elapsed_ms": round(elapsed_seconds * 1000.0, 3),
        }


class StreamingSolution:
    """A lazily-consumed stream of :class:`FactChunk`\\ s.

    Iterate to receive chunks as payloads complete; once the iterator is
    exhausted, :attr:`response` holds the final
    :class:`~repro.service.api.ExchangeResponse` (status, token,
    provenance).  :meth:`collect` drains and returns that response in
    one call for callers who wanted the batch API after all.
    """

    def __init__(self, generator: Iterator[FactChunk]) -> None:
        self._generator = generator
        self.response: ExchangeResponse | None = None

    def __iter__(self) -> "StreamingSolution":
        return self

    def __next__(self) -> FactChunk:
        try:
            return next(self._generator)
        except StopIteration as stop:
            if stop.value is not None:
                self.response = stop.value
            raise

    def collect(self) -> ExchangeResponse:
        """Drain the stream and return the final response."""
        for _ in self:
            pass
        assert self.response is not None
        return self.response
