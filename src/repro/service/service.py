"""`ExchangeService`: budgeted, fault-tolerant, multi-tenant exchange.

The engine (:class:`~repro.compiler.engine.ExchangeEngine`) answers one
request and crashes loudly; a production exchange endpoint needs the
opposite contract.  :class:`ExchangeService` wraps a compiled engine
with:

* **budgets** — every request gets a fresh
  :class:`~repro.budget.Budget` from the service's
  :class:`~repro.options.ExchangeOptions` (wall-clock ``deadline``,
  ``max_facts``), checked cooperatively at chase-step and shard-merge
  boundaries, plus the ``max_steps`` chase-step cap;
* **graceful degradation** — budget exhaustion (and step-cap
  non-termination) returns a :class:`PartialSolution` carrying the
  facts chased so far, the violated budget and a
  :class:`ResumptionToken`, instead of raising;
* **retry + circuit breaker** — pool startup/worker crashes retry with
  exponential backoff + jitter
  (:class:`~repro.options.RetryPolicy`); repeated failures open a
  :class:`~repro.exec.retry.CircuitBreaker` pinning the service to the
  serial chase;
* **admission control** — per-tenant weighted fair sharing
  (:class:`~repro.service.tenancy.FairShareGate`) with explicit
  :class:`ServiceOverloaded` rejection, applied whole-batch to
  :meth:`exchange_many`;
* **streaming** — :meth:`stream` answers an :class:`ExchangeRequest`
  with a :class:`~repro.service.streaming.StreamingSolution` that
  yields fact chunks as shards complete (the synchronous twin of the
  HTTP layer in :mod:`repro.service.aserve`).

The request/response vocabulary (:class:`ExchangeRequest`,
:class:`ExchangeResponse`, the JSON-serializable
:class:`ResumptionToken`) lives in :mod:`repro.service.api`; this
module re-exports it so existing imports keep working.

Everything is observable through :mod:`repro.obs` (``service.*`` and
``service.tenant.<id>.*`` counters, budget-remaining histograms, a
``service`` span tree) and every degradation path is reachable
deterministically through :mod:`repro.service.faults` — see
docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import time
from concurrent.futures import as_completed
from typing import Any, Iterable, Iterator, Mapping

from ..budget import Budget, BudgetExceeded
from ..compiler.engine import ExchangeEngine
from ..compiler.hints import Hints
from ..exec.cache import mapping_fingerprint
from ..exec.retry import CircuitBreaker
from ..mapping.chase import (
    ChaseNonTermination,
    ChaseStatistics,
    chase,
    chase_target_dependencies,
)
from ..mapping.sttgd import SchemaMapping
from ..obs import get_registry, get_tracer
from ..options import ExchangeOptions
from ..provenance import ProvenanceLog, Solution, resolve_provenance
from ..relational.instance import Instance
from ..stats import Statistics
from .api import ExchangeRequest, ExchangeResponse, PartialSolution, ResumptionToken
from .streaming import (
    DEFAULT_CHUNK_FACTS,
    FactChunk,
    StreamingSolution,
    StreamSession,
    exchange_payload,
)
from .tenancy import DEFAULT_TENANT, FairShareGate, ServiceOverloaded, TenantQuota

__all__ = [
    "ExchangeRequest",
    "ExchangeResponse",
    "ExchangeService",
    "PartialSolution",
    "ResumptionToken",
    "ServiceOverloaded",
    "TenantQuota",
]


class ExchangeService:
    """A long-running exchange endpoint over one compiled mapping.

    >>> service = ExchangeService(mapping, ExchangeOptions(
    ...     workers=2, deadline=0.5, max_facts=100_000))
    >>> result = service.exchange(source)
    >>> if isinstance(result, PartialSolution):
    ...     result = service.resume(source, result.token)   # more budget
    >>> service.close()

    The redesigned surface speaks request/response objects —
    :meth:`request` for one-shot answers, :meth:`stream` for chunked
    delivery — while :meth:`exchange` / :meth:`exchange_many` /
    :meth:`resume` remain as the thin positional forms.  Admission
    control is per tenant: pass ``quotas`` to guarantee configured
    tenants their weighted share of ``max_in_flight`` (see
    :mod:`repro.service.tenancy`).

    The service is thread-safe at the admission-control boundary; the
    underlying chase runs one request per call.  Use it as a context
    manager to guarantee worker-pool shutdown.
    """

    def __init__(
        self,
        mapping: SchemaMapping,
        options: ExchangeOptions | None = None,
        *,
        statistics: Statistics | None = None,
        hints: Hints | None = None,
        max_in_flight: int = 64,
        quotas: Mapping[str, TenantQuota] | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self._options = options if options is not None else ExchangeOptions()
        self._engine = ExchangeEngine.compile(
            mapping, statistics, hints, options=self._options
        )
        if breaker is not None and self._engine.executor is not None:
            # Share the caller's breaker with the executor's retry loop.
            self._engine.executor._breaker = breaker
        self._gate = FairShareGate(max_in_flight, quotas)
        self._mapping_fingerprint = mapping_fingerprint(mapping)
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def engine(self) -> ExchangeEngine:
        return self._engine

    @property
    def mapping(self) -> SchemaMapping:
        return self._engine.mapping

    @property
    def options(self) -> ExchangeOptions:
        return self._options

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The executor's pool circuit breaker (None without an executor)."""
        executor = self._engine.executor
        return executor.breaker if executor is not None else None

    @property
    def gate(self) -> FairShareGate:
        """The admission controller (per-tenant state, ``snapshot()``)."""
        return self._gate

    @property
    def in_flight(self) -> int:
        return self._gate.in_flight

    @property
    def max_in_flight(self) -> int:
        return self._gate.capacity

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the engine's worker pool down (idempotent)."""
        self._closed = True
        self._engine.close()

    def __enter__(self) -> "ExchangeService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the request/response API -------------------------------------------

    def request(self, request: ExchangeRequest) -> ExchangeResponse:
        """Answer one :class:`ExchangeRequest` with an :class:`ExchangeResponse`.

        Continuations (requests carrying a token) resume; everything
        else exchanges.  Admission, budgets and degradation behave
        exactly as in :meth:`exchange` — the response's ``status`` says
        which way it went.
        """
        opts = request.options if request.options is not None else self._options
        started = time.perf_counter()
        if request.token is not None:
            result = self.resume(
                request.source, request.token, options=opts, tenant=request.tenant
            )
        else:
            result = self.exchange(
                request.source, options=opts, tenant=request.tenant
            )
        return ExchangeResponse.from_result(
            result,
            tenant=request.tenant,
            request_id=request.request_id,
            elapsed_seconds=time.perf_counter() - started,
        )

    def stream(
        self,
        request: ExchangeRequest,
        *,
        chunk_facts: int = DEFAULT_CHUNK_FACTS,
    ) -> StreamingSolution:
        """Answer a request with incrementally delivered fact chunks.

        Returns a :class:`~repro.service.streaming.StreamingSolution`;
        iterate it for :class:`~repro.service.streaming.FactChunk`\\ s
        (first chunks arrive while later shards still chase, when the
        engine has a worker pool), then read ``.response`` for the final
        status/token.  Admission happens here, up front; the slot is
        held until the stream is drained or dropped.
        """
        opts = request.options if request.options is not None else self._options
        if request.token is not None:
            self._check_token(request.source, request.token)
        self._gate.admit(request.tenant, 1)
        started = time.perf_counter()
        try:
            session = StreamSession(
                self.mapping,
                request,
                opts,
                mapping_fingerprint=self._mapping_fingerprint,
                chunk_facts=chunk_facts,
            )
        except BaseException:
            self._gate.release(request.tenant, 1)
            raise
        return StreamingSolution(self._stream_chunks(request, session, started))

    def _stream_chunks(
        self, request: ExchangeRequest, session: StreamSession, started: float
    ) -> Iterator[FactChunk]:
        registry = get_registry()
        try:
            with get_tracer().span(
                "service.stream",
                tenant=request.tenant,
                payloads=len(session.payloads),
                source_facts=request.source.size(),
            ) as span:
                registry.increment("service.requests")
                registry.increment("service.streams")
                executor = self._engine.executor
                if session.sharded and executor is not None:
                    pool = executor.ensure_pool()
                    futures = {
                        pool.submit(exchange_payload, payload): index
                        for index, payload in enumerate(session.payloads)
                    }
                    for future in as_completed(futures):
                        yield from session.chunks(futures[future], future.result())
                else:
                    for index, payload in enumerate(session.payloads):
                        yield from session.chunks(index, exchange_payload(payload))
                span.set(target_facts=session.fact_count)
            response = session.response(
                elapsed_seconds=time.perf_counter() - started
            )
            if not response.complete:
                registry.increment("service.degraded")
                if response.violated:
                    registry.increment(f"service.{response.violated}_exceeded")
            return response  # noqa: B901 — StreamingSolution reads StopIteration.value
        finally:
            self._gate.release(request.tenant, 1)

    # -- exchange ------------------------------------------------------------

    def exchange(
        self,
        source: Instance,
        *,
        options: ExchangeOptions | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Instance | Solution | PartialSolution:
        """One budgeted request: a full solution or a :class:`PartialSolution`.

        *options* overrides the service defaults for this request only
        (e.g. a tighter per-tenant deadline); *tenant* names the
        admission-control queue it bills to.  Never raises on budget
        exhaustion or chase step caps; egd *failures*
        (:class:`~repro.mapping.chase.ChaseFailure` — the mapping has no
        solution) still raise, because no amount of budget fixes them.
        """
        self._gate.admit(tenant, 1)
        try:
            return self._exchange_admitted(source, options or self._options)
        finally:
            self._gate.release(tenant, 1)

    def exchange_many(
        self,
        sources: Iterable[Instance],
        *,
        options: ExchangeOptions | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> list[Instance | Solution | PartialSolution]:
        """A budgeted batch, admitted whole or rejected whole.

        Admission control reserves the full batch up front: if the batch
        does not fit next to the requests already in flight (or past the
        tenant's own share), the whole batch is rejected with
        :class:`ServiceOverloaded` — no partial batch ever runs, so
        callers can safely retry it elsewhere.
        """
        batch = list(sources)
        opts = options or self._options
        self._gate.admit(tenant, max(1, len(batch)))
        try:
            with get_tracer().span(
                "service.batch", sources=len(batch), tenant=tenant
            ) as span:
                results = [self._exchange_admitted(s, opts) for s in batch]
                degraded = sum(
                    1 for r in results if isinstance(r, PartialSolution)
                )
                span.set(degraded=degraded)
            return results
        finally:
            self._gate.release(tenant, max(1, len(batch)))

    def _exchange_admitted(
        self, source: Instance, opts: ExchangeOptions
    ) -> Instance | Solution | PartialSolution:
        registry = get_registry()
        budget = opts.budget()
        store = resolve_provenance(opts.provenance)
        with get_tracer().span(
            "service.exchange", source_facts=source.size()
        ) as span:
            registry.increment("service.requests")
            try:
                solution = self._run(source, opts, budget, store)
            except BudgetExceeded as exc:
                return self._degrade(
                    source,
                    exc.violated,
                    exc.partial,
                    exc.statistics,
                    exc.phase or "st_tgds",
                    span,
                    provenance=self._partial_provenance(exc, store),
                )
            except ChaseNonTermination as exc:
                return self._degrade(
                    source,
                    "max_steps",
                    exc.partial,
                    exc.statistics,
                    "target_dependencies",
                    span,
                    provenance=self._partial_provenance(exc, store),
                )
            self._observe_remaining(budget, solution)
            span.set(target_facts=solution.size())
            if store.enabled:
                return Solution(solution, store, source)
            return solution

    @staticmethod
    def _partial_provenance(
        exc: BaseException, store
    ) -> ProvenanceLog | None:
        """The lineage recorded before *exc* interrupted the request.

        The chase attaches its store to the exception; the executor's
        shard merge attaches the staged (relabeled) shard logs.  Either
        wins over the request store, which a parallel path may not have
        absorbed into yet.
        """
        attached = getattr(exc, "provenance", None)
        if attached is not None:
            return attached
        return store if store.enabled else None

    def _run(
        self,
        source: Instance,
        opts: ExchangeOptions,
        budget: Budget | None,
        provenance,
    ) -> Instance:
        backend_plan = self._engine.backend_plan
        if (
            backend_plan is not None
            and backend_plan.ready
            and not provenance.enabled
        ):
            # The SQL backend honours the same budget (phase boundaries
            # plus per-tgd checks), so BudgetExceeded degrades exactly
            # like the interpreted paths.  Provenance requests never
            # reach here: plan_backend already fell back for them.
            return backend_plan.backend.exchange(source, budget)
        executor = self._engine.executor
        if executor is not None:
            return executor.exchange(source, budget, provenance)
        return chase(
            self.mapping, source, options=opts, budget=budget, provenance=provenance
        ).solution

    def _degrade(
        self,
        source: Instance,
        violated: str,
        partial: Instance | None,
        statistics: ChaseStatistics | None,
        phase: str,
        span,
        provenance: ProvenanceLog | None = None,
    ) -> PartialSolution:
        registry = get_registry()
        registry.increment("service.degraded")
        registry.increment(f"service.{violated}_exceeded")
        if partial is None:
            partial = Instance(self.mapping.target, [])
        token = ResumptionToken(
            mapping_fingerprint=self._mapping_fingerprint,
            source_fingerprint=source.fingerprint(),
            phase=phase,
            partial=partial,
            provenance=provenance.copy() if provenance is not None else None,
        )
        span.set(degraded=violated, phase=phase, partial_facts=partial.size())
        return PartialSolution(partial, violated, statistics, token, provenance)

    def _observe_remaining(self, budget: Budget | None, solution: Instance) -> None:
        """Budget headroom histograms: how close successful requests cut it."""
        if budget is None:
            return
        registry = get_registry()
        remaining_seconds = budget.remaining_seconds()
        if remaining_seconds is not None:
            registry.observe("service.budget.remaining_seconds", remaining_seconds)
        remaining_facts = budget.remaining_facts(solution.size())
        if remaining_facts is not None:
            registry.observe("service.budget.remaining_facts", remaining_facts)

    # -- resumption ----------------------------------------------------------

    def _check_token(self, source: Instance, token: ResumptionToken) -> None:
        if token.mapping_fingerprint != self._mapping_fingerprint:
            raise ValueError("resumption token is for a different mapping")
        if token.source_fingerprint != source.fingerprint():
            raise ValueError("resumption token is for a different source")

    def resume(
        self,
        source: Instance,
        token: "ResumptionToken | str | Mapping[str, Any]",
        *,
        options: ExchangeOptions | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Instance | Solution | PartialSolution:
        """Continue a degraded exchange under a fresh budget.

        *token* may be the :class:`ResumptionToken` object or its JSON
        serialization (text or parsed object) — tokens round-trip across
        processes, so a token minted by one service instance resumes on
        another serving the same mapping.  The token must come from this
        service's mapping and *source* (fingerprint-checked;
        ``ValueError`` otherwise).  A ``"target_dependencies"`` token
        continues the chase from the partial instance; earlier phases
        re-run the exchange from the source.  The result is again either
        a full solution or another :class:`PartialSolution` with a
        fresher token.
        """
        if not isinstance(token, ResumptionToken):
            token = ResumptionToken.from_json(token)
        self._check_token(source, token)
        opts = options or self._options
        get_registry().increment("service.resumptions")
        if not token.resumable_in_place:
            return self.exchange(source, options=opts, tenant=tenant)
        self._gate.admit(tenant, 1)
        try:
            budget = opts.budget()
            store = resolve_provenance(opts.provenance)
            if store.enabled and token.provenance is not None:
                # Continue the interrupted history: the token's snapshot
                # seeds the store and new records extend it in step order.
                store.absorb(token.provenance)
            with get_tracer().span(
                "service.resume", partial_facts=token.partial.size()
            ) as span:
                try:
                    solution = chase_target_dependencies(
                        token.partial,
                        self.mapping.target_dependencies,
                        options=opts,
                        budget=budget,
                        provenance=store,
                    )
                except BudgetExceeded as exc:
                    return self._degrade(
                        source,
                        exc.violated,
                        exc.partial if exc.partial is not None else token.partial,
                        exc.statistics,
                        "target_dependencies",
                        span,
                        provenance=self._partial_provenance(exc, store),
                    )
                except ChaseNonTermination as exc:
                    return self._degrade(
                        source,
                        "max_steps",
                        exc.partial if exc.partial is not None else token.partial,
                        exc.statistics,
                        "target_dependencies",
                        span,
                        provenance=self._partial_provenance(exc, store),
                    )
                self._observe_remaining(budget, solution)
                span.set(target_facts=solution.size())
                if store.enabled:
                    return Solution(solution, store, source)
                return solution
        finally:
            self._gate.release(tenant, 1)
