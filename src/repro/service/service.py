"""`ExchangeService`: budgeted, fault-tolerant forward exchange.

The engine (:class:`~repro.compiler.engine.ExchangeEngine`) answers one
request and crashes loudly; a production exchange endpoint needs the
opposite contract.  :class:`ExchangeService` wraps a compiled engine
with:

* **budgets** — every request gets a fresh
  :class:`~repro.budget.Budget` from the service's
  :class:`~repro.options.ExchangeOptions` (wall-clock ``deadline``,
  ``max_facts``), checked cooperatively at chase-step and shard-merge
  boundaries, plus the ``max_steps`` chase-step cap;
* **graceful degradation** — budget exhaustion (and step-cap
  non-termination) returns a :class:`PartialSolution` carrying the
  facts chased so far, the violated budget and a
  :class:`ResumptionToken`, instead of raising;
* **retry + circuit breaker** — pool startup/worker crashes retry with
  exponential backoff + jitter
  (:class:`~repro.options.RetryPolicy`); repeated failures open a
  :class:`~repro.exec.retry.CircuitBreaker` pinning the service to the
  serial chase;
* **admission control** — a bounded in-flight count with explicit
  :class:`ServiceOverloaded` rejection, applied whole-batch to
  :meth:`exchange_many`.

Everything is observable through :mod:`repro.obs` (``service.*``
counters, budget-remaining histograms, a ``service`` span tree) and
every degradation path is reachable deterministically through
:mod:`repro.service.faults` — see docs/ROBUSTNESS.md.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable

from ..budget import Budget, BudgetExceeded
from ..compiler.engine import ExchangeEngine
from ..compiler.hints import Hints
from ..exec.cache import mapping_fingerprint
from ..exec.retry import CircuitBreaker
from ..mapping.chase import (
    ChaseNonTermination,
    ChaseStatistics,
    chase,
    chase_target_dependencies,
)
from ..mapping.sttgd import SchemaMapping
from ..obs import get_registry, get_tracer
from ..options import ExchangeOptions
from ..provenance import ProvenanceLog, Solution, resolve_provenance
from ..relational.instance import Instance
from ..stats import Statistics

__all__ = [
    "ExchangeService",
    "PartialSolution",
    "ResumptionToken",
    "ServiceOverloaded",
]


class ServiceOverloaded(RuntimeError):
    """Admission control rejected the request: the in-flight queue is full.

    Carries ``in_flight`` (current depth), ``requested`` (the rejected
    batch size) and ``capacity`` so callers can implement load shedding
    or client-side backoff.
    """

    def __init__(self, in_flight: int, requested: int, capacity: int) -> None:
        super().__init__(
            f"service overloaded: {in_flight} in flight + {requested} "
            f"requested > capacity {capacity}"
        )
        self.in_flight = in_flight
        self.requested = requested
        self.capacity = capacity


@dataclass(frozen=True)
class ResumptionToken:
    """Where a budget-interrupted exchange stopped, and how to continue.

    ``phase`` names the interrupted chase phase:

    * ``"target_dependencies"`` — the st-tgd phase completed;
      :meth:`ExchangeService.resume` continues the target-dependency
      chase from ``partial`` (sound: the chase is monotone and the
      restricted chase from any intermediate instance still reaches a
      solution);
    * ``"st_tgds"`` / ``"merge"`` — the interruption predates a
      resumable waypoint; resume re-runs the exchange from the source
      under the new budget.

    The fingerprints pin the token to one (mapping, source) pair so a
    token cannot be replayed against different data.  ``provenance``
    snapshots the lineage recorded before the interruption (``None``
    when the request ran without provenance); :meth:`ExchangeService.resume`
    extends it across the continued chase so the final solution explains
    facts from *both* sides of the interruption.
    """

    mapping_fingerprint: str
    source_fingerprint: str
    phase: str
    partial: Instance
    provenance: ProvenanceLog | None = None

    @property
    def resumable_in_place(self) -> bool:
        return self.phase == "target_dependencies"


@dataclass(frozen=True)
class PartialSolution:
    """What a budget-exhausted exchange managed to produce.

    ``facts`` is a *prefix* of the chase: every fact is derivable, so it
    is a subset (up to null naming) of the full canonical universal
    solution — useful for best-effort answers and for resumption, but
    **not** a solution (some dependency may be unsatisfied).  ``violated``
    names the exhausted limit (``"deadline"`` / ``"max_facts"`` /
    ``"max_steps"``); ``token`` feeds :meth:`ExchangeService.resume`;
    ``provenance`` is the partial lineage recorded up to the
    interruption (``None`` when the request ran without provenance), so
    even a degraded answer can explain the facts it *did* produce.
    """

    facts: Instance
    violated: str
    statistics: ChaseStatistics | None
    token: ResumptionToken
    provenance: ProvenanceLog | None = None

    @property
    def is_partial(self) -> bool:
        """True — shared vocabulary with full Instances via ``getattr``."""
        return True

    def __repr__(self) -> str:
        return (
            f"PartialSolution({self.facts.size()} facts, "
            f"violated={self.violated!r}, phase={self.token.phase!r})"
        )


class ExchangeService:
    """A long-running exchange endpoint over one compiled mapping.

    >>> service = ExchangeService(mapping, ExchangeOptions(
    ...     workers=2, deadline=0.5, max_facts=100_000))
    >>> result = service.exchange(source)
    >>> if isinstance(result, PartialSolution):
    ...     result = service.resume(source, result.token)   # more budget
    >>> service.close()

    The service is thread-safe at the admission-control boundary; the
    underlying chase runs one request per call.  Use it as a context
    manager to guarantee worker-pool shutdown.
    """

    def __init__(
        self,
        mapping: SchemaMapping,
        options: ExchangeOptions | None = None,
        *,
        statistics: Statistics | None = None,
        hints: Hints | None = None,
        max_in_flight: int = 64,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self._options = options if options is not None else ExchangeOptions()
        self._engine = ExchangeEngine.compile(
            mapping, statistics, hints, options=self._options
        )
        if breaker is not None and self._engine.executor is not None:
            # Share the caller's breaker with the executor's retry loop.
            self._engine.executor._breaker = breaker
        self._max_in_flight = max_in_flight
        self._in_flight = 0
        self._lock = threading.Lock()
        self._mapping_fingerprint = mapping_fingerprint(mapping)
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def engine(self) -> ExchangeEngine:
        return self._engine

    @property
    def mapping(self) -> SchemaMapping:
        return self._engine.mapping

    @property
    def options(self) -> ExchangeOptions:
        return self._options

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The executor's pool circuit breaker (None without an executor)."""
        executor = self._engine.executor
        return executor.breaker if executor is not None else None

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def max_in_flight(self) -> int:
        return self._max_in_flight

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut the engine's worker pool down (idempotent)."""
        self._closed = True
        self._engine.close()

    def __enter__(self) -> "ExchangeService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- admission control ---------------------------------------------------

    def _admit(self, count: int) -> None:
        with self._lock:
            if self._in_flight + count > self._max_in_flight:
                get_registry().increment("service.rejections")
                raise ServiceOverloaded(
                    self._in_flight, count, self._max_in_flight
                )
            self._in_flight += count
            get_registry().gauge("service.queue_depth").set(self._in_flight)

    def _release(self, count: int) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - count)
            get_registry().gauge("service.queue_depth").set(self._in_flight)

    # -- exchange ------------------------------------------------------------

    def exchange(
        self, source: Instance, *, options: ExchangeOptions | None = None
    ) -> Instance | Solution | PartialSolution:
        """One budgeted request: a full solution or a :class:`PartialSolution`.

        *options* overrides the service defaults for this request only
        (e.g. a tighter per-tenant deadline).  Never raises on budget
        exhaustion or chase step caps; egd *failures*
        (:class:`~repro.mapping.chase.ChaseFailure` — the mapping has no
        solution) still raise, because no amount of budget fixes them.
        """
        self._admit(1)
        try:
            return self._exchange_admitted(source, options or self._options)
        finally:
            self._release(1)

    def exchange_many(
        self, sources: Iterable[Instance], *, options: ExchangeOptions | None = None
    ) -> list[Instance | Solution | PartialSolution]:
        """A budgeted batch, admitted whole or rejected whole.

        Admission control reserves the full batch up front: if the batch
        does not fit next to the requests already in flight, the whole
        batch is rejected with :class:`ServiceOverloaded` (no partial
        batch ever runs, so callers can safely retry it elsewhere).
        """
        batch = list(sources)
        opts = options or self._options
        self._admit(len(batch))
        try:
            with get_tracer().span("service.batch", sources=len(batch)) as span:
                results = [self._exchange_admitted(s, opts) for s in batch]
                degraded = sum(
                    1 for r in results if isinstance(r, PartialSolution)
                )
                span.set(degraded=degraded)
            return results
        finally:
            self._release(len(batch))

    def _exchange_admitted(
        self, source: Instance, opts: ExchangeOptions
    ) -> Instance | Solution | PartialSolution:
        registry = get_registry()
        budget = opts.budget()
        store = resolve_provenance(opts.provenance)
        with get_tracer().span(
            "service.exchange", source_facts=source.size()
        ) as span:
            registry.increment("service.requests")
            try:
                solution = self._run(source, opts, budget, store)
            except BudgetExceeded as exc:
                return self._degrade(
                    source,
                    exc.violated,
                    exc.partial,
                    exc.statistics,
                    exc.phase or "st_tgds",
                    span,
                    provenance=self._partial_provenance(exc, store),
                )
            except ChaseNonTermination as exc:
                return self._degrade(
                    source,
                    "max_steps",
                    exc.partial,
                    exc.statistics,
                    "target_dependencies",
                    span,
                    provenance=self._partial_provenance(exc, store),
                )
            self._observe_remaining(budget, solution)
            span.set(target_facts=solution.size())
            if store.enabled:
                return Solution(solution, store, source)
            return solution

    @staticmethod
    def _partial_provenance(
        exc: BaseException, store
    ) -> ProvenanceLog | None:
        """The lineage recorded before *exc* interrupted the request.

        The chase attaches its store to the exception; the executor's
        shard merge attaches the staged (relabeled) shard logs.  Either
        wins over the request store, which a parallel path may not have
        absorbed into yet.
        """
        attached = getattr(exc, "provenance", None)
        if attached is not None:
            return attached
        return store if store.enabled else None

    def _run(
        self,
        source: Instance,
        opts: ExchangeOptions,
        budget: Budget | None,
        provenance,
    ) -> Instance:
        backend_plan = self._engine.backend_plan
        if (
            backend_plan is not None
            and backend_plan.ready
            and not provenance.enabled
        ):
            # The SQL backend honours the same budget (phase boundaries
            # plus per-tgd checks), so BudgetExceeded degrades exactly
            # like the interpreted paths.  Provenance requests never
            # reach here: plan_backend already fell back for them.
            return backend_plan.backend.exchange(source, budget)
        executor = self._engine.executor
        if executor is not None:
            return executor.exchange(source, budget, provenance)
        return chase(
            self.mapping, source, options=opts, budget=budget, provenance=provenance
        ).solution

    def _degrade(
        self,
        source: Instance,
        violated: str,
        partial: Instance | None,
        statistics: ChaseStatistics | None,
        phase: str,
        span,
        provenance: ProvenanceLog | None = None,
    ) -> PartialSolution:
        registry = get_registry()
        registry.increment("service.degraded")
        registry.increment(f"service.{violated}_exceeded")
        if partial is None:
            partial = Instance(self.mapping.target, [])
        token = ResumptionToken(
            mapping_fingerprint=self._mapping_fingerprint,
            source_fingerprint=source.fingerprint(),
            phase=phase,
            partial=partial,
            provenance=provenance.copy() if provenance is not None else None,
        )
        span.set(degraded=violated, phase=phase, partial_facts=partial.size())
        return PartialSolution(partial, violated, statistics, token, provenance)

    def _observe_remaining(self, budget: Budget | None, solution: Instance) -> None:
        """Budget headroom histograms: how close successful requests cut it."""
        if budget is None:
            return
        registry = get_registry()
        remaining_seconds = budget.remaining_seconds()
        if remaining_seconds is not None:
            registry.observe("service.budget.remaining_seconds", remaining_seconds)
        remaining_facts = budget.remaining_facts(solution.size())
        if remaining_facts is not None:
            registry.observe("service.budget.remaining_facts", remaining_facts)

    # -- resumption ----------------------------------------------------------

    def resume(
        self,
        source: Instance,
        token: ResumptionToken,
        *,
        options: ExchangeOptions | None = None,
    ) -> Instance | Solution | PartialSolution:
        """Continue a degraded exchange under a fresh budget.

        The token must come from this service's mapping and *source*
        (fingerprint-checked; ``ValueError`` otherwise).  A
        ``"target_dependencies"`` token continues the chase from the
        partial instance; earlier phases re-run the exchange from the
        source.  The result is again either a full solution or another
        :class:`PartialSolution` with a fresher token.
        """
        if token.mapping_fingerprint != self._mapping_fingerprint:
            raise ValueError("resumption token is for a different mapping")
        if token.source_fingerprint != source.fingerprint():
            raise ValueError("resumption token is for a different source")
        opts = options or self._options
        get_registry().increment("service.resumptions")
        if not token.resumable_in_place:
            return self.exchange(source, options=opts)
        self._admit(1)
        try:
            budget = opts.budget()
            store = resolve_provenance(opts.provenance)
            if store.enabled and token.provenance is not None:
                # Continue the interrupted history: the token's snapshot
                # seeds the store and new records extend it in step order.
                store.absorb(token.provenance)
            with get_tracer().span(
                "service.resume", partial_facts=token.partial.size()
            ) as span:
                try:
                    solution = chase_target_dependencies(
                        token.partial,
                        self.mapping.target_dependencies,
                        options=opts,
                        budget=budget,
                        provenance=store,
                    )
                except BudgetExceeded as exc:
                    return self._degrade(
                        source,
                        exc.violated,
                        exc.partial if exc.partial is not None else token.partial,
                        exc.statistics,
                        "target_dependencies",
                        span,
                        provenance=self._partial_provenance(exc, store),
                    )
                except ChaseNonTermination as exc:
                    return self._degrade(
                        source,
                        "max_steps",
                        exc.partial if exc.partial is not None else token.partial,
                        exc.statistics,
                        "target_dependencies",
                        span,
                        provenance=self._partial_provenance(exc, store),
                    )
                self._observe_remaining(budget, solution)
                span.set(target_facts=solution.size())
                if store.enabled:
                    return Solution(solution, store, source)
                return solution
        finally:
            self._release(1)
