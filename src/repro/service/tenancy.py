"""Per-tenant quotas and weighted fair-share admission.

PR 5's admission control was a single global gate: one in-flight counter,
one capacity, first come first served.  Under multi-tenant load that is
exactly wrong — one greedy tenant fills the gate and everyone else
starves behind an endless stream of 429s.  This module replaces the
global gate with weighted fair sharing:

* :class:`TenantQuota` — a tenant's ``weight`` (its slice of the shared
  capacity) and optional ``max_in_flight`` hard cap;
* :class:`FairShareGate` — the admission controller.  Configured tenants
  get a **guaranteed share** of the capacity proportional to their
  weight; the rest is a work-conserving shared pool.  A tenant may burst
  past its guarantee into the pool, but only as long as the capacity
  left behind covers every *other* configured tenant's unused guarantee
  — so a flood from one tenant can never occupy the headroom a quieter
  tenant is entitled to.
* :class:`ServiceOverloaded` — the structured rejection, now carrying
  per-tenant state (who was rejected, their in-flight depth, their
  guaranteed share) so clients and load balancers can react per tenant
  instead of backing the whole fleet off.

Admission and release are O(#configured tenants) under one lock, and
every decision is published to :mod:`repro.obs` (``service.tenant.<id>.*``
counters and in-flight gauges).  See docs/SERVICE.md "Tenancy".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping

from ..obs import get_registry

__all__ = ["FairShareGate", "ServiceOverloaded", "TenantQuota"]

DEFAULT_TENANT = "default"
"""The tenant requests fall under when none is named."""


class ServiceOverloaded(RuntimeError):
    """Admission control rejected the request.

    Carries the global state (``in_flight``, ``requested``, ``capacity``)
    plus — when the gate is tenant-aware — the rejected tenant's own
    state: ``tenant``, ``tenant_in_flight`` (its current depth),
    ``tenant_share`` (its guaranteed share of the capacity, or its hard
    cap when that is what tripped) and ``reason`` (``"capacity"``,
    ``"tenant-cap"`` or ``"fair-share"``).  Clients use the per-tenant
    fields for per-tenant backoff; the HTTP layer maps the whole thing
    onto a 429 with a JSON body (docs/SERVICE.md).
    """

    def __init__(
        self,
        in_flight: int,
        requested: int,
        capacity: int,
        *,
        tenant: str | None = None,
        tenant_in_flight: int | None = None,
        tenant_share: int | None = None,
        reason: str = "capacity",
    ) -> None:
        detail = f"{in_flight} in flight + {requested} requested > capacity {capacity}"
        if tenant is not None and reason != "capacity":
            detail = (
                f"tenant {tenant!r} at {tenant_in_flight} in flight + "
                f"{requested} requested exceeds its {reason} share "
                f"{tenant_share} (service: {in_flight}/{capacity})"
            )
        super().__init__(f"service overloaded: {detail}")
        self.in_flight = in_flight
        self.requested = requested
        self.capacity = capacity
        self.tenant = tenant
        self.tenant_in_flight = tenant_in_flight
        self.tenant_share = tenant_share
        self.reason = reason

    def as_dict(self) -> dict[str, Any]:
        """A JSON-compatible view (the HTTP 429 body)."""
        return {
            "error": str(self),
            "kind": "overloaded",
            "reason": self.reason,
            "in_flight": self.in_flight,
            "requested": self.requested,
            "capacity": self.capacity,
            "tenant": self.tenant,
            "tenant_in_flight": self.tenant_in_flight,
            "tenant_share": self.tenant_share,
        }


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission-control configuration.

    ``weight`` sizes the tenant's guaranteed share of the service
    capacity relative to the other configured tenants; ``max_in_flight``
    is an optional hard cap on the tenant's own concurrency (a noisy
    tenant can be boxed in even when the service has room).
    """

    weight: float = 1.0
    max_in_flight: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )

    def as_dict(self) -> dict[str, Any]:
        return {"weight": self.weight, "max_in_flight": self.max_in_flight}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantQuota":
        if not isinstance(data, Mapping):
            raise ValueError(f"tenant quota must be a JSON object, got {data!r}")
        unknown = sorted(set(data) - {"weight", "max_in_flight"})
        if unknown:
            raise ValueError(f"unknown tenant quota keys {unknown}")
        return cls(
            weight=float(data.get("weight", 1.0)),
            max_in_flight=data.get("max_in_flight"),
        )


class FairShareGate:
    """Weighted fair-share admission over one shared capacity.

    Configured tenants (the *quotas* mapping) split the capacity into
    guaranteed shares proportional to their weights; every tenant —
    configured or not — may additionally use the shared pool, but never
    so deep that the remaining capacity cannot cover the other configured
    tenants' unused guarantees.  With no quotas configured the gate
    degrades to the old single global counter.

    Thread-safe; ``admit``/``release`` are the only mutating operations.
    """

    def __init__(
        self,
        capacity: int,
        quotas: Mapping[str, TenantQuota] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._quotas: dict[str, TenantQuota] = dict(quotas or {})
        self._in_flight: dict[str, int] = {}
        self._total = 0
        self._lock = threading.Lock()
        total_weight = sum(q.weight for q in self._quotas.values())
        self._guarantees: dict[str, int] = {}
        for tenant, quota in self._quotas.items():
            share = max(1, int(capacity * quota.weight / total_weight))
            if quota.max_in_flight is not None:
                share = min(share, quota.max_in_flight)
            self._guarantees[tenant] = share

    # -- introspection ------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._total

    def tenant_in_flight(self, tenant: str = DEFAULT_TENANT) -> int:
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def guaranteed_share(self, tenant: str) -> int:
        """The capacity slice *tenant* can always claim (0 if unconfigured)."""
        return self._guarantees.get(tenant, 0)

    def snapshot(self) -> dict[str, Any]:
        """Current gate state, JSON-compatible (the ``/v1/health`` body)."""
        with self._lock:
            tenants = {
                tenant: {
                    "in_flight": self._in_flight.get(tenant, 0),
                    "guaranteed_share": self._guarantees.get(tenant, 0),
                    "quota": (
                        self._quotas[tenant].as_dict()
                        if tenant in self._quotas
                        else None
                    ),
                }
                for tenant in sorted(set(self._in_flight) | set(self._quotas))
            }
            return {
                "capacity": self._capacity,
                "in_flight": self._total,
                "tenants": tenants,
            }

    # -- admission ----------------------------------------------------------

    def admit(self, tenant: str = DEFAULT_TENANT, count: int = 1) -> None:
        """Admit *count* requests for *tenant* or raise :class:`ServiceOverloaded`.

        The decision, in order: the tenant's own hard cap, the global
        capacity, then the fair-share rule — a tenant above its
        guaranteed share may only dip into the shared pool when the
        capacity left over covers every other configured tenant's unused
        guarantee.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        registry = get_registry()
        with self._lock:
            quota = self._quotas.get(tenant)
            mine = self._in_flight.get(tenant, 0)
            if (
                quota is not None
                and quota.max_in_flight is not None
                and mine + count > quota.max_in_flight
            ):
                self._reject(tenant, count, mine, quota.max_in_flight, "tenant-cap")
            if self._total + count > self._capacity:
                self._reject(
                    tenant, count, mine, self._guarantees.get(tenant), "capacity"
                )
            guarantee = self._guarantees.get(tenant, 0)
            if mine + count > guarantee:
                # Dipping into the shared pool: leave room for everyone
                # else's unused guarantee, or a flood here becomes
                # starvation there.
                reserved = sum(
                    max(0, share - self._in_flight.get(other, 0))
                    for other, share in self._guarantees.items()
                    if other != tenant
                )
                free_after = self._capacity - (self._total + count)
                if free_after < reserved:
                    self._reject(tenant, count, mine, guarantee, "fair-share")
            self._in_flight[tenant] = mine + count
            self._total += count
            registry.increment(f"service.tenant.{tenant}.admitted", count)
            registry.gauge(f"service.tenant.{tenant}.in_flight").set(
                self._in_flight[tenant]
            )
            registry.gauge("service.queue_depth").set(self._total)

    def _reject(
        self,
        tenant: str,
        count: int,
        mine: int,
        share: int | None,
        reason: str,
    ) -> None:
        registry = get_registry()
        registry.increment("service.rejections")
        registry.increment(f"service.tenant.{tenant}.rejected", count)
        raise ServiceOverloaded(
            self._total,
            count,
            self._capacity,
            tenant=tenant,
            tenant_in_flight=mine,
            tenant_share=share,
            reason=reason,
        )

    def release(self, tenant: str = DEFAULT_TENANT, count: int = 1) -> None:
        registry = get_registry()
        with self._lock:
            mine = self._in_flight.get(tenant, 0)
            taken = min(mine, count)
            if taken == mine:
                self._in_flight.pop(tenant, None)
            else:
                self._in_flight[tenant] = mine - taken
            self._total = max(0, self._total - taken)
            registry.gauge(f"service.tenant.{tenant}.in_flight").set(
                self._in_flight.get(tenant, 0)
            )
            registry.gauge("service.queue_depth").set(self._total)


def quotas_from_json(data: Mapping[str, Any]) -> dict[str, TenantQuota]:
    """Parse a ``{"tenant": {"weight": ..., "max_in_flight": ...}}`` config.

    The shape of ``repro serve --tenants tenants.json``.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"tenants config must be a JSON object, got {data!r}")
    return {
        str(tenant): TenantQuota.from_dict(quota) for tenant, quota in data.items()
    }
