"""repro.service — budgeted, fault-tolerant exchange as a long-running service.

The production face of the exchange stack: where
:class:`~repro.compiler.engine.ExchangeEngine` answers one request and
raises on trouble, :class:`ExchangeService` holds budgets, retries pool
failures with backoff, opens a circuit breaker under repeated failure,
sheds load past its admission limit, and degrades to
:class:`PartialSolution` instead of hanging or crashing::

    from repro import ExchangeOptions, ExchangeService, PartialSolution

    service = ExchangeService(mapping, ExchangeOptions(
        workers=2, cache=128, deadline=0.5, max_facts=1_000_000))
    result = service.exchange(source)
    if isinstance(result, PartialSolution):
        result = service.resume(source, result.token)

The service speaks request/response objects (:class:`ExchangeRequest`,
:class:`ExchangeResponse`), streams fact chunks as shards complete
(:meth:`ExchangeService.stream`, :class:`StreamingSolution`), shares its
capacity fairly across tenants (:class:`TenantQuota`,
:class:`~repro.service.tenancy.FairShareGate`) and serves it all over
HTTP via ``repro serve`` (:mod:`repro.service.aserve`).

Submodules:

* :mod:`repro.service.api` — request/response objects, partial
  solutions, the JSON-serializable :class:`ResumptionToken`;
* :mod:`repro.service.tenancy` — per-tenant quotas and weighted
  fair-share admission;
* :mod:`repro.service.streaming` — incremental fact-chunk delivery;
* :mod:`repro.service.service` — the service itself;
* :mod:`repro.service.aserve` — the asyncio HTTP front end
  (chunked NDJSON streaming, ``repro serve``);
* :mod:`repro.service.faults` — the deterministic fault-injection
  harness (worker crashes, pool-spawn failures, slow chases).

The budget/options/breaker building blocks re-exported here live in
:mod:`repro.budget`, :mod:`repro.options` and :mod:`repro.exec.retry`.
See docs/ROBUSTNESS.md for the degradation contract and docs/SERVICE.md
for the HTTP API.
"""

from ..budget import Budget, BudgetExceeded
from ..exec.retry import CircuitBreaker
from ..faults import Fault, FaultPlan, InjectedFault, fault_injection
from ..options import ExchangeOptions, RetryPolicy
from .api import (
    ExchangeRequest,
    ExchangeResponse,
    PartialSolution,
    ResumptionToken,
)
from .service import ExchangeService
from .streaming import FactChunk, StreamingSolution
from .tenancy import FairShareGate, ServiceOverloaded, TenantQuota

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CircuitBreaker",
    "ExchangeOptions",
    "ExchangeRequest",
    "ExchangeResponse",
    "ExchangeService",
    "FactChunk",
    "FairShareGate",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "PartialSolution",
    "ResumptionToken",
    "RetryPolicy",
    "ServiceOverloaded",
    "StreamingSolution",
    "TenantQuota",
    "fault_injection",
]
