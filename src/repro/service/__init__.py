"""repro.service — budgeted, fault-tolerant exchange as a long-running service.

The production face of the exchange stack: where
:class:`~repro.compiler.engine.ExchangeEngine` answers one request and
raises on trouble, :class:`ExchangeService` holds budgets, retries pool
failures with backoff, opens a circuit breaker under repeated failure,
sheds load past its admission limit, and degrades to
:class:`PartialSolution` instead of hanging or crashing::

    from repro import ExchangeOptions, ExchangeService, PartialSolution

    service = ExchangeService(mapping, ExchangeOptions(
        workers=2, cache=128, deadline=0.5, max_facts=1_000_000))
    result = service.exchange(source)
    if isinstance(result, PartialSolution):
        result = service.resume(source, result.token)

Submodules:

* :mod:`repro.service.service` — the service, partial solutions,
  resumption tokens, admission control;
* :mod:`repro.service.faults` — the deterministic fault-injection
  harness (worker crashes, pool-spawn failures, slow chases).

The budget/options/breaker building blocks re-exported here live in
:mod:`repro.budget`, :mod:`repro.options` and :mod:`repro.exec.retry`.
See docs/ROBUSTNESS.md for the full contract.
"""

from ..budget import Budget, BudgetExceeded
from ..exec.retry import CircuitBreaker
from ..faults import Fault, FaultPlan, InjectedFault, fault_injection
from ..options import ExchangeOptions, RetryPolicy
from .service import (
    ExchangeService,
    PartialSolution,
    ResumptionToken,
    ServiceOverloaded,
)

__all__ = [
    "Budget",
    "BudgetExceeded",
    "CircuitBreaker",
    "ExchangeOptions",
    "ExchangeService",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "PartialSolution",
    "ResumptionToken",
    "RetryPolicy",
    "ServiceOverloaded",
    "fault_injection",
]
