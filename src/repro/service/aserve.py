"""``repro serve`` — the asyncio HTTP front end of the exchange service.

A handwritten HTTP/1.1 layer over ``asyncio.start_server`` (standard
library only, by design): one event loop accepts any number of
concurrent connections, admission control runs per tenant in the loop,
and the CPU-bound chase payloads are dispatched to worker processes via
``loop.run_in_executor`` — the loop never blocks on a chase, so a slow
exchange cannot starve its neighbours' accepts or streams.

Routes (full wire contract in docs/SERVICE.md):

* ``POST /v1/exchange`` — body is :meth:`ExchangeRequest.as_dict` plus
  an optional ``"stream"`` flag (default true).  Streaming responses
  are chunked NDJSON: a ``header`` line, ``facts`` lines as shards
  complete, and a ``summary`` trailer carrying the resumption token
  when the request degraded.  ``"stream": false`` buffers and returns
  one :meth:`ExchangeResponse.as_dict` JSON body.
* ``GET /v1/health`` — service liveness + the admission gate's
  per-tenant snapshot.

Rejections are structured: 429 with the
:meth:`ServiceOverloaded.as_dict` body (per-tenant state included) when
admission fails, 400 for malformed requests and token mismatches, 422
when the mapping has no solution for the source.

:class:`ExchangeClient` is the matching stdlib-only client — the CI
smoke test, ``repro serve-bench --concurrency`` and the examples all
speak through it.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, AsyncIterator, Mapping

from ..mapping.chase import ChaseFailure
from ..obs import get_registry, get_tracer
from ..options import ExchangeOptions
from .api import ExchangeRequest
from .service import ExchangeService
from .streaming import DEFAULT_CHUNK_FACTS, StreamSession, exchange_payload
from .tenancy import ServiceOverloaded

__all__ = ["ExchangeClient", "ExchangeServer"]

MAX_BODY_BYTES = 64 * 1024 * 1024
"""Request-body ceiling; a source bigger than this should arrive as a
file next to the server, not through one POST."""

_MAX_HEADER_BYTES = 64 * 1024
_IO_TIMEOUT = 60.0


class _HttpError(Exception):
    """An error with a ready-made HTTP response."""

    def __init__(self, status: int, kind: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.body = {"error": message, "kind": kind}


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _response_head(status: int, headers: Mapping[str, str]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _chunk(data: bytes) -> bytes:
    """One HTTP/1.1 chunked-transfer frame."""
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


_LAST_CHUNK = b"0\r\n\r\n"


class ExchangeServer:
    """One mapping served over HTTP by one :class:`ExchangeService`.

    >>> server = ExchangeServer(service, host="127.0.0.1", port=0)
    >>> await server.start()          # port 0 → OS-assigned, see .port
    >>> await server.serve_forever()  # or: await server.aclose()

    The server shares the service's worker pool when the engine has one
    (``options.workers``); otherwise it lazily spawns its own
    ``ProcessPoolExecutor`` so request payloads still leave the event
    loop.  Every connection handles one request (``Connection: close``)
    — load balancers in front of an exchange fleet reconnect per
    request anyway, and it keeps the protocol state machine trivial.
    """

    def __init__(
        self,
        service: ExchangeService,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        chunk_facts: int = DEFAULT_CHUNK_FACTS,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._chunk_facts = chunk_facts
        self._max_body_bytes = max_body_bytes
        self._server: asyncio.AbstractServer | None = None
        self._own_pool: ProcessPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            return self._port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        # Warm the worker pool before accepting connections: forking
        # workers mid-request would hand them copies of live connection
        # fds, keeping sockets open past their close.  Submitting no-ops
        # forces the executor to actually spawn its processes.
        pool = self._pool()
        loop = asyncio.get_running_loop()
        warmups = [
            loop.run_in_executor(pool, int)
            for _ in range(getattr(pool, "_max_workers", 1))
        ]
        await asyncio.gather(*warmups)
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._own_pool is not None:
            self._own_pool.shutdown(wait=False, cancel_futures=True)
            self._own_pool = None

    def _pool(self) -> ProcessPoolExecutor:
        executor = self._service.engine.executor
        if executor is not None:
            return executor.ensure_pool()
        if self._own_pool is None:
            workers = self._service.options.workers or 2
            self._own_pool = ProcessPoolExecutor(max_workers=workers)
        return self._own_pool

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._write_json(writer, exc.status, exc.body)
                return
            except (asyncio.IncompleteReadError, ConnectionError, TimeoutError):
                return
            try:
                await self._dispatch(writer, method, path, body)
            except _HttpError as exc:
                await self._write_json(writer, exc.status, exc.body)
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # don't let one request kill the server
                get_registry().increment("service.http.errors")
                await self._write_json(
                    writer,
                    500,
                    {"error": f"{type(exc).__name__}: {exc}", "kind": "internal"},
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_IO_TIMEOUT
        )
        if not request_line:
            raise ConnectionError("client closed before sending a request")
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "bad-request", "malformed request line")
        method, path, _version = parts
        content_length = 0
        header_bytes = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=_IO_TIMEOUT)
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise _HttpError(400, "bad-request", "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad-request", "bad Content-Length")
        if content_length > self._max_body_bytes:
            raise _HttpError(
                413,
                "too-large",
                f"body of {content_length} bytes exceeds "
                f"{self._max_body_bytes}",
            )
        body = (
            await asyncio.wait_for(
                reader.readexactly(content_length), timeout=_IO_TIMEOUT
            )
            if content_length
            else b""
        )
        return method, path, body

    async def _dispatch(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        path = path.split("?", 1)[0]
        if path == "/v1/health":
            if method != "GET":
                raise _HttpError(405, "method-not-allowed", f"{method} {path}")
            snapshot = self._service.gate.snapshot()
            snapshot["status"] = "ok"
            await self._write_json(writer, 200, snapshot)
            return
        if path == "/v1/exchange":
            if method != "POST":
                raise _HttpError(405, "method-not-allowed", f"{method} {path}")
            await self._exchange(writer, body)
            return
        raise _HttpError(404, "not-found", f"no route for {path}")

    # -- the exchange route --------------------------------------------------

    async def _exchange(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, "bad-request", f"body is not JSON: {exc}")
        try:
            request = ExchangeRequest.from_dict(data)
        except ValueError as exc:
            raise _HttpError(400, "bad-request", str(exc))
        stream = bool(data.get("stream", True))
        options = (
            request.options if request.options is not None else self._service.options
        )
        if request.token is not None:
            try:
                self._service._check_token(request.source, request.token)
            except ValueError as exc:
                raise _HttpError(400, "token-mismatch", str(exc))
        registry = get_registry()
        try:
            self._service.gate.admit(request.tenant, 1)
        except ServiceOverloaded as exc:
            payload = json.dumps(exc.as_dict()).encode("utf-8")
            head = _response_head(
                429,
                {
                    "Content-Type": "application/json",
                    "Retry-After": "1",
                    "Connection": "close",
                    "Content-Length": str(len(payload)),
                },
            )
            writer.write(head + payload)
            await writer.drain()
            return
        started = time.perf_counter()
        try:
            registry.increment("service.requests")
            registry.increment("service.http.requests")
            with get_tracer().span(
                "service.http",
                tenant=request.tenant,
                request_id=request.request_id,
                stream=stream,
            ):
                session = StreamSession(
                    self._service.mapping,
                    request,
                    options,
                    mapping_fingerprint=self._service._mapping_fingerprint,
                    chunk_facts=self._chunk_facts,
                )
                if stream:
                    await self._stream_response(writer, request, session, started)
                else:
                    await self._buffered_response(writer, request, session, started)
        except ChaseFailure as exc:
            raise _HttpError(422, "unsatisfiable", str(exc))
        finally:
            self._service.gate.release(request.tenant, 1)

    async def _outcomes(
        self, session: StreamSession
    ) -> AsyncIterator[tuple[int, dict[str, Any]]]:
        """Run the session's payloads on the pool; yield in completion order."""
        loop = asyncio.get_running_loop()
        pool = self._pool()

        async def tagged(index: int, payload: dict[str, Any]):
            outcome = await loop.run_in_executor(pool, exchange_payload, payload)
            return index, outcome

        tasks = [
            asyncio.ensure_future(tagged(i, p))
            for i, p in enumerate(session.payloads)
        ]
        try:
            for next_done in asyncio.as_completed(tasks):
                yield await next_done
        finally:
            for task in tasks:
                task.cancel()

    async def _stream_response(
        self,
        writer: asyncio.StreamWriter,
        request: ExchangeRequest,
        session: StreamSession,
        started: float,
    ) -> None:
        get_registry().increment("service.streams")
        writer.write(
            _response_head(
                200,
                {
                    "Content-Type": "application/x-ndjson",
                    "Transfer-Encoding": "chunked",
                    "Connection": "close",
                },
            )
        )
        header = {
            "kind": "header",
            "tenant": request.tenant,
            "request_id": request.request_id,
            "payloads": len(session.payloads),
            "sharded": session.sharded,
        }
        writer.write(_chunk(_ndjson(header)))
        await writer.drain()
        async for index, outcome in self._outcomes(session):
            for fact_chunk in session.chunks(index, outcome):
                writer.write(_chunk(_ndjson(fact_chunk.as_dict())))
            # Drain per payload, not per chunk: backpressure without a
            # flush syscall for every few thousand facts.
            await writer.drain()
        summary = session.summary_dict(
            elapsed_seconds=time.perf_counter() - started
        )
        if summary["status"] != "complete":
            get_registry().increment("service.degraded")
        writer.write(_chunk(_ndjson(summary)) + _LAST_CHUNK)
        await writer.drain()

    async def _buffered_response(
        self,
        writer: asyncio.StreamWriter,
        request: ExchangeRequest,
        session: StreamSession,
        started: float,
    ) -> None:
        async for index, outcome in self._outcomes(session):
            for _ in session.chunks(index, outcome):
                pass
        response = session.response(
            elapsed_seconds=time.perf_counter() - started
        )
        if not response.complete:
            get_registry().increment("service.degraded")
        await self._write_json(writer, 200, response.as_dict())

    @staticmethod
    async def _write_json(
        writer: asyncio.StreamWriter, status: int, body: Mapping[str, Any]
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        writer.write(
            _response_head(
                status,
                {
                    "Content-Type": "application/json",
                    "Content-Length": str(len(payload)),
                    "Connection": "close",
                },
            )
            + payload
        )
        await writer.drain()


def _ndjson(obj: Mapping[str, Any]) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


class ExchangeClient:
    """A stdlib-only asyncio client for :class:`ExchangeServer`.

    >>> client = ExchangeClient("127.0.0.1", 8080)
    >>> events = await client.exchange({"source": instance_json})
    >>> events[-1]["kind"]
    'summary'

    ``exchange`` returns the NDJSON event list for streaming requests
    (header, facts…, summary) and ``[body]`` for buffered ones; 4xx/5xx
    raise :class:`ExchangeClientError` carrying the structured body.
    """

    def __init__(self, host: str, port: int) -> None:
        self._host = host
        self._port = port

    async def exchange(self, body: Mapping[str, Any]) -> list[dict[str, Any]]:
        status, payload = await self._post("/v1/exchange", body)
        if status != 200:
            raise ExchangeClientError(status, payload)
        return payload

    async def health(self) -> dict[str, Any]:
        status, payload = await self._post("/v1/health", None, method="GET")
        if status != 200:
            raise ExchangeClientError(status, payload)
        return payload[0]

    async def _post(
        self,
        path: str,
        body: Mapping[str, Any] | None,
        *,
        method: str = "POST",
    ) -> tuple[int, list[dict[str, Any]]]:
        reader, writer = await asyncio.open_connection(self._host, self._port)
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self._host}:{self._port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + payload)
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(maxsplit=2)
            status = int(parts[1]) if len(parts) >= 2 else 500
            chunked = False
            content_length: int | None = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                header = name.strip().lower()
                if header == "transfer-encoding" and "chunked" in value.lower():
                    chunked = True
                elif header == "content-length":
                    content_length = int(value.strip())
            raw = await self._read_body(reader, chunked, content_length)
            text = raw.decode("utf-8").strip()
            if not text:
                return status, []
            return status, [json.loads(line) for line in text.splitlines()]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader,
        chunked: bool,
        content_length: int | None = None,
    ) -> bytes:
        if not chunked:
            # Prefer the declared length over read-to-EOF: forked pool
            # workers can inherit the connection fd, in which case EOF
            # only arrives when they exit.
            if content_length is not None:
                return await reader.readexactly(content_length)
            return await reader.read()
        out = bytearray()
        while True:
            size_line = await reader.readline()
            size = int(size_line.strip() or b"0", 16)
            if size == 0:
                await reader.readline()  # trailing CRLF after last chunk
                return bytes(out)
            out += await reader.readexactly(size)
            await reader.readexactly(2)  # chunk's CRLF


class ExchangeClientError(RuntimeError):
    """A non-200 reply; ``status`` and the structured ``body`` attached."""

    def __init__(self, status: int, body: list[dict[str, Any]]) -> None:
        detail = body[0] if body else {}
        super().__init__(
            f"HTTP {status}: {detail.get('error', 'no detail')}"
        )
        self.status = status
        self.body = detail
