"""The service's public request/response vocabulary.

PR 5 grew the service organically: ``exchange(source)`` returned one of
three unrelated types and the resumption token was an internal dataclass
that leaked raw fingerprints through ``repr`` and could not cross a
process boundary.  This module redesigns that surface around four
explicit objects:

* :class:`ExchangeRequest` — everything one request is: the source
  instance, the tenant it bills to, per-request
  :class:`~repro.options.ExchangeOptions`, and (for continuations) a
  :class:`ResumptionToken`;
* :class:`ExchangeResponse` — the uniform reply: status
  (``"complete"``/``"partial"``), the target facts, the violated budget
  and a fresh token when degraded;
* :class:`ResumptionToken` — now a **stable, versioned, JSON-serializable
  pagination API**: :meth:`ResumptionToken.to_json` in one process,
  :meth:`ResumptionToken.from_json` in another, resume, and the final
  solution is canonically equal to the uninterrupted run (tested in
  tests/service/test_token_roundtrip.py);
* :class:`PartialSolution` — unchanged contract, but its ``repr`` and
  new :meth:`PartialSolution.as_dict` no longer leak fingerprint
  internals and match the token's JSON shape.

Wire shapes are documented in docs/SERVICE.md; every ``as_dict`` here is
the body (or a sub-object) of the HTTP API in
:mod:`repro.service.aserve`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from ..mapping.chase import ChaseStatistics
from ..options import ExchangeOptions
from ..provenance import ProvenanceLog, Solution
from ..relational.instance import Instance
from ..relational.serialization import instance_from_json, instance_to_json
from .tenancy import DEFAULT_TENANT

__all__ = [
    "ExchangeRequest",
    "ExchangeResponse",
    "PartialSolution",
    "ResumptionToken",
    "TOKEN_KIND",
    "TOKEN_VERSION",
]

TOKEN_VERSION = 1
"""Version stamped into every serialized token.

Bump only with a migration path in :meth:`ResumptionToken.from_json`;
clients treat tokens as opaque, so the version is the *only* thing that
may reject one.
"""

TOKEN_KIND = "repro.resumption-token"
"""Type tag distinguishing tokens from other JSON objects on the wire."""


def _digest_preview(fingerprint: str) -> str:
    """First 8 hex chars — enough to eyeball, not enough to leak."""
    return fingerprint[:8]


@dataclass(frozen=True, repr=False)
class ResumptionToken:
    """Where a budget-interrupted exchange stopped, and how to continue.

    ``phase`` names the interrupted chase phase:

    * ``"target_dependencies"`` — the st-tgd phase completed;
      :meth:`ExchangeService.resume` continues the target-dependency
      chase from ``partial`` (sound: the chase is monotone and the
      restricted chase from any intermediate instance still reaches a
      solution);
    * ``"st_tgds"`` / ``"merge"`` — the interruption predates a
      resumable waypoint; resume re-runs the exchange from the source
      under the new budget.

    The fingerprints pin the token to one (mapping, source) pair so a
    token cannot be replayed against different data.  ``provenance``
    snapshots the lineage recorded before the interruption (``None``
    when the request ran without provenance); resume extends it across
    the continued chase so the final solution explains facts from *both*
    sides of the interruption.

    Tokens are a public pagination API: :meth:`to_json` /
    :meth:`from_json` round-trip across processes and service instances
    (versioned — see :data:`TOKEN_VERSION`), so an HTTP client can hold
    a token, come back later, and continue against any replica serving
    the same mapping.
    """

    mapping_fingerprint: str
    source_fingerprint: str
    phase: str
    partial: Instance
    provenance: ProvenanceLog | None = None

    @property
    def resumable_in_place(self) -> bool:
        return self.phase == "target_dependencies"

    def __repr__(self) -> str:
        return (
            f"ResumptionToken(phase={self.phase!r}, "
            f"partial_facts={self.partial.size()}, "
            f"mapping={_digest_preview(self.mapping_fingerprint)}…, "
            f"source={_digest_preview(self.source_fingerprint)}…)"
        )

    # -- the versioned wire format ------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """The token's stable JSON shape (see docs/SERVICE.md "Pagination").

        Full fingerprints are included — they are what pins a token to
        its (mapping, source) pair on resume — but the shape is versioned
        and kind-tagged so it can evolve without breaking held tokens.
        """
        return {
            "version": TOKEN_VERSION,
            "kind": TOKEN_KIND,
            "mapping": self.mapping_fingerprint,
            "source": self.source_fingerprint,
            "phase": self.phase,
            "partial": instance_to_json(self.partial),
            "provenance": (
                json.loads(self.provenance.to_json_text())
                if self.provenance is not None
                else None
            ),
        }

    def to_json(self) -> str:
        """Serialize for transport; :meth:`from_json` anywhere restores it."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, data: str | Mapping[str, Any]) -> "ResumptionToken":
        """Restore a token serialized by :meth:`to_json` / :meth:`as_dict`.

        Accepts the JSON text or the already-parsed object (the HTTP
        layer hands the parsed request body straight in).  Raises
        ``ValueError`` on a wrong kind, an unsupported version, or a
        malformed payload — never silently resumes from garbage.
        """
        if isinstance(data, str):
            data = json.loads(data)
        if not isinstance(data, Mapping):
            raise ValueError(f"resumption token must be a JSON object, got {data!r}")
        kind = data.get("kind")
        if kind != TOKEN_KIND:
            raise ValueError(f"not a resumption token (kind={kind!r})")
        version = data.get("version")
        if version != TOKEN_VERSION:
            raise ValueError(
                f"unsupported resumption token version {version!r} "
                f"(this build speaks version {TOKEN_VERSION})"
            )
        try:
            provenance_data = data.get("provenance")
            return cls(
                mapping_fingerprint=str(data["mapping"]),
                source_fingerprint=str(data["source"]),
                phase=str(data["phase"]),
                partial=instance_from_json(data["partial"]),
                provenance=(
                    ProvenanceLog.from_json_text(json.dumps(provenance_data))
                    if provenance_data is not None
                    else None
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed resumption token: {exc}") from exc


@dataclass(frozen=True, repr=False)
class PartialSolution:
    """What a budget-exhausted exchange managed to produce.

    ``facts`` is a *prefix* of the chase: every fact is derivable, so it
    is a subset (up to null naming) of the full canonical universal
    solution — useful for best-effort answers and for resumption, but
    **not** a solution (some dependency may be unsatisfied).  ``violated``
    names the exhausted limit (``"deadline"`` / ``"max_facts"`` /
    ``"max_steps"``); ``token`` feeds :meth:`ExchangeService.resume`;
    ``provenance`` is the partial lineage recorded up to the
    interruption (``None`` when the request ran without provenance), so
    even a degraded answer can explain the facts it *did* produce.
    """

    facts: Instance
    violated: str
    statistics: ChaseStatistics | None
    token: ResumptionToken
    provenance: ProvenanceLog | None = None

    @property
    def is_partial(self) -> bool:
        """True — shared vocabulary with full Instances via ``getattr``."""
        return True

    def __repr__(self) -> str:
        return (
            f"PartialSolution({self.facts.size()} facts, "
            f"violated={self.violated!r}, phase={self.token.phase!r})"
        )

    def as_dict(self, *, include_facts: bool = False) -> dict[str, Any]:
        """A JSON view matching the token format (docs/SERVICE.md).

        The token inside already carries the partial instance, so the
        facts are not duplicated unless *include_facts* asks for them.
        """
        out: dict[str, Any] = {
            "status": "partial",
            "violated": self.violated,
            "phase": self.token.phase,
            "fact_count": self.facts.size(),
            "token": self.token.as_dict(),
        }
        if include_facts:
            out["facts"] = instance_to_json(self.facts)
        return out


_REQUEST_WIRE_KEYS = ("tenant", "source", "options", "token", "request_id", "stream")


@dataclass(frozen=True)
class ExchangeRequest:
    """One exchange request, complete and immutable.

    ``source`` is the instance to exchange; ``tenant`` is who it bills
    to (admission control is per tenant — :mod:`repro.service.tenancy`);
    ``options`` overrides the service defaults for this request only;
    ``token`` makes this a *continuation* of a previously degraded
    request; ``request_id`` is an optional client-chosen correlation id
    echoed through responses, spans and log lines.
    """

    source: Instance
    tenant: str = DEFAULT_TENANT
    options: ExchangeOptions | None = None
    token: ResumptionToken | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")

    @property
    def is_resume(self) -> bool:
        return self.token is not None

    def as_dict(self) -> dict[str, Any]:
        """The HTTP request body shape (``POST /v1/exchange``)."""
        return {
            "tenant": self.tenant,
            "source": instance_to_json(self.source),
            "options": self.options.as_dict() if self.options is not None else None,
            "token": self.token.as_dict() if self.token is not None else None,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExchangeRequest":
        """Parse an HTTP request body; unknown keys fail loudly."""
        if not isinstance(data, Mapping):
            raise ValueError(f"request must be a JSON object, got {data!r}")
        unknown = sorted(set(data) - set(_REQUEST_WIRE_KEYS))
        if unknown:
            raise ValueError(
                f"unknown request keys {unknown}; allowed: "
                f"{sorted(_REQUEST_WIRE_KEYS)}"
            )
        if "source" not in data or data["source"] is None:
            raise ValueError("request is missing 'source'")
        options = data.get("options")
        token = data.get("token")
        return cls(
            source=instance_from_json(data["source"]),
            tenant=str(data.get("tenant") or DEFAULT_TENANT),
            options=(
                ExchangeOptions.from_dict(options) if options is not None else None
            ),
            token=ResumptionToken.from_json(token) if token is not None else None,
            request_id=(
                str(data["request_id"])
                if data.get("request_id") is not None
                else None
            ),
        )


@dataclass(frozen=True, repr=False)
class ExchangeResponse:
    """The uniform reply to an :class:`ExchangeRequest`.

    ``status`` is ``"complete"`` or ``"partial"``; ``facts`` always
    holds the produced target instance (the full solution, or the
    chase prefix when degraded).  ``result`` keeps the underlying
    object — an :class:`~repro.relational.instance.Instance`, a
    provenance-carrying :class:`~repro.provenance.Solution`, or a
    :class:`PartialSolution` — for callers that need the richer API
    (``explain``, statistics); the flat fields exist so nobody has to
    isinstance-switch to learn what happened.
    """

    status: str
    facts: Instance
    result: "Instance | Solution | PartialSolution"
    tenant: str = DEFAULT_TENANT
    request_id: str | None = None
    violated: str | None = None
    token: ResumptionToken | None = None
    elapsed_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        return self.status == "complete"

    def __repr__(self) -> str:
        detail = f", violated={self.violated!r}" if self.violated else ""
        return (
            f"ExchangeResponse({self.status}, {self.facts.size()} facts, "
            f"tenant={self.tenant!r}{detail})"
        )

    @classmethod
    def from_result(
        cls,
        result: "Instance | Solution | PartialSolution",
        *,
        tenant: str = DEFAULT_TENANT,
        request_id: str | None = None,
        elapsed_seconds: float = 0.0,
    ) -> "ExchangeResponse":
        """Wrap a legacy ``exchange()`` result into the uniform response."""
        if isinstance(result, PartialSolution):
            return cls(
                status="partial",
                facts=result.facts,
                result=result,
                tenant=tenant,
                request_id=request_id,
                violated=result.violated,
                token=result.token,
                elapsed_seconds=elapsed_seconds,
            )
        facts = result.instance if isinstance(result, Solution) else result
        return cls(
            status="complete",
            facts=facts,
            result=result,
            tenant=tenant,
            request_id=request_id,
            elapsed_seconds=elapsed_seconds,
        )

    def as_dict(self, *, include_facts: bool = True) -> dict[str, Any]:
        """The HTTP response body shape (non-streaming ``POST /v1/exchange``)."""
        out: dict[str, Any] = {
            "status": self.status,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "fact_count": self.facts.size(),
            "violated": self.violated,
            "token": self.token.as_dict() if self.token is not None else None,
            "elapsed_ms": round(self.elapsed_seconds * 1000.0, 3),
        }
        if include_facts:
            out["facts"] = instance_to_json(self.facts)
        return out
