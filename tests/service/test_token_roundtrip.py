"""Resumption tokens as a stable pagination API: JSON round-trips.

The tentpole guarantee: a ``ResumptionToken`` serialized with
``to_json()`` can be carried across process boundaries (here: a real
fork via multiprocessing spawn of a worker function) and resumed by a
*different* service instance, yielding a final solution canonically
equal to the uninterrupted run.
"""

import json
import multiprocessing
import pickle

import pytest

from repro import ExchangeOptions, ExchangeService, PartialSolution
from repro.logic.parser import parse_rule
from repro.mapping import SchemaMapping
from repro.mapping.dependencies import TargetTgd
from repro.provenance import Solution
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.service import ResumptionToken
from repro.service.api import TOKEN_KIND, TOKEN_VERSION


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def target_tgd(text):
    rule = parse_rule(text)
    return TargetTgd(rule.lhs, rule.branches[0][1])


def fk_mapping():
    """Target tgds so interruption can land in the resumable phase."""
    source = schema(relation("E", "n", "d"))
    target = schema(relation("Emp", "n", "d"), relation("Dept", "d"))
    return SchemaMapping.parse(
        source,
        target,
        "E(x, d) -> Emp(x, d)",
        [target_tgd("Emp(x, d) -> Dept(d)")],
    )


def fk_source(rows=40):
    source = schema(relation("E", "n", "d"))
    return instance(source, {"E": [[f"e{i}", f"d{i % 7}"] for i in range(rows)]})


def interrupt(mapping, source, *, max_facts, provenance=False):
    """Run with a tight fact budget and hand back the partial."""
    options = ExchangeOptions(max_facts=max_facts, provenance=provenance)
    with ExchangeService(mapping, options) as service:
        result = service.exchange(source)
    assert isinstance(result, PartialSolution), "budget did not trip"
    assert result.token is not None
    return result


def full_solution(mapping, source):
    with ExchangeService(mapping) as service:
        return service.exchange(source)


def _resume_in_child(token_json, source_rows, out):
    """Spawn-target: rebuild everything from scratch and resume."""
    mapping = fk_mapping()
    source = fk_source(source_rows)
    with ExchangeService(mapping) as service:
        resumed = service.resume(source, token_json)
    facts = resumed.instance if isinstance(resumed, Solution) else resumed
    out.put(pickle.dumps(facts))


class TestTokenJson:
    def test_versioned_envelope(self):
        partial = interrupt(fk_mapping(), fk_source(), max_facts=45)
        data = json.loads(partial.token.to_json())
        assert data["kind"] == TOKEN_KIND
        assert data["version"] == TOKEN_VERSION
        assert set(data) >= {"mapping", "source", "phase", "partial"}

    def test_to_json_is_deterministic(self):
        partial = interrupt(fk_mapping(), fk_source(), max_facts=45)
        assert partial.token.to_json() == partial.token.to_json()

    def test_from_json_round_trip(self):
        token = interrupt(fk_mapping(), fk_source(), max_facts=45).token
        clone = ResumptionToken.from_json(token.to_json())
        assert clone.mapping_fingerprint == token.mapping_fingerprint
        assert clone.source_fingerprint == token.source_fingerprint
        assert clone.phase == token.phase
        assert canonically_equal(clone.partial, token.partial)

    def test_from_json_accepts_parsed_mapping(self):
        token = interrupt(fk_mapping(), fk_source(), max_facts=45).token
        clone = ResumptionToken.from_json(json.loads(token.to_json()))
        assert clone.phase == token.phase

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda d: d.pop("kind"),
            lambda d: d.update(kind="not-a-token"),
            lambda d: d.update(version=999),
            lambda d: d.pop("partial"),
            lambda d: d.update(partial="not-an-instance"),
        ],
    )
    def test_malformed_tokens_rejected(self, mangle):
        token = interrupt(fk_mapping(), fk_source(), max_facts=45).token
        data = json.loads(token.to_json())
        mangle(data)
        with pytest.raises(ValueError):
            ResumptionToken.from_json(data)

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            ResumptionToken.from_json("{not json")
        with pytest.raises(ValueError):
            ResumptionToken.from_json("[1, 2, 3]")


class TestResumeFromJson:
    def test_resume_in_same_process_canonically_equal(self):
        mapping, source = fk_mapping(), fk_source()
        token_json = interrupt(mapping, source, max_facts=45).token.to_json()
        with ExchangeService(mapping) as service:
            resumed = service.resume(source, token_json)
        expected = full_solution(mapping, source)
        assert canonically_equal(resumed, expected)

    def test_resume_in_fresh_service_instance(self):
        mapping, source = fk_mapping(), fk_source()
        token_json = interrupt(mapping, source, max_facts=45).token.to_json()
        # A brand-new service: nothing shared with the one that issued
        # the token except the mapping text.
        rebuilt = SchemaMapping.parse(
            schema(relation("E", "n", "d")),
            schema(relation("Emp", "n", "d"), relation("Dept", "d")),
            "E(x, d) -> Emp(x, d)",
            [target_tgd("Emp(x, d) -> Dept(d)")],
        )
        with ExchangeService(rebuilt) as service:
            resumed = service.resume(source, token_json)
        assert canonically_equal(resumed, full_solution(mapping, source))

    def test_resume_in_fresh_process(self):
        """The real pagination contract: token crosses a process boundary."""
        mapping, source = fk_mapping(), fk_source()
        token_json = interrupt(mapping, source, max_facts=45).token.to_json()
        ctx = multiprocessing.get_context("spawn")
        out = ctx.Queue()
        child = ctx.Process(
            target=_resume_in_child, args=(token_json, 40, out)
        )
        child.start()
        try:
            facts = pickle.loads(out.get(timeout=120))
        finally:
            child.join(timeout=30)
        expected = full_solution(mapping, source)
        assert canonically_equal(facts, expected)

    def test_resume_with_provenance_enabled(self):
        mapping, source = fk_mapping(), fk_source()
        partial = interrupt(mapping, source, max_facts=45, provenance=True)
        token_json = partial.token.to_json()
        data = json.loads(token_json)
        assert data["provenance"] is not None, "provenance lost from token"
        options = ExchangeOptions(provenance=True)
        with ExchangeService(mapping, options) as service:
            resumed = service.resume(source, token_json)
        assert isinstance(resumed, Solution)
        expected = full_solution(mapping, source)
        assert canonically_equal(resumed.instance, expected)
        # Every resumed fact is explainable: lineage survived the trip.
        for fact in resumed.instance.facts():
            assert resumed.explain(fact) is not None

    def test_resume_after_parallel_shard_run(self):
        """Tokens issued under workers>1 options resume identically."""
        mapping, source = fk_mapping(), fk_source()
        options = ExchangeOptions(max_facts=45, workers=2, min_parallel_facts=0)
        with ExchangeService(mapping, options) as service:
            result = service.exchange(source)
        assert isinstance(result, PartialSolution)
        token_json = result.token.to_json()
        with ExchangeService(mapping) as service:
            resumed = service.resume(source, token_json)
        assert canonically_equal(resumed, full_solution(mapping, source))

    def test_mismatched_source_rejected(self):
        mapping = fk_mapping()
        token_json = interrupt(mapping, fk_source(40), max_facts=45).token.to_json()
        with ExchangeService(mapping) as service:
            with pytest.raises(ValueError, match="different source"):
                service.resume(fk_source(13), token_json)


class TestTokenHygiene:
    def test_repr_shows_digest_previews_only(self):
        token = interrupt(fk_mapping(), fk_source(), max_facts=45).token
        text = repr(token)
        assert token.mapping_fingerprint[:8] in text
        assert token.mapping_fingerprint not in text
        assert token.source_fingerprint not in text
        assert len(text) < 200

    def test_partial_solution_repr_is_compact(self):
        partial = interrupt(fk_mapping(), fk_source(), max_facts=45)
        text = repr(partial)
        assert "PartialSolution" in text
        assert len(text) < 300
        # No raw fact dump, no full fingerprints.
        assert partial.token.mapping_fingerprint not in text

    def test_partial_solution_as_dict_is_stable(self):
        partial = interrupt(fk_mapping(), fk_source(), max_facts=45)
        data = partial.as_dict()
        assert data["status"] == "partial"
        assert data["violated"] == partial.violated
        assert data["fact_count"] == partial.facts.size()
        assert data["token"] == partial.token.as_dict()
        json.dumps(data)  # JSON-serializable end to end
