"""Tests for request-scoped budgets (repro.budget)."""

import pytest

from repro.budget import Budget, BudgetExceeded


class FakeClock:
    """A manually-advanced monotonic clock for deterministic deadlines."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudget:
    def test_unlimited_checks_are_noops(self):
        budget = Budget()
        assert budget.unlimited
        for _ in range(1000):
            budget.check(facts=10**9)
        assert budget.checks == 1000

    def test_deadline_trips_after_elapsed(self):
        clock = FakeClock()
        budget = Budget(deadline=0.5, clock=clock)
        budget.check()
        clock.advance(0.49)
        budget.check()
        clock.advance(0.02)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check(phase="target_dependencies")
        assert excinfo.value.violated == "deadline"
        assert excinfo.value.phase == "target_dependencies"
        assert excinfo.value.budget is budget

    def test_max_facts_trips_at_cap(self):
        budget = Budget(max_facts=10)
        budget.check(facts=9)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check(facts=10)
        assert excinfo.value.violated == "max_facts"

    def test_check_without_facts_skips_fact_cap(self):
        budget = Budget(max_facts=1)
        budget.check()  # no fact count supplied — nothing to compare

    def test_remaining_seconds_and_facts(self):
        clock = FakeClock()
        budget = Budget(deadline=2.0, max_facts=100, clock=clock)
        clock.advance(0.5)
        assert budget.remaining_seconds() == pytest.approx(1.5)
        assert budget.remaining_facts(30) == 70
        assert Budget(max_facts=5).remaining_seconds() is None
        assert Budget(deadline=1.0).remaining_facts(3) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline=0)
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)
        with pytest.raises(ValueError):
            Budget(max_facts=0)

    def test_exception_carries_degradation_slots(self):
        exc = BudgetExceeded("boom", violated="deadline")
        assert exc.partial is None
        assert exc.partial_facts is None
        assert exc.statistics is None
        assert exc.phase is None

    def test_as_dict_and_repr(self):
        budget = Budget(deadline=1.0, max_facts=7)
        d = budget.as_dict()
        assert d["deadline"] == 1.0 and d["max_facts"] == 7
        assert "deadline=1.0" in repr(budget)
        assert "unlimited" in repr(Budget())
