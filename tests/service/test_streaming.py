"""Tests for incremental fact-chunk streaming (repro.service.streaming)."""

import json

import pytest

from repro import ExchangeOptions, ExchangeService, StreamingSolution
from repro.mapping import SchemaMapping
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.service import ExchangeRequest, ServiceOverloaded
from repro.service.streaming import FactChunk


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def simple_mapping():
    return SchemaMapping.parse(SRC, TGT, "Emp(x) -> exists y . Manager(x, y)")


def simple_source(rows=10):
    return instance(SRC, {"Emp": [[f"e{i}"] for i in range(rows)]})


class TestStreamingSolution:
    def test_chunks_then_response(self):
        with ExchangeService(simple_mapping()) as service:
            stream = service.stream(
                ExchangeRequest(source=simple_source(10)), chunk_facts=3
            )
            assert isinstance(stream, StreamingSolution)
            chunks = list(stream)
            assert all(isinstance(c, FactChunk) for c in chunks)
            assert [len(c) for c in chunks] == [3, 3, 3, 1]
            assert stream.response is not None
            assert stream.response.status == "complete"
            assert stream.response.facts.size() == 10

    def test_streamed_facts_equal_buffered_result(self):
        source = simple_source(12)
        with ExchangeService(simple_mapping()) as service:
            stream = service.stream(ExchangeRequest(source=source))
            streamed = [fact for chunk in stream for fact in chunk.facts]
            expected = service.exchange(source)
        assert len(streamed) == expected.size()
        assert canonically_equal(stream.response.facts, expected)

    def test_collect_drains(self):
        with ExchangeService(simple_mapping()) as service:
            stream = service.stream(ExchangeRequest(source=simple_source(5)))
            response = stream.collect()
        assert response.complete
        assert response.facts.size() == 5

    def test_chunk_as_dict_round_trip(self):
        with ExchangeService(simple_mapping()) as service:
            stream = service.stream(
                ExchangeRequest(source=simple_source(4)), chunk_facts=2
            )
            chunk = next(iter(stream))
            stream.collect()
        data = chunk.as_dict()
        json.dumps(data)
        assert data["kind"] == "facts"
        assert data["count"] == len(chunk)
        clone = FactChunk.from_dict(data)
        assert len(clone) == len(chunk)

    def test_budgeted_stream_ends_partial_with_token(self):
        options = ExchangeOptions(max_facts=3)
        with ExchangeService(simple_mapping(), options) as service:
            stream = service.stream(ExchangeRequest(source=simple_source(10)))
            list(stream)
        resp = stream.response
        assert resp.status == "partial"
        assert resp.token is not None

    def test_sharded_stream_parallel_workers(self):
        options = ExchangeOptions(workers=2, min_parallel_facts=0)
        source = simple_source(40)
        with ExchangeService(simple_mapping(), options) as service:
            stream = service.stream(ExchangeRequest(source=source))
            chunks = list(stream)
            assert stream.response.complete
            # More than one shard actually streamed.
            assert len({c.shard for c in chunks}) > 1
            expected = service.exchange(source)
        assert canonically_equal(stream.response.facts, expected)

    def test_stream_releases_admission_slot(self):
        with ExchangeService(simple_mapping(), max_in_flight=1) as service:
            stream = service.stream(ExchangeRequest(source=simple_source(4)))
            stream.collect()
            assert service.in_flight == 0
            # A second stream is admittable after the first finishes.
            service.stream(ExchangeRequest(source=simple_source(4))).collect()

    def test_stream_respects_admission_limit(self):
        with ExchangeService(simple_mapping(), max_in_flight=1) as service:
            first = service.stream(ExchangeRequest(source=simple_source(4)))
            with pytest.raises(ServiceOverloaded):
                service.stream(ExchangeRequest(source=simple_source(4)))
            first.collect()

    def test_stream_rejects_mismatched_token(self):
        options = ExchangeOptions(max_facts=2)
        with ExchangeService(simple_mapping(), options) as service:
            partial = service.exchange(simple_source(10))
            with pytest.raises(ValueError):
                service.stream(
                    ExchangeRequest(source=simple_source(3), token=partial.token)
                )

    def test_resume_via_stream(self):
        source = simple_source(10)
        options = ExchangeOptions(max_facts=2)
        with ExchangeService(simple_mapping(), options) as service:
            partial = service.exchange(source)
        with ExchangeService(simple_mapping()) as service:
            stream = service.stream(
                ExchangeRequest(source=source, token=partial.token)
            )
            stream.collect()
            expected = service.exchange(source)
        assert stream.response.complete
        assert canonically_equal(stream.response.facts, expected)
