"""Tests for ExchangeService: budgets, degradation, admission, resumption."""

import time

import pytest

from repro import ExchangeOptions, ExchangeService, PartialSolution
from repro.logic.parser import parse_rule
from repro.mapping import SchemaMapping, universal_solution
from repro.mapping.dependencies import TargetTgd
from repro.obs import collecting
from repro.relational import instance, is_homomorphic, relation, schema
from repro.relational.canonical import canonically_equal
from repro.service import ServiceOverloaded


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def simple_mapping():
    return SchemaMapping.parse(SRC, TGT, "Emp(x) -> exists y . Manager(x, y)")


def simple_source(rows=20):
    return instance(SRC, {"Emp": [[f"e{i}"] for i in range(rows)]})


def target_tgd(text):
    rule = parse_rule(text)
    return TargetTgd(rule.lhs, rule.branches[0][1])


def divergent_mapping():
    """Example-2-style divergence: every manager needs a manager."""
    return SchemaMapping.parse(
        SRC,
        TGT,
        "Emp(x) -> exists y . Manager(x, y)",
        [target_tgd("Manager(e, m) -> exists m2 . Manager(m, m2)")],
    )


def fk_mapping():
    source = schema(relation("E", "n", "d"))
    target = schema(relation("Emp", "n", "d"), relation("Dept", "d"))
    return SchemaMapping.parse(
        source,
        target,
        "E(x, d) -> Emp(x, d)",
        [target_tgd("Emp(x, d) -> Dept(d)")],
    )


class TestFullSolutions:
    def test_unbudgeted_exchange_is_a_plain_instance(self):
        with ExchangeService(simple_mapping()) as service:
            result = service.exchange(simple_source(5))
        assert not isinstance(result, PartialSolution)
        assert result.size() == 5

    def test_budgeted_with_headroom_returns_full_solution(self):
        options = ExchangeOptions(deadline=30.0, max_facts=10_000)
        with ExchangeService(simple_mapping(), options) as service:
            result = service.exchange(simple_source(5))
        assert not isinstance(result, PartialSolution)
        expected = universal_solution(simple_mapping(), simple_source(5))
        assert canonically_equal(result, expected)


class TestDegradation:
    def test_fact_cap_partial_is_subset_of_universal_solution(self):
        source = simple_source(20)
        options = ExchangeOptions(max_facts=5)
        with collecting() as registry:
            with ExchangeService(simple_mapping(), options) as service:
                result = service.exchange(source)
        assert isinstance(result, PartialSolution)
        assert result.violated == "max_facts"
        assert result.is_partial
        assert 1 <= result.facts.size() <= 5
        # Every partial fact is derivable: it maps homomorphically into
        # the full canonical universal solution.
        full = universal_solution(simple_mapping(), source)
        assert is_homomorphic(result.facts, full)
        counters = registry.snapshot()["counters"]
        assert counters["service.degraded"] == 1
        assert counters["service.max_facts_exceeded"] == 1

    def test_deadline_on_divergent_chase_returns_instead_of_hanging(self):
        source = instance(SRC, {"Emp": [["root"]]})
        # max_steps high enough that the deadline, not the step cap, trips.
        options = ExchangeOptions(deadline=0.05, max_steps=10**9)
        started = time.monotonic()
        with collecting() as registry:
            with ExchangeService(divergent_mapping(), options) as service:
                result = service.exchange(source)
        elapsed = time.monotonic() - started
        assert isinstance(result, PartialSolution)
        assert result.violated == "deadline"
        assert elapsed < 5.0  # cooperative checks keep latency near the deadline
        assert result.facts.size() >= 1
        counters = registry.snapshot()["counters"]
        assert counters["service.deadline_exceeded"] == 1

    def test_step_cap_degrades_instead_of_raising(self):
        source = instance(SRC, {"Emp": [["root"]]})
        options = ExchangeOptions(max_steps=25)
        with ExchangeService(divergent_mapping(), options) as service:
            result = service.exchange(source)
        assert isinstance(result, PartialSolution)
        assert result.violated == "max_steps"
        assert result.token.resumable_in_place

    def test_per_request_options_override_service_defaults(self):
        with ExchangeService(simple_mapping()) as service:
            tight = service.exchange(
                simple_source(20), options=ExchangeOptions(max_facts=3)
            )
            loose = service.exchange(simple_source(20))
        assert isinstance(tight, PartialSolution)
        assert not isinstance(loose, PartialSolution)


class TestResumption:
    def test_resume_target_dependency_token_to_completion(self):
        mapping = fk_mapping()
        source = instance(
            mapping.source, {"E": [[f"e{i}", f"d{i}"] for i in range(10)]}
        )
        # st-tgd phase makes 10 Emp facts; the Dept closure trips at 12.
        options = ExchangeOptions(max_facts=12)
        with collecting() as registry:
            with ExchangeService(mapping, options) as service:
                partial = service.exchange(source)
                assert isinstance(partial, PartialSolution)
                assert partial.token.phase == "target_dependencies"
                resumed = service.resume(
                    source, partial.token, options=ExchangeOptions()
                )
        assert not isinstance(resumed, PartialSolution)
        expected = universal_solution(mapping, source)
        assert canonically_equal(resumed, expected)
        counters = registry.snapshot()["counters"]
        assert counters["service.resumptions"] == 1

    def test_resume_rejects_foreign_tokens(self):
        source = simple_source(20)
        other = instance(SRC, {"Emp": [["someone-else"]]})
        with ExchangeService(simple_mapping(), ExchangeOptions(max_facts=3)) as service:
            partial = service.exchange(source)
            assert isinstance(partial, PartialSolution)
            with pytest.raises(ValueError, match="different source"):
                service.resume(other, partial.token)

    def test_resume_from_early_phase_reruns_exchange(self):
        source = simple_source(20)
        with ExchangeService(simple_mapping(), ExchangeOptions(max_facts=3)) as service:
            partial = service.exchange(source)
            assert isinstance(partial, PartialSolution)
            assert not partial.token.resumable_in_place  # st-tgd phase token
            resumed = service.resume(source, partial.token, options=ExchangeOptions())
        assert not isinstance(resumed, PartialSolution)
        assert resumed.size() == 20


class TestAdmissionControl:
    def test_batch_larger_than_capacity_is_rejected_whole(self):
        sources = [simple_source(3) for _ in range(3)]
        with collecting() as registry:
            with ExchangeService(simple_mapping(), max_in_flight=2) as service:
                with pytest.raises(ServiceOverloaded) as excinfo:
                    service.exchange_many(sources)
                assert service.in_flight == 0  # nothing leaked
                # A fitting batch still runs afterwards.
                results = service.exchange_many(sources[:2])
        assert len(results) == 2
        assert excinfo.value.requested == 3
        assert excinfo.value.capacity == 2
        counters = registry.snapshot()["counters"]
        assert counters["service.rejections"] == 1

    def test_max_in_flight_validation(self):
        with pytest.raises(ValueError):
            ExchangeService(simple_mapping(), max_in_flight=0)


class TestLifecycleAndMetrics:
    def test_requests_counter_and_close_idempotent(self):
        with collecting() as registry:
            service = ExchangeService(simple_mapping())
            service.exchange(simple_source(2))
            service.exchange(simple_source(2))
            service.close()
            service.close()
        assert registry.snapshot()["counters"]["service.requests"] == 2

    def test_budget_headroom_histograms_on_success(self):
        options = ExchangeOptions(deadline=30.0, max_facts=1000)
        with collecting() as registry:
            with ExchangeService(simple_mapping(), options) as service:
                service.exchange(simple_source(4))
        histograms = registry.snapshot()["histograms"]
        assert histograms["service.budget.remaining_seconds"]["count"] == 1
        assert histograms["service.budget.remaining_facts"]["min"] >= 996
