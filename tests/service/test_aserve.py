"""Tests for the asyncio HTTP front end (repro.service.aserve).

A real server on an OS-assigned port, a real client over real sockets —
concurrent streamed exchanges, pagination over HTTP, admission control
as 429s, and fair-share under an overloaded tenant.
"""

import asyncio

import pytest

from repro import ExchangeOptions, ExchangeService, TenantQuota
from repro.mapping import SchemaMapping
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.relational.serialization import instance_from_json, instance_to_json
from repro.service.aserve import (
    ExchangeClient,
    ExchangeClientError,
    ExchangeServer,
)


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def simple_mapping():
    return SchemaMapping.parse(SRC, TGT, "Emp(x) -> exists y . Manager(x, y)")


def simple_source(rows=6):
    return instance(SRC, {"Emp": [[f"e{i}"] for i in range(rows)]})


def run(coro):
    return asyncio.run(coro)


async def with_server(service, fn, **server_kwargs):
    server = ExchangeServer(service, host="127.0.0.1", port=0, **server_kwargs)
    await server.start()
    try:
        client = ExchangeClient("127.0.0.1", server.port)
        return await fn(client)
    finally:
        await server.aclose()


class TestHealth:
    def test_health_reports_gate_state(self):
        async def check(client):
            return await client.health()

        with ExchangeService(simple_mapping(), max_in_flight=7) as service:
            body = run(with_server(service, check))
        assert body["status"] == "ok"
        assert body["capacity"] == 7
        assert body["in_flight"] == 0


class TestExchangeOverHttp:
    def test_streamed_exchange(self):
        source = simple_source(8)

        async def go(client):
            return await client.exchange(
                {"source": instance_to_json(source), "stream": True}
            )

        with ExchangeService(simple_mapping()) as service:
            events = run(with_server(service, go))
            expected = service.exchange(source)
        assert events[0]["kind"] == "header"
        facts = [f for e in events if e["kind"] == "facts" for f in e["facts"]]
        assert len(facts) == expected.size()
        summary = events[-1]
        assert summary["kind"] == "summary"
        assert summary["status"] == "complete"
        assert summary["fact_count"] == expected.size()

    def test_chunk_size_respected(self):
        source = simple_source(9)

        async def go(client):
            return await client.exchange(
                {"source": instance_to_json(source), "stream": True}
            )

        with ExchangeService(simple_mapping()) as service:
            events = run(with_server(service, go, chunk_facts=4))
        counts = [e["count"] for e in events if e["kind"] == "facts"]
        assert counts == [4, 4, 1]

    def test_buffered_exchange(self):
        source = simple_source(5)

        async def go(client):
            return await client.exchange(
                {"source": instance_to_json(source), "stream": False}
            )

        with ExchangeService(simple_mapping()) as service:
            events = run(with_server(service, go))
            expected = service.exchange(source)
        body = events[0]
        assert body["status"] == "complete"
        got = instance_from_json(body["facts"])
        assert canonically_equal(got, expected)

    def test_concurrent_streams(self):
        sources = [simple_source(4 + i) for i in range(8)]

        async def go(client):
            return await asyncio.gather(
                *(
                    client.exchange(
                        {
                            "source": instance_to_json(s),
                            "request_id": f"r{i}",
                            "stream": True,
                        }
                    )
                    for i, s in enumerate(sources)
                )
            )

        with ExchangeService(simple_mapping(), max_in_flight=16) as service:
            results = run(with_server(service, go))
        for i, events in enumerate(results):
            assert events[0]["request_id"] == f"r{i}"
            assert events[-1]["status"] == "complete"
            assert events[-1]["fact_count"] == 4 + i

    def test_bad_request_is_400(self):
        async def go(client):
            with pytest.raises(ExchangeClientError) as exc:
                await client.exchange({"nonsense": 1})
            return exc.value

        with ExchangeService(simple_mapping()) as service:
            err = run(with_server(service, go))
        assert err.status == 400


class TestPaginationOverHttp:
    def test_token_resumes_over_http(self):
        source = simple_source(10)

        async def go(client):
            first = await client.exchange(
                {
                    "source": instance_to_json(source),
                    "options": {"max_facts": 3},
                    "stream": True,
                }
            )
            summary = first[-1]
            assert summary["status"] == "partial"
            assert summary["token"] is not None
            second = await client.exchange(
                {
                    "source": instance_to_json(source),
                    "token": summary["token"],
                    "stream": True,
                }
            )
            return first, second

        with ExchangeService(simple_mapping()) as service:
            first, second = run(with_server(service, go))
            expected = service.exchange(source)
        assert second[-1]["status"] == "complete"
        assert second[-1]["fact_count"] == expected.size()

    def test_mismatched_token_is_400(self):
        source = simple_source(10)

        async def go(client):
            first = await client.exchange(
                {
                    "source": instance_to_json(source),
                    "options": {"max_facts": 3},
                    "stream": True,
                }
            )
            token = first[-1]["token"]
            with pytest.raises(ExchangeClientError) as exc:
                await client.exchange(
                    {
                        "source": instance_to_json(simple_source(3)),
                        "token": token,
                        "stream": True,
                    }
                )
            return exc.value

        with ExchangeService(simple_mapping()) as service:
            err = run(with_server(service, go))
        assert err.status == 400


class TestAdmissionOverHttp:
    def test_overload_is_429_with_tenant_state(self):
        quotas = {"capped": TenantQuota(max_in_flight=1)}

        async def go(client):
            service.gate.admit("capped", 1)  # occupy the only slot
            try:
                with pytest.raises(ExchangeClientError) as exc:
                    await client.exchange(
                        {
                            "source": instance_to_json(simple_source(3)),
                            "tenant": "capped",
                            "stream": True,
                        }
                    )
            finally:
                service.gate.release("capped", 1)
            return exc.value

        with ExchangeService(
            simple_mapping(), max_in_flight=8, quotas=quotas
        ) as service:
            err = run(with_server(service, go))
        assert err.status == 429
        body = err.body
        assert body["reason"] == "tenant-cap"
        assert body["tenant"] == "capped"

    def test_fair_share_protects_quiet_tenant_under_flood(self):
        """Acceptance criterion: a tenant with a configured quota gets
        its share even while another tenant floods the service."""
        quotas = {
            "quiet": TenantQuota(weight=1),
            "noisy": TenantQuota(weight=1),
        }

        async def go(client):
            # noisy saturates everything admission will give it.
            noisy_admitted = 0
            while True:
                try:
                    service.gate.admit("noisy", 1)
                    noisy_admitted += 1
                except Exception:
                    break
            try:
                # quiet's guaranteed share still goes through, over HTTP.
                events = await client.exchange(
                    {
                        "source": instance_to_json(simple_source(4)),
                        "tenant": "quiet",
                        "stream": True,
                    }
                )
            finally:
                service.gate.release("noisy", noisy_admitted)
            return noisy_admitted, events

        with ExchangeService(
            simple_mapping(), max_in_flight=4, quotas=quotas
        ) as service:
            noisy_admitted, events = run(with_server(service, go))
        assert noisy_admitted == 2  # held to its guarantee, not the capacity
        assert events[-1]["status"] == "complete"
