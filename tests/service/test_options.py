"""Tests for ExchangeOptions, RetryPolicy, and the completed migration."""

import warnings

import pytest

from repro import ExchangeEngine, ExchangeOptions, RetryPolicy
from repro.mapping import SchemaMapping, chase, universal_solution
from repro.mapping.chase import chase_target_dependencies
from repro.options import DEFAULT_MAX_STEPS
from repro.relational import instance, relation, schema


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def example_mapping():
    return SchemaMapping.parse(SRC, TGT, "Emp(x) -> exists y . Manager(x, y)")


def example_source():
    return instance(SRC, {"Emp": [["Alice"], ["Bob"]]})


class TestExchangeOptions:
    def test_defaults(self):
        opts = ExchangeOptions()
        assert opts.workers is None
        assert opts.max_steps == DEFAULT_MAX_STEPS
        assert not opts.budgeted
        assert not opts.wants_executor
        assert opts.budget() is None

    def test_budgeted_and_wants_executor(self):
        assert ExchangeOptions(deadline=1.0).budgeted
        assert ExchangeOptions(max_facts=10).budgeted
        assert ExchangeOptions(workers=2).wants_executor
        assert ExchangeOptions(cache=8).wants_executor

    def test_budget_is_fresh_per_call(self):
        opts = ExchangeOptions(deadline=1.0, max_facts=5)
        first, second = opts.budget(), opts.budget()
        assert first is not second
        assert first.deadline == 1.0 and first.max_facts == 5

    def test_replace(self):
        opts = ExchangeOptions(workers=2)
        tighter = opts.replace(deadline=0.1)
        assert tighter.workers == 2 and tighter.deadline == 0.1
        assert opts.deadline is None  # frozen original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            ExchangeOptions(workers=0)
        with pytest.raises(ValueError):
            ExchangeOptions(cache=0)
        with pytest.raises(ValueError):
            ExchangeOptions(max_steps=0)
        with pytest.raises(ValueError):
            ExchangeOptions(deadline=0)
        with pytest.raises(ValueError):
            ExchangeOptions(max_facts=0)


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        rng = policy.rng()
        delays = [policy.delay(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_deterministic_with_seed(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        first = [policy.delay(i, policy.rng()) for i in (1, 2, 3)]
        second = [policy.delay(i, policy.rng()) for i in (1, 2, 3)]
        assert first == second
        base = 0.1
        assert base <= first[0] <= base * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestWireFormat:
    """as_dict/from_dict — the JSON face ExchangeOptions shows the service."""

    def test_round_trip_defaults(self):
        opts = ExchangeOptions()
        assert ExchangeOptions.from_dict(opts.as_dict()) == opts

    def test_round_trip_everything_set(self):
        opts = ExchangeOptions(
            workers=2,
            cache=16,
            max_steps=50,
            deadline=1.5,
            max_facts=100,
            backend="sqlite",
            provenance=True,
            min_parallel_facts=0,
        )
        clone = ExchangeOptions.from_dict(opts.as_dict())
        assert clone == opts

    def test_live_cache_serializes_as_capacity(self):
        from repro.exec.cache import ExchangeCache

        opts = ExchangeOptions(cache=ExchangeCache(capacity=7))
        wire = opts.as_dict()
        assert wire["cache"] == 7
        assert ExchangeOptions.from_dict(wire).cache == 7

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            ExchangeOptions.from_dict({"workers": 2, "max_target_steps": 10})

    def test_retry_stays_server_side(self):
        opts = ExchangeOptions(retry=RetryPolicy(max_retries=5))
        assert "retry" not in opts.as_dict()
        # Deserializing resets retry to the receiving side's default —
        # clients cannot dictate server retry behavior over the wire.
        clone = ExchangeOptions.from_dict(opts.as_dict())
        assert clone.retry == ExchangeOptions().retry


class TestMigrationComplete:
    """The pre-1.0 keyword shims are gone: options= is the only spelling."""

    def test_merge_legacy_kwargs_is_removed(self):
        with pytest.raises(ImportError):
            from repro.options import merge_legacy_kwargs  # noqa: F401

    def test_compile_rejects_legacy_workers(self):
        with pytest.raises(TypeError):
            ExchangeEngine.compile(example_mapping(), workers=2)

    def test_compile_options_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = ExchangeEngine.compile(
                example_mapping(), options=ExchangeOptions(workers=2)
            )
        try:
            assert engine.exchange(example_source()).size() == 2
        finally:
            engine.close()

    def test_chase_rejects_legacy_max_target_steps(self):
        with pytest.raises(TypeError):
            chase(example_mapping(), example_source(), max_target_steps=25)

    def test_chase_options_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = chase(
                example_mapping(),
                example_source(),
                options=ExchangeOptions(max_steps=25),
            )
            universal_solution(
                example_mapping(),
                example_source(),
                options=ExchangeOptions(max_steps=25),
            )
        assert result.solution.size() == 2

    def test_chase_target_dependencies_rejects_legacy_max_steps(self):
        target = instance(TGT, {"Manager": [["a", "b"]]})
        with pytest.raises(TypeError):
            chase_target_dependencies(target, [], max_steps=10)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            chase_target_dependencies(
                target, [], options=ExchangeOptions(max_steps=10)
            )
