"""CLI smoke tests: serve-bench and the shared budget flags."""

import json

import pytest

from repro.cli import DEGRADED_EXIT, main
from repro.relational import instance, relation, schema
from repro.relational.serialization import dumps_instance, schema_to_json


@pytest.fixture
def files(tmp_path):
    source = schema(relation("Emp", "name"))
    target = schema(relation("Manager", "emp", "mgr"))
    schemas = tmp_path / "schemas.json"
    schemas.write_text(
        json.dumps({"source": schema_to_json(source), "target": schema_to_json(target)})
    )
    mapping = tmp_path / "mapping.tgd"
    mapping.write_text("Emp(x) -> exists y . Manager(x, y)\n")
    data = tmp_path / "source.json"
    data.write_text(
        dumps_instance(instance(source, {"Emp": [[f"e{i}"] for i in range(20)]}))
    )
    return {"schemas": str(schemas), "mapping": str(mapping), "data": str(data)}


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr()


class TestBudgetFlags:
    def test_exchange_max_facts_degrades_with_exit_3(self, files, capsys):
        code, out = run(
            capsys,
            "exchange",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--data", files["data"],
            "--max-facts", "5",
        )
        assert code == DEGRADED_EXIT
        assert "max_facts" in out.err
        assert "Manager" in out.out  # partial facts still emitted

    def test_chase_max_facts_degrades_with_exit_3(self, files, capsys):
        code, out = run(
            capsys,
            "chase",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--data", files["data"],
            "--max-facts", "5",
        )
        assert code == DEGRADED_EXIT
        assert "max_facts" in out.err

    def test_unbudgeted_exchange_still_exits_0(self, files, capsys):
        code, out = run(
            capsys,
            "exchange",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--data", files["data"],
        )
        assert code == 0
        assert out.err == ""


class TestServeBench:
    def test_clean_run_reports_all_completed(self, files, capsys):
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--requests", "4",
            "--json",
        )
        assert code == 0
        report = json.loads(out.out)
        assert report["requests"] == 4
        assert report["completed"] == 4
        assert report["errors"] == 0
        assert report["clean_shutdown"] is True
        assert report["degraded"] == {}

    def test_fault_injected_run_counts_retries(self, files, capsys):
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--requests", "3",
            "--workers", "2",
            "--min-parallel-facts", "0",
            "--inject-pool-crashes", "2",
            "--json",
        )
        assert code == 0
        report = json.loads(out.out)
        assert report["completed"] == 3
        assert report["retries"] == 2
        assert report["pool_failures"] == 2
        assert report["clean_shutdown"] is True

    def test_deadline_degradation_is_reported(self, files, capsys):
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--requests", "2",
            "--deadline", "0.05",
            "--inject-slow-chase", "0.2",
            "--json",
        )
        assert code == 0
        report = json.loads(out.out)
        assert report["completed"] == 2  # degraded answers still complete

    def test_uses_data_file_when_given(self, files, capsys):
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--data", files["data"],
            "--requests", "2",
            "--json",
        )
        assert code == 0
        assert json.loads(out.out)["completed"] == 2

    def test_human_readable_report(self, files, capsys):
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--requests", "1",
        )
        assert code == 0
        assert "serve-bench:" in out.out
        assert "clean_shutdown: True" in out.out


class TestLatencyReport:
    def test_percentiles_and_throughput_keys(self, files, capsys):
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--requests", "5",
            "--json",
        )
        assert code == 0
        report = json.loads(out.out)
        p50, p95, p99 = (
            report["latency_p50_ms"],
            report["latency_p95_ms"],
            report["latency_p99_ms"],
        )
        assert 0 < p50 <= p95 <= p99
        assert report["throughput_rps"] > 0

    def test_bench_out_writes_report_file(self, files, capsys, tmp_path):
        out_file = tmp_path / "BENCH_service.json"
        code, out = run(
            capsys,
            "serve-bench",
            "--schemas", files["schemas"],
            "--mapping", files["mapping"],
            "--requests", "3",
            "--json",
            "--bench-out", str(out_file),
        )
        assert code == 0
        written = json.loads(out_file.read_text())
        assert written == json.loads(out.out)
        assert "latency_p99_ms" in written and "throughput_rps" in written
