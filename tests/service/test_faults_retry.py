"""Fault-injection tests: retries, circuit breaker, degraded-but-correct."""

import pytest

from repro import ExchangeOptions, ExchangeService, PartialSolution, RetryPolicy
from repro.exec.retry import CircuitBreaker
from repro.mapping import SchemaMapping, universal_solution
from repro.obs import collecting
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.service.faults import FaultPlan, fault_injection


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))


def join_mapping():
    return SchemaMapping.parse(
        SRC, TGT, "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"
    )


def clustered_source(employees=12, depts=4):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


def fast_retry(**overrides):
    """Milliseconds-scale deterministic backoff so tests stay quick."""
    defaults = dict(max_retries=3, base_delay=0.001, max_delay=0.01, seed=1)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetry:
    def test_two_pool_crashes_then_success_matches_serial_chase(self):
        source = clustered_source()
        options = ExchangeOptions(workers=2, retry=fast_retry(), min_parallel_facts=0)
        with collecting() as registry:
            with fault_injection(FaultPlan.pool_crashes(2)):
                with ExchangeService(join_mapping(), options) as service:
                    result = service.exchange(source)
        assert not isinstance(result, PartialSolution)
        expected = universal_solution(join_mapping(), source)
        assert canonically_equal(result, expected)
        counters = registry.snapshot()["counters"]
        assert counters["service.retries"] == 2
        assert counters["exchange.pool.failures"] == 2
        assert counters["exchange.pool.failures.BrokenProcessPool"] == 2

    def test_spawn_failures_retry_then_succeed(self):
        source = clustered_source()
        options = ExchangeOptions(workers=2, retry=fast_retry(), min_parallel_facts=0)
        with collecting() as registry:
            with fault_injection(FaultPlan.pool_spawn_failures(2)):
                with ExchangeService(join_mapping(), options) as service:
                    result = service.exchange(source)
        assert canonically_equal(result, universal_solution(join_mapping(), source))
        counters = registry.snapshot()["counters"]
        assert counters["service.retries"] == 2
        assert counters["exchange.pool.failures.OSError"] == 2

    def test_retries_exhausted_falls_back_to_serial(self):
        source = clustered_source()
        options = ExchangeOptions(
            workers=2, retry=fast_retry(max_retries=1), min_parallel_facts=0
        )
        with collecting() as registry:
            with fault_injection(FaultPlan.pool_crashes(10)):
                with ExchangeService(join_mapping(), options) as service:
                    result = service.exchange(source)
        assert canonically_equal(result, universal_solution(join_mapping(), source))
        counters = registry.snapshot()["counters"]
        assert counters["service.retries"] == 1  # one retry, then serial
        assert counters["exchange.serial_runs"] >= 1

    def test_zero_retries_restores_one_shot_fallback(self):
        source = clustered_source()
        options = ExchangeOptions(
            workers=2, retry=fast_retry(max_retries=0), min_parallel_facts=0
        )
        with collecting() as registry:
            with fault_injection(FaultPlan.pool_crashes(1)):
                with ExchangeService(join_mapping(), options) as service:
                    result = service.exchange(source)
        assert canonically_equal(result, universal_solution(join_mapping(), source))
        counters = registry.snapshot()["counters"]
        assert "service.retries" not in counters
        assert counters["exchange.serial_runs"] >= 1


class TestBreaker:
    def test_breaker_opens_and_pins_serial(self):
        source = clustered_source(employees=6, depts=2)
        breaker = CircuitBreaker(failure_threshold=2, reset_after=3600.0)
        options = ExchangeOptions(
            workers=2, retry=fast_retry(max_retries=0), min_parallel_facts=0
        )
        with collecting() as registry:
            with fault_injection(FaultPlan.pool_crashes(10)):
                with ExchangeService(
                    join_mapping(), options, breaker=breaker
                ) as service:
                    # max_retries=0: each request records one pool failure.
                    first = service.exchange(source)
                    assert not breaker.is_open
                    second = service.exchange(source)
                    assert breaker.is_open  # 2 consecutive failures tripped it
                    third = service.exchange(source)  # short-circuits to serial
        expected = universal_solution(join_mapping(), source)
        for result in (first, second, third):
            assert canonically_equal(result, expected)
        counters = registry.snapshot()["counters"]
        assert counters["service.breaker_open"] == 1
        assert counters["exchange.breaker.short_circuits"] >= 1
        # An open breaker stops pool attempts: fewer failures than faults.
        assert counters["exchange.pool.failures"] == 2

    def test_breaker_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, reset_after=10.0, clock=lambda: clock[0])
        assert breaker.state == "closed"
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # crosses the threshold
        assert breaker.is_open and breaker.open_count == 1
        clock[0] = 11.0
        assert breaker.state == "half_open"
        assert not breaker.is_open  # half-open allows one probe
        assert breaker.record_failure() is True  # probe failed: re-open
        assert breaker.open_count == 2
        clock[0] = 22.0
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_breaker_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after=-1.0)


class TestSlowChase:
    def test_slow_chase_trips_deadline_deterministically(self):
        # The chase.step seam lives in the target-dependency fixpoint, so
        # the mapping needs a target tgd for the fault to have a site.
        from repro.logic.parser import parse_rule
        from repro.mapping.dependencies import TargetTgd

        source_schema = schema(relation("E", "n", "d"))
        target_schema = schema(relation("Emp", "n", "d"), relation("Dept", "d"))
        fk_rule = parse_rule("Emp(x, d) -> Dept(d)")
        mapping = SchemaMapping.parse(
            source_schema,
            target_schema,
            "E(x, d) -> Emp(x, d)",
            [TargetTgd(fk_rule.lhs, fk_rule.branches[0][1])],
        )
        source = instance(
            source_schema, {"E": [[f"e{i}", f"d{i}"] for i in range(12)]}
        )
        options = ExchangeOptions(deadline=0.05)
        with fault_injection(FaultPlan.slow_chase(0.2, steps=5)):
            with ExchangeService(mapping, options) as service:
                result = service.exchange(source)
        assert isinstance(result, PartialSolution)
        assert result.violated == "deadline"

    def test_plan_accounting(self):
        plan = FaultPlan.pool_crashes(2).merged_with(FaultPlan.pool_spawn_failures(1))
        with fault_injection(plan) as active:
            assert active.hits("pool.map") == 0
        assert not plan.fired  # nothing ran inside the block
