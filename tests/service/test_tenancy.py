"""Tests for per-tenant quotas and weighted fair-share admission."""

import threading

import pytest

from repro import ExchangeOptions, ExchangeService, TenantQuota
from repro.mapping import SchemaMapping
from repro.relational import instance, relation, schema
from repro.service import ServiceOverloaded
from repro.service.tenancy import (
    DEFAULT_TENANT,
    FairShareGate,
    quotas_from_json,
)


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def simple_mapping():
    return SchemaMapping.parse(SRC, TGT, "Emp(x) -> exists y . Manager(x, y)")


def simple_source(rows=5):
    return instance(SRC, {"Emp": [[f"e{i}"] for i in range(rows)]})


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(weight=0)
        with pytest.raises(ValueError):
            TenantQuota(weight=-1.0)
        with pytest.raises(ValueError):
            TenantQuota(max_in_flight=0)

    def test_round_trip(self):
        quota = TenantQuota(weight=2.5, max_in_flight=8)
        assert TenantQuota.from_dict(quota.as_dict()) == quota

    def test_quotas_from_json(self):
        quotas = quotas_from_json(
            {"gold": {"weight": 3}, "bronze": {"weight": 1, "max_in_flight": 2}}
        )
        assert quotas["gold"].weight == 3
        assert quotas["bronze"].max_in_flight == 2

    def test_quotas_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            quotas_from_json({"t": "not-a-quota"})
        with pytest.raises(ValueError):
            quotas_from_json("nope")


class TestFairShareGate:
    def test_capacity_enforced(self):
        gate = FairShareGate(2)
        gate.admit("a", 1)
        gate.admit("b", 1)
        with pytest.raises(ServiceOverloaded) as exc:
            gate.admit("c", 1)
        assert exc.value.reason == "capacity"
        gate.release("a", 1)
        gate.admit("c", 1)  # freed slot is admittable again

    def test_tenant_hard_cap(self):
        gate = FairShareGate(10, {"capped": TenantQuota(max_in_flight=2)})
        gate.admit("capped", 2)
        with pytest.raises(ServiceOverloaded) as exc:
            gate.admit("capped", 1)
        assert exc.value.reason == "tenant-cap"
        assert exc.value.tenant == "capped"
        # Other tenants are unaffected by one tenant's cap.
        gate.admit("other", 1)

    def test_guaranteed_share_is_weighted(self):
        gate = FairShareGate(
            8, {"gold": TenantQuota(weight=3), "bronze": TenantQuota(weight=1)}
        )
        assert gate.guaranteed_share("gold") == 6
        assert gate.guaranteed_share("bronze") == 2
        assert gate.guaranteed_share("unknown") == 0

    def test_noisy_neighbor_cannot_starve_configured_tenant(self):
        """The acceptance-criteria scenario: a tenant with a quota gets
        its share even when another tenant floods the service."""
        gate = FairShareGate(
            4, {"quiet": TenantQuota(weight=1), "noisy": TenantQuota(weight=1)}
        )
        # noisy grabs everything it can: its guarantee (2) plus whatever
        # free pool the reserve rule allows (none — quiet's guarantee of
        # 2 is protected).
        admitted = 0
        for _ in range(4):
            try:
                gate.admit("noisy", 1)
                admitted += 1
            except ServiceOverloaded:
                break
        assert admitted == 2
        # quiet still gets its full guaranteed share.
        gate.admit("quiet", 1)
        gate.admit("quiet", 1)

    def test_unconfigured_tenants_share_leftover_pool(self):
        # Capacity 7 with guarantees 3 + 3 leaves a free pool of 1.
        gate = FairShareGate(
            7, {"gold": TenantQuota(weight=1), "silver": TenantQuota(weight=1)}
        )
        gate.admit("anon", 1)  # fits in the leftover slot
        with pytest.raises(ServiceOverloaded) as exc:
            gate.admit("anon", 1)  # would eat into a protected guarantee
        assert exc.value.reason == "fair-share"

    def test_guarantees_summing_to_capacity_lock_out_strangers(self):
        gate = FairShareGate(
            6, {"gold": TenantQuota(weight=1), "silver": TenantQuota(weight=1)}
        )
        # Guarantees: 3 + 3 = 6 = capacity — the configured tenants
        # split the whole service, by design.
        with pytest.raises(ServiceOverloaded) as exc:
            gate.admit("anon", 1)
        assert exc.value.reason == "fair-share"

    def test_snapshot(self):
        gate = FairShareGate(
            4, {"t": TenantQuota(weight=1), "u": TenantQuota(weight=1)}
        )
        gate.admit("t", 1)
        gate.admit("u", 1)
        snap = gate.snapshot()
        assert snap["capacity"] == 4
        assert snap["in_flight"] == 2
        assert snap["tenants"]["t"]["in_flight"] == 1
        assert snap["tenants"]["t"]["guaranteed_share"] == 2
        assert snap["tenants"]["u"]["in_flight"] == 1

    def test_thread_safety_under_churn(self):
        gate = FairShareGate(8)
        errors = []

        def churn(tenant):
            for _ in range(200):
                try:
                    gate.admit(tenant, 1)
                except ServiceOverloaded:
                    continue
                gate.release(tenant, 1)

        threads = [
            threading.Thread(target=churn, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gate.in_flight == 0, errors


class TestServiceOverloadedPayload:
    def test_as_dict_carries_tenant_state(self):
        gate = FairShareGate(1, {"t": TenantQuota(max_in_flight=1)})
        gate.admit("t", 1)
        with pytest.raises(ServiceOverloaded) as exc:
            gate.admit("t", 1)
        data = exc.value.as_dict()
        assert data["kind"] == "overloaded"
        assert data["reason"] == "tenant-cap"
        assert data["tenant"] == "t"
        assert data["capacity"] == 1
        assert data["tenant_in_flight"] == 1


class TestServiceIntegration:
    def test_service_accepts_quotas(self):
        quotas = {"vip": TenantQuota(weight=2), "std": TenantQuota(weight=1)}
        with ExchangeService(
            simple_mapping(), max_in_flight=6, quotas=quotas
        ) as service:
            assert service.gate.guaranteed_share("vip") == 4
            result = service.exchange(simple_source(), tenant="vip")
            assert result.size() == 5
            assert service.in_flight == 0

    def test_default_tenant_used_when_unspecified(self):
        with ExchangeService(simple_mapping(), max_in_flight=2) as service:
            service.exchange(simple_source())
            snap = service.gate.snapshot()
            assert DEFAULT_TENANT in snap["tenants"] or not snap["tenants"]
