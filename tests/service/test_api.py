"""Tests for the request/response wire objects (repro.service.api)."""

import json

import pytest

from repro import (
    ExchangeOptions,
    ExchangeRequest,
    ExchangeResponse,
    ExchangeService,
)
from repro.mapping import SchemaMapping
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.service.api import PartialSolution


SRC = schema(relation("Emp", "name"))
TGT = schema(relation("Manager", "emp", "mgr"))


def simple_mapping():
    return SchemaMapping.parse(SRC, TGT, "Emp(x) -> exists y . Manager(x, y)")


def simple_source(rows=4):
    return instance(SRC, {"Emp": [[f"e{i}"] for i in range(rows)]})


class TestExchangeRequest:
    def test_defaults(self):
        req = ExchangeRequest(source=simple_source())
        assert req.tenant == "default"
        assert req.options is None
        assert req.token is None
        assert not req.is_resume

    def test_wire_round_trip(self):
        req = ExchangeRequest(
            source=simple_source(),
            tenant="acme",
            options=ExchangeOptions(max_facts=10),
            request_id="r-1",
        )
        data = req.as_dict()
        json.dumps(data)  # JSON-clean
        clone = ExchangeRequest.from_dict(data)
        assert clone.tenant == "acme"
        assert clone.request_id == "r-1"
        assert clone.options.max_facts == 10
        assert canonically_equal(clone.source, req.source)

    def test_from_dict_rejects_unknown_keys(self):
        req = ExchangeRequest(source=simple_source())
        data = req.as_dict()
        data["surprise"] = True
        with pytest.raises(ValueError, match="unknown"):
            ExchangeRequest.from_dict(data)

    def test_from_dict_requires_source(self):
        with pytest.raises(ValueError):
            ExchangeRequest.from_dict({"tenant": "t"})


class TestExchangeResponse:
    def test_complete_response(self):
        with ExchangeService(simple_mapping()) as service:
            resp = service.request(ExchangeRequest(source=simple_source()))
        assert isinstance(resp, ExchangeResponse)
        assert resp.status == "complete"
        assert resp.complete
        assert resp.token is None
        assert resp.facts.size() == 4
        assert resp.elapsed_seconds >= 0

    def test_partial_response_carries_token(self):
        options = ExchangeOptions(max_facts=2)
        with ExchangeService(simple_mapping(), options) as service:
            resp = service.request(
                ExchangeRequest(source=simple_source(10), tenant="t")
            )
        assert resp.status == "partial"
        assert not resp.complete
        assert resp.token is not None
        assert resp.tenant == "t"
        assert isinstance(resp.result, PartialSolution)

    def test_as_dict_shapes(self):
        with ExchangeService(simple_mapping()) as service:
            resp = service.request(
                ExchangeRequest(source=simple_source(), request_id="req-9")
            )
        data = resp.as_dict()
        json.dumps(data)
        assert data["status"] == "complete"
        assert data["request_id"] == "req-9"
        assert data["fact_count"] == 4
        assert "facts" in data
        slim = resp.as_dict(include_facts=False)
        assert "facts" not in slim

    def test_repr_is_compact(self):
        with ExchangeService(simple_mapping()) as service:
            resp = service.request(ExchangeRequest(source=simple_source(50)))
        assert len(repr(resp)) < 200


class TestRequestDrivenService:
    def test_request_resume_round_trip(self):
        options = ExchangeOptions(max_facts=2)
        source = simple_source(10)
        with ExchangeService(simple_mapping(), options) as service:
            first = service.request(ExchangeRequest(source=source))
        assert first.status == "partial"
        with ExchangeService(simple_mapping()) as service:
            second = service.request(
                ExchangeRequest(source=source, token=first.token)
            )
        assert second.status == "complete"
        with ExchangeService(simple_mapping()) as service:
            expected = service.exchange(source)
        assert canonically_equal(second.facts, expected)

    def test_request_token_mismatch_rejected(self):
        options = ExchangeOptions(max_facts=2)
        with ExchangeService(simple_mapping(), options) as service:
            first = service.request(ExchangeRequest(source=simple_source(10)))
            with pytest.raises(ValueError):
                service.request(
                    ExchangeRequest(source=simple_source(3), token=first.token)
                )
