"""Tests for the ``repro optimize`` subcommand (text, JSON, --apply, specs)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.mapping import SchemaMapping
from repro.relational import relation, schema, schema_to_json


def run(argv):
    return main([str(a) for a in argv])


def write_schemas(path, source, target):
    path.write_text(
        json.dumps(
            {"source": schema_to_json(source), "target": schema_to_json(target)}
        )
    )


@pytest.fixture
def redundant_files(tmp_path):
    source = schema(relation("S", "a", "b"))
    target = schema(relation("T", "a", "b"))
    schemas = tmp_path / "schemas.json"
    write_schemas(schemas, source, target)
    mapping = tmp_path / "mapping.tgd"
    mapping.write_text("S(x, y) -> T(x, y)\nS(p, q) -> T(p, q)\n")
    return schemas, mapping, source, target


@pytest.fixture
def pipeline_spec(tmp_path):
    A = schema(relation("S", "a", "b"))
    B = schema(relation("T", "a", "b"))
    C = schema(relation("U", "a", "b"))
    write_schemas(tmp_path / "s1.json", A, B)
    write_schemas(tmp_path / "s2.json", B, C)
    (tmp_path / "m1.tgd").write_text("S(x, y) -> T(x, y)\n")
    (tmp_path / "m2.tgd").write_text("T(x, y) -> U(x, y)\n")
    spec = tmp_path / "pipe.json"
    spec.write_text(
        json.dumps(
            {
                "stages": [
                    {"schemas": "s1.json", "mapping": "m1.tgd"},
                    {"schemas": "s2.json", "mapping": "m2.tgd"},
                ]
            }
        )
    )
    return spec, A, C


class TestSingleMapping:
    def test_text_report(self, redundant_files, capsys):
        schemas, mapping, *_ = redundant_files
        assert run(["optimize", "--schemas", schemas, "--mapping", mapping]) == 0
        out = capsys.readouterr().out
        assert "rewrite plan (mapping)" in out
        assert "tgds: 2 -> 1" in out
        assert "prune-tgd" in out and "[verified]" in out

    def test_json_report_parses(self, redundant_files, capsys):
        schemas, mapping, *_ = redundant_files
        assert (
            run(
                ["optimize", "--schemas", schemas, "--mapping", mapping, "--json"]
            )
            == 0
        )
        plan = json.loads(capsys.readouterr().out)
        assert plan["changed"] is True
        assert plan["original"]["tgds"] == [2]
        assert plan["optimized"]["tgds"] == [1]
        assert plan["verification"]["equivalent"] is True

    def test_apply_writes_reparseable_mapping(self, redundant_files, tmp_path):
        schemas, mapping, source, target = redundant_files
        out = tmp_path / "optimized.tgd"
        assert (
            run(
                [
                    "optimize",
                    "--schemas",
                    schemas,
                    "--mapping",
                    mapping,
                    "--apply",
                    out,
                ]
            )
            == 0
        )
        reparsed = SchemaMapping.parse(source, target, out.read_text())
        assert len(reparsed.tgds) == 1

    def test_no_verify_skips_the_cross_check(self, redundant_files, capsys):
        schemas, mapping, *_ = redundant_files
        assert (
            run(
                [
                    "optimize",
                    "--schemas",
                    schemas,
                    "--mapping",
                    mapping,
                    "--no-verify",
                ]
            )
            == 0
        )
        assert "verification: skipped" in capsys.readouterr().out

    def test_missing_inputs_exit_2(self):
        with pytest.raises(SystemExit) as err:
            run(["optimize"])
        assert err.value.code == 2

    def test_trace_json_records_optimize_spans(self, redundant_files, tmp_path):
        schemas, mapping, *_ = redundant_files
        trace = tmp_path / "trace.jsonl"
        assert (
            run(
                [
                    "optimize",
                    "--schemas",
                    schemas,
                    "--mapping",
                    mapping,
                    "--trace-json",
                    trace,
                ]
            )
            == 0
        )
        names = {
            json.loads(line)["name"] for line in trace.read_text().splitlines()
        }
        assert "optimize.mapping" in names
        assert "optimize.prune" in names
        assert "optimize.verify" in names


class TestPipeline:
    def test_pipeline_collapses(self, pipeline_spec, capsys):
        spec, *_ = pipeline_spec
        assert run(["optimize", "--pipeline", spec]) == 0
        out = capsys.readouterr().out
        assert "rewrite plan (pipeline)" in out
        assert "stages: 2 -> 1" in out
        assert "collapse-stages" in out
        assert "RA612" in out  # the plan carries the analysis diagnostics

    def test_pipeline_json(self, pipeline_spec, capsys):
        spec, *_ = pipeline_spec
        assert run(["optimize", "--pipeline", spec, "--json"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["optimized"]["stages"] == 1
        assert any(d["code"] == "RA612" for d in plan["diagnostics"])

    def test_pipeline_apply(self, pipeline_spec, tmp_path, capsys):
        spec, A, C = pipeline_spec
        out = tmp_path / "collapsed.tgd"
        assert run(["optimize", "--pipeline", spec, "--apply", out]) == 0
        reparsed = SchemaMapping.parse(A, C, out.read_text())
        assert len(reparsed.tgds) == 1

    def test_pipeline_conflicts_with_single_mapping_flags(self, pipeline_spec):
        spec, *_ = pipeline_spec
        with pytest.raises(SystemExit) as err:
            run(["optimize", "--pipeline", spec, "--schemas", "x.json"])
        assert err.value.code == 2

    def test_malformed_spec_exits_2(self, tmp_path):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"stages": []}))
        with pytest.raises(SystemExit) as err:
            run(["optimize", "--pipeline", spec])
        assert err.value.code == 2


class TestLintFilters:
    @pytest.fixture
    def lint_files(self, tmp_path):
        source = schema(relation("S", "a", "b"))
        target = schema(relation("T", "a", "b"))
        schemas = tmp_path / "schemas.json"
        write_schemas(schemas, source, target)
        mapping = tmp_path / "mapping.tgd"
        mapping.write_text("S(x, y) -> T(x, y)\nS(p, q) -> T(p, q)\n")
        return schemas, mapping

    def test_select_narrows_to_algebra_codes(self, lint_files, capsys):
        schemas, mapping = lint_files
        code = run(
            [
                "lint",
                "--schemas",
                schemas,
                "--mapping",
                mapping,
                "--select",
                "RA6",
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        found = {d["code"] for d in report["diagnostics"]}
        assert found == {"RA601"}
        assert code == 1  # RA601 is a warning

    def test_ignore_suppresses_algebra_codes(self, lint_files, capsys):
        schemas, mapping = lint_files
        run(
            [
                "lint",
                "--schemas",
                schemas,
                "--mapping",
                mapping,
                "--ignore",
                "RA6",
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert not any(
            d["code"].startswith("RA6") for d in report["diagnostics"]
        )

    def test_bad_filter_pattern_exits_2(self, lint_files):
        schemas, mapping = lint_files
        with pytest.raises(SystemExit) as err:
            run(
                [
                    "lint",
                    "--schemas",
                    schemas,
                    "--mapping",
                    mapping,
                    "--select",
                    "bogus",
                ]
            )
        assert err.value.code == 2

    def test_select_filters_parse_diagnostics_too(self, tmp_path, capsys):
        source = schema(relation("S", "a", "b"))
        target = schema(relation("T", "a", "b"))
        schemas = tmp_path / "schemas.json"
        write_schemas(schemas, source, target)
        mapping = tmp_path / "mapping.tgd"
        mapping.write_text("this is not a tgd\n")
        code = run(
            [
                "lint",
                "--schemas",
                schemas,
                "--mapping",
                mapping,
                "--select",
                "RA3",
                "--json",
            ]
        )
        report = json.loads(capsys.readouterr().out)
        assert not any(d["code"] == "RA000" for d in report["diagnostics"])
        assert code == 0  # the RA000 error was deselected
