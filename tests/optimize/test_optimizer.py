"""Tests for the mapping/pipeline optimizer and its chase verification.

The acceptance bar: every rewrite the optimizer suggests ships with a
check that the rewritten mapping's chase is canonically equal (or
homomorphically equivalent) to the original's on generated instances —
including mappings with target constraints.
"""

from random import Random

import pytest

import repro.optimize.optimizer as optimizer_module
from repro.logic.parser import parse_rule
from repro.mapping import SchemaMapping, StTgd, chase, universal_solution
from repro.mapping.dependencies import target_dependency_from_rule
from repro.optimize import optimize_mapping, optimize_pipeline, pipeline_cost
from repro.relational import (
    canonically_equal,
    homomorphically_equivalent,
    relation,
    schema,
)
from repro.stats import Statistics
from repro.workloads.generators import random_instance


A = schema(relation("S", "a", "b"))
B = schema(relation("T", "a", "b"), relation("TRef", "a", "b"))
C = schema(relation("U", "a", "b"))


def dep(text):
    return target_dependency_from_rule(parse_rule(text))


def sm(source, target, *tgd_texts, deps=()):
    return SchemaMapping(
        source, target, [StTgd.parse(t) for t in tgd_texts], deps
    )


def assert_chase_equivalent(original_stages, optimized_stages, seeds=(0, 1, 2)):
    """The acceptance-criteria oracle: chase both pipelines end to end."""

    def run(stages, source):
        current = source
        for stage in stages:
            current = universal_solution(stage, current.cast(stage.source))
        return current

    for seed in seeds:
        source = random_instance(
            original_stages[0].source, Random(seed), rows_per_relation=5
        )
        expected = run(original_stages, source)
        actual = run(optimized_stages, source)
        assert canonically_equal(expected, actual) or homomorphically_equivalent(
            expected, actual
        )


class TestOptimizeMapping:
    def test_prunes_redundant_tgds_and_verifies(self):
        m = sm(
            A,
            C,
            "S(x, y) -> U(x, y)",
            "S(p, q) -> U(p, q)",
            "S(x, y) -> exists z . U(x, z)",
        )
        plan = optimize_mapping(m)
        assert plan.changed
        (stage,) = plan.optimized
        assert len(stage.tgds) == 1
        assert plan.verification["equivalent"] is True
        prunes = [a for a in plan.actions if a.kind == "prune-tgd"]
        assert len(prunes) == 2 and all(a.verified for a in prunes)
        assert_chase_equivalent(plan.original, plan.optimized)

    def test_prune_with_target_constraints(self):
        m = sm(
            A,
            B,
            "S(x, y) -> T(x, y)",
            "S(x, y) -> exists z . TRef(x, z)",
            deps=[dep("T(u, v) -> TRef(u, v)")],
        )
        plan = optimize_mapping(m)
        assert plan.changed
        assert len(plan.optimized[0].tgds) == 1
        assert plan.optimized[0].target_dependencies == m.target_dependencies
        assert plan.verification["equivalent"] is True

        def run(stage, source):
            return chase(stage, source).solution

        for seed in (0, 1, 2):
            source = random_instance(A, Random(seed), rows_per_relation=5)
            expected = run(m, source)
            actual = run(plan.optimized[0], source)
            assert canonically_equal(
                expected, actual
            ) or homomorphically_equivalent(expected, actual)

    def test_clean_mapping_is_unchanged(self):
        m = sm(A, C, "S(x, y) -> U(x, y)")
        plan = optimize_mapping(m)
        assert not plan.changed
        assert plan.optimized == plan.original
        assert plan.verification["checked"] == 0

    def test_undecidable_mapping_is_skipped_not_broken(self):
        m = sm(
            A,
            B,
            "S(x, y) -> T(x, y)",
            "S(p, q) -> T(p, q)",
            deps=[dep("T(u, v) -> exists w . T(v, w)")],
        )
        plan = optimize_mapping(m)
        assert not plan.changed
        (skip,) = [a for a in plan.actions if a.kind == "skip-prune"]
        assert skip.data["reason"] == "not-weakly-acyclic"

    def test_no_verify_leaves_actions_unverified(self):
        m = sm(A, C, "S(x, y) -> U(x, y)", "S(p, q) -> U(p, q)")
        plan = optimize_mapping(m, verify=False)
        assert plan.changed
        assert plan.verification["checked"] == 0
        assert all(a.verified is None for a in plan.actions)

    def test_refuted_rewrite_is_reverted(self, monkeypatch):
        # Force the implication test to lie: claim the non-redundant
        # second tgd is implied, and check the chase cross-check catches
        # it and reverts the rewrite.
        m = sm(A, C, "S(x, y) -> U(x, y)", "S(x, y) -> U(y, x)")
        lying = m.__class__(
            m.source, m.target, [m.tgds[0]], m.target_dependencies
        )
        monkeypatch.setattr(
            optimizer_module,
            "prune_redundant",
            lambda mapping, max_steps: (lying, [1]),
        )
        plan = optimize_mapping(m)
        assert plan.optimized == plan.original  # reverted
        assert plan.verification["equivalent"] is False
        assert [a.kind for a in plan.actions][-1] == "revert"
        (pruned,) = [a for a in plan.actions if a.kind == "prune-tgd"]
        assert pruned.verified is False
        assert not plan.changed


class TestOptimizePipeline:
    def test_collapses_and_verifies(self):
        mid = schema(relation("T", "a", "b"))
        m1 = sm(A, mid, "S(x, y) -> T(x, y)")
        m2 = sm(mid, C, "T(x, y) -> U(x, y)")
        plan = optimize_pipeline([m1, m2])
        assert len(plan.optimized) == 1
        assert plan.verification["equivalent"] is True
        (collapse,) = [a for a in plan.actions if a.kind == "collapse-stages"]
        assert collapse.verified is True
        assert_chase_equivalent(plan.original, plan.optimized)

    def test_collapse_reduces_estimated_cost(self):
        mid = schema(relation("T", "a", "b"))
        m1 = sm(A, mid, "S(x, y) -> T(x, y)")
        m2 = sm(mid, C, "T(x, y) -> U(x, y)")
        stats = Statistics.assumed(A)
        plan = optimize_pipeline([m1, m2], stats)
        assert plan.cost_after < plan.cost_before
        total_before, per_stage = pipeline_cost([m1, m2], stats)
        assert plan.cost_before == total_before
        assert len(per_stage) == 2

    def test_obstructed_stage_is_kept(self):
        emp = schema(relation("Emp", "name"))
        mgr = schema(relation("Manager", "emp", "mgr"))
        slf = schema(relation("SelfMngr", "emp"))
        m1 = sm(emp, mgr, "Emp(x) -> exists y . Manager(x, y)")
        m2 = sm(mgr, slf, "Manager(x, x) -> SelfMngr(x)")
        plan = optimize_pipeline([m1, m2])
        assert len(plan.optimized) == 2
        (keep,) = [a for a in plan.actions if a.kind == "keep-stage"]
        assert keep.data["obstruction"]["kind"] == "premise-function"

    def test_prune_unlocks_collapse(self):
        # Each stage carries a redundant existential tgd whose Skolem
        # function would obstruct de-Skolemization of the composition.
        # Pruning first removes the obstruction, so the pipeline still
        # collapses to a single one-tgd stage (the benchmark workload).
        mid = schema(relation("T", "a", "b"))
        m1 = sm(
            A,
            mid,
            "S(x, y) -> T(x, y)",
            "S(x, y) -> exists z . T(x, z)",
        )
        m2 = sm(
            mid,
            C,
            "T(x, y) -> U(x, y)",
            "T(x, y) -> exists z . U(x, z)",
        )
        plan = optimize_pipeline([m1, m2])
        assert len(plan.optimized) == 1
        assert len(plan.optimized[0].tgds) == 1
        assert plan.verification["equivalent"] is True
        prunes = [a for a in plan.actions if a.kind == "prune-tgd"]
        assert {a.data["stage"] for a in prunes} == {0, 1}
        assert any(a.kind == "collapse-stages" for a in plan.actions)
        assert_chase_equivalent(plan.original, plan.optimized)

    def test_mid_constraints_fold_through_collapse(self):
        m1 = sm(
            A,
            B,
            "S(x, y) -> T(x, y)",
            deps=[dep("T(u, v) -> TRef(u, v)")],
        )
        m2 = sm(B, C, "T(x, y) -> U(x, y)", "TRef(x, y) -> U(y, x)")
        plan = optimize_pipeline([m1, m2])
        assert len(plan.optimized) == 1
        assert plan.verification["equivalent"] is True
        assert_chase_equivalent([m1, m2], plan.optimized)

    def test_non_chaining_pipeline_raises(self):
        m1 = sm(A, C, "S(x, y) -> U(x, y)")
        m2 = sm(A, C, "S(x, y) -> U(x, y)")
        with pytest.raises(ValueError):
            optimize_pipeline([m1, m2])

    def test_empty_pipeline_raises(self):
        with pytest.raises(ValueError):
            optimize_pipeline([])

    def test_plan_serializes(self):
        mid = schema(relation("T", "a", "b"))
        m1 = sm(A, mid, "S(x, y) -> T(x, y)")
        m2 = sm(mid, C, "T(x, y) -> U(x, y)")
        plan = optimize_pipeline([m1, m2])
        data = plan.as_dict()
        assert data["original"]["stages"] == 2
        assert data["optimized"]["stages"] == 1
        assert data["changed"] is True
        rendered = plan.render()
        assert "stages: 2 -> 1" in rendered
        assert "estimated chase cost" in rendered
        assert plan.to_json().startswith("{")
