"""Tests for the cost-based evolution-strategy chooser and the cost model."""

from repro.channels import RenameTable
from repro.channels.primitives import DropColumn, DropTable
from repro.mapping import SchemaMapping
from repro.optimize import (
    choose_evolution_strategy,
    estimate_chase_cost,
    pipeline_cost,
    propagate_statistics,
)
from repro.relational import relation, schema
from repro.stats import RelationStatistics, Statistics


S = schema(relation("S", "a", "b"), relation("R", "a", "b"))
T = schema(relation("T", "a", "b"))
BASE = SchemaMapping.parse(S, T, "S(x, y) -> T(x, y)")


def stats(**cards):
    return Statistics(
        {name: RelationStatistics(name, card) for name, card in cards.items()}
    )


class TestCostModel:
    def test_single_atom_cost_is_cardinality(self):
        st = stats(S=500, R=10)
        assert estimate_chase_cost(BASE, st) == 500.0

    def test_join_divides_by_distinct(self):
        m = SchemaMapping.parse(S, T, "S(x, y), R(y, z) -> T(x, z)")
        st = Statistics(
            {
                "S": RelationStatistics("S", 100),
                "R": RelationStatistics("R", 100, {"a": 50}),
            }
        )
        # 100 bindings from S, each joining 100/50 R-rows on the bound var.
        assert estimate_chase_cost(m, st) == 100 * (100 / 50)

    def test_propagation_estimates_target_cardinality(self):
        st = stats(S=500, R=10)
        propagated = propagate_statistics(BASE, st)
        assert propagated.relations["T"].cardinality == 500

    def test_pipeline_cost_compounds_across_hops(self):
        mid = schema(relation("M", "a", "b"))
        m1 = SchemaMapping.parse(S, mid, "S(x, y) -> M(x, y)")
        m2 = SchemaMapping.parse(mid, T, "M(x, y) -> T(x, y)")
        total, per_stage = pipeline_cost([m1, m2], stats(S=500, R=10))
        assert per_stage == [500.0, 500.0]
        assert total == 1000.0


class TestChooseEvolutionStrategy:
    def test_rename_prefers_channel_propagation(self):
        decision = choose_evolution_strategy(
            BASE, [RenameTable("S", "S2")], stats(S=100, R=5)
        )
        assert decision.strategy == "channel-propagation"
        assert decision.rewritten is not None
        assert "S2" in decision.rewritten.source.relation_names
        assert decision.channel_cost is not None
        # One hop beats (or ties) recovery + base chase.
        if decision.invert_cost is not None:
            assert decision.channel_cost <= decision.invert_cost

    def test_decision_serializes(self):
        decision = choose_evolution_strategy(BASE, [RenameTable("S", "S2")])
        data = decision.as_dict()
        assert data["strategy"] == decision.strategy
        assert "channel_cost" in data and "reason" in data

    def test_drop_unused_table_still_has_a_route(self):
        decision = choose_evolution_strategy(
            BASE, [DropTable("R")], stats(S=100, R=5)
        )
        assert decision.strategy != "none"

    def test_channel_route_survives_column_drop(self):
        wide = schema(relation("S", "a", "b", "c"))
        base = SchemaMapping.parse(
            wide, T, "S(x, y, z) -> T(x, y)"
        )
        decision = choose_evolution_strategy(
            base, [DropColumn("S", "c")], stats(S=100)
        )
        assert decision.strategy != "none"
        assert decision.reason
