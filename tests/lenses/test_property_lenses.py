"""Property-based tests (hypothesis) for abstract lens laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lenses import (
    ComposeLens,
    FunctionLens,
    IdentityLens,
    ProductLens,
    span,
)

pairs = st.tuples(st.integers(-5, 5), st.integers(-5, 5))
triples = st.tuples(st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))


def fst():
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: (v,) + tuple(s[1:]),
        create_fn=lambda v: (v, 0),
        name="fst",
    )


def snd():
    return FunctionLens(
        get_fn=lambda s: s[1],
        put_fn=lambda v, s: (s[0], v) + tuple(s[2:]),
        create_fn=lambda v: (0, v),
        name="snd",
    )


@settings(max_examples=80, deadline=None)
@given(pairs, st.integers(-5, 5))
def test_fst_well_behaved(source, view):
    lens = fst()
    assert lens.put(lens.get(source), source) == source
    assert lens.get(lens.put(view, source)) == view


@settings(max_examples=80, deadline=None)
@given(st.tuples(pairs, st.integers(-5, 5)), st.integers(-5, 5))
def test_composition_preserves_laws(source, view):
    lens = ComposeLens(fst(), fst())
    assert lens.put(lens.get(source), source) == source
    assert lens.get(lens.put(view, source)) == view


@settings(max_examples=80, deadline=None)
@given(st.tuples(pairs, pairs), st.tuples(st.integers(-5, 5), st.integers(-5, 5)))
def test_product_preserves_laws(source, view):
    lens = ProductLens(fst(), snd())
    assert lens.put(lens.get(source), source) == source
    assert lens.get(lens.put(view, source)) == view


@settings(max_examples=80, deadline=None)
@given(pairs, st.lists(st.tuples(st.sampled_from(["r", "l"]), st.integers(-5, 5)), max_size=6))
def test_span_symmetric_round_trips(initial, updates):
    """After any update history, putr/putl round trips stabilize."""
    lens = span(fst(), snd())
    complement = lens.missing
    # Establish a complement.
    _, complement = lens.putr(initial[0], complement)
    for direction, value in updates:
        if direction == "r":
            out, complement = lens.putr(value, complement)
            back, complement2 = lens.putl(out, complement)
            assert back == value
            assert complement2 == complement
        else:
            out, complement = lens.putl(value, complement)
            back, complement2 = lens.putr(out, complement)
            assert back == value
            assert complement2 == complement


@settings(max_examples=80, deadline=None)
@given(pairs)
def test_identity_lens_is_neutral_for_composition(source):
    lens = ComposeLens(IdentityLens(), fst())
    direct = fst()
    assert lens.get(source) == direct.get(source)
    assert lens.put(9, source) == direct.put(9, source)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["r", "l"]), st.integers(-5, 5)), min_size=1, max_size=6))
def test_inversion_swaps_histories(updates):
    from repro.lenses import run_updates

    lens = span(fst(), snd())
    flipped = [("l" if d == "r" else "r", v) for d, v in updates]
    assert run_updates(lens, updates) == run_updates(lens.invert(), flipped)
