"""Tests for delta lenses and the delta algebra."""

import pytest

from repro.lenses.delta import (
    InstanceDelta,
    ProjectionDeltaLens,
    check_delta_agrees_with_state,
    check_delta_composition,
    check_delta_identity,
    check_delta_putget,
    delta_lens_from_lens,
)
from repro.relational import Fact, constant, instance, relation, schema
from repro.rlens import ConstantPolicy, ProjectLens

PERSON = relation("Person", "id", "name", "city")
S = schema(PERSON)


def fact(relname, *values):
    return Fact(relname, tuple(constant(v) for v in values))


@pytest.fixture
def source():
    return instance(
        S,
        {"Person": [[1, "ann", "nyc"], [2, "bob", "sfo"]]},
    )


@pytest.fixture
def project():
    return ProjectLens(PERSON, ("id", "name"), "V", {"city": ConstantPolicy("?")})


class TestInstanceDelta:
    def test_overlap_cancels(self):
        f = fact("Person", 1, "a", "c")
        delta = InstanceDelta([f], [f])
        assert delta.is_identity()

    def test_apply(self, source):
        delta = InstanceDelta(
            [fact("Person", 3, "cyd", "rio")], [fact("Person", 1, "ann", "nyc")]
        )
        out = delta.apply(source)
        assert fact("Person", 3, "cyd", "rio") in out
        assert fact("Person", 1, "ann", "nyc") not in out

    def test_diff(self, source):
        new = source.with_facts([fact("Person", 3, "cyd", "rio")])
        delta = InstanceDelta.diff(source, new)
        assert delta.inserts == frozenset([fact("Person", 3, "cyd", "rio")])
        assert delta.deletes == frozenset()

    def test_diff_then_apply_round_trips(self, source):
        new = source.without_facts([fact("Person", 2, "bob", "sfo")]).with_facts(
            [fact("Person", 9, "zed", "ber")]
        )
        assert InstanceDelta.diff(source, new).apply(source).same_facts(new)

    def test_composition(self):
        f1, f2 = fact("Person", 1, "a", "c"), fact("Person", 2, "b", "d")
        first = InstanceDelta([f1], [])
        second = InstanceDelta([f2], [f1])
        combined = first.then(second)
        assert combined.inserts == frozenset([f2])
        # −f1 survives: a state that held f1 *before* d1 must lose it.
        assert combined.deletes == frozenset([f1])

    def test_composition_agrees_with_sequential_application(self, source):
        d1 = InstanceDelta([fact("Person", 3, "c", "x")], [])
        d2 = InstanceDelta([], [fact("Person", 3, "c", "x")])
        combined = d1.then(d2)
        assert combined.apply(source).same_facts(d2.apply(d1.apply(source)))

    def test_invert(self, source):
        delta = InstanceDelta([fact("Person", 3, "c", "x")], [fact("Person", 1, "ann", "nyc")])
        assert delta.invert().apply(delta.apply(source)).same_facts(source)

    def test_size_and_identity(self):
        assert InstanceDelta.identity().size() == 0
        assert InstanceDelta([fact("R", 1)], []).size() == 1


def view_deltas(source, view):
    facts = sorted(view.facts(), key=repr)
    deltas = [InstanceDelta.identity()]
    if facts:
        deltas.append(InstanceDelta([], [facts[0]]))
    deltas.append(InstanceDelta([fact("V", 77, "new")], []))
    return deltas


class TestStateDiffEmbedding:
    def test_get_delegates(self, source, project):
        embedded = delta_lens_from_lens(project)
        assert embedded.get(source) == project.get(source)

    def test_identity_law(self, source, project):
        embedded = delta_lens_from_lens(project)
        assert check_delta_identity(embedded, [source]) == []

    def test_putget_law(self, source, project):
        embedded = delta_lens_from_lens(project)
        assert check_delta_putget(embedded, [source], view_deltas) == []

    def test_composition_law(self, source, project):
        embedded = delta_lens_from_lens(project)
        assert check_delta_composition(embedded, [source], view_deltas) == []

    def test_state_put_derived_from_delta(self, source, project):
        embedded = delta_lens_from_lens(project)
        view = project.get(source).with_facts([fact("V", 5, "eve")])
        assert embedded.put(view, source) == project.put(view, source)


class TestNativeProjectionDeltaLens:
    def test_insert_translates_to_one_source_row(self, source, project):
        native = ProjectionDeltaLens(project)
        delta = InstanceDelta([fact("V", 5, "eve")], [])
        out = native.put_delta(delta, source)
        assert len(out.inserts) == 1
        (inserted,) = out.inserts
        assert inserted.row[:2] == (constant(5), constant("eve"))
        assert inserted.row[2] == constant("?")

    def test_delete_removes_all_preimages(self, project):
        dup_source = instance(
            S, {"Person": [[1, "ann", "nyc"], [1, "ann", "rio"]]}
        )
        native = ProjectionDeltaLens(project)
        delta = InstanceDelta([], [fact("V", 1, "ann")])
        out = native.put_delta(delta, dup_source)
        assert len(out.deletes) == 2

    def test_covered_insert_is_noop(self, source, project):
        native = ProjectionDeltaLens(project)
        delta = InstanceDelta([fact("V", 1, "ann")], [])
        out = native.put_delta(delta, source)
        assert out.is_identity()

    def test_laws(self, source, project):
        native = ProjectionDeltaLens(project)
        assert check_delta_identity(native, [source]) == []
        assert check_delta_putget(native, [source], view_deltas) == []
        assert check_delta_composition(native, [source], view_deltas) == []

    def test_agrees_with_state_based_reference(self, source, project):
        native = ProjectionDeltaLens(project)
        violations = check_delta_agrees_with_state(
            native, project, [source], view_deltas
        )
        assert violations == []

    def test_work_is_delta_sized(self, project):
        """The native translation emits deltas, never whole states."""
        big = instance(
            S, {"Person": [[i, f"n{i}", "c"] for i in range(200)]}
        )
        native = ProjectionDeltaLens(project)
        delta = InstanceDelta([], [fact("V", 7, "n7")])
        out = native.put_delta(delta, big)
        assert out.size() == 1  # one delete, nothing else
