"""Tests for the law-checking harness itself (it must catch violations)."""

from repro.lenses import (
    FunctionLens,
    check_create_get,
    check_getput,
    check_putget,
    check_putput,
    check_very_well_behaved,
    check_well_behaved,
)


def lawful_lens():
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: (v, s[1]),
        create_fn=lambda v: (v, 0),
        name="first",
    )


def putget_breaker():
    """put ignores the view — PutGet must fail."""
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: s,
        name="ignores-view",
    )


def getput_breaker():
    """put always resets the complement — GetPut must fail."""
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: (v, 0),
        name="resets-complement",
    )


def putput_breaker():
    """put bumps the complement on every real change — PutPut must fail.

    GetPut holds (a trivial put changes nothing) and PutGet holds, but two
    successive puts leave a different complement than one direct put.
    """
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: (v, s[1] + (0 if v == s[0] else 1)),
        name="change-counting",
    )


SOURCES = [(1, 10), (2, 20)]


def views(source):
    return [99, source[0]]


class TestDetection:
    def test_lawful_lens_passes_everything(self):
        assert check_well_behaved(lawful_lens(), SOURCES, views) == []
        assert check_putput(lawful_lens(), SOURCES, views) == []

    def test_putget_violation_detected(self):
        violations = check_putget(putget_breaker(), SOURCES, views)
        assert violations
        assert all(v.law == "PutGet" for v in violations)

    def test_getput_violation_detected(self):
        violations = check_getput(getput_breaker(), SOURCES)
        assert violations
        assert all(v.law == "GetPut" for v in violations)

    def test_putput_violation_detected(self):
        violations = check_putput(putput_breaker(), SOURCES, views)
        assert violations
        assert all(v.law == "PutPut" for v in violations)

    def test_putput_breaker_is_still_well_behaved(self):
        # The counting lens satisfies PutGet and GetPut but not PutPut —
        # exactly the "well-behaved but not very-well-behaved" class.
        assert check_well_behaved(putput_breaker(), SOURCES, views) == []
        assert check_very_well_behaved(putput_breaker(), SOURCES, views) != []

    def test_create_get(self):
        assert check_create_get(lawful_lens(), [1, 2]) == []
        broken = FunctionLens(
            get_fn=lambda s: s[0],
            put_fn=lambda v, s: (v, s[1]),
            create_fn=lambda v: (0, 0),
            name="bad-create",
        )
        assert check_create_get(broken, [1]) != []


class TestCustomEquality:
    def test_equality_modulo_predicate(self):
        # A lens lawful only up to case-insensitivity of the complement.
        lens = FunctionLens(
            get_fn=lambda s: s[0],
            put_fn=lambda v, s: (v, s[1].upper()),
            name="upcases-complement",
        )
        strict = check_getput(lens, [(1, "ab")])
        assert strict
        modulo = check_getput(
            lens,
            [(1, "ab")],
            equal_sources=lambda a, b: (a[0], a[1].lower()) == (b[0], b[1].lower()),
        )
        assert modulo == []

    def test_violation_reports_are_descriptive(self):
        violations = check_putget(putget_breaker(), SOURCES, views)
        assert "get(put" in violations[0].detail
        assert "PutGet" in repr(violations[0])
