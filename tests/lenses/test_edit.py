"""Tests for edit lenses and the edit algebra."""

import pytest

from repro.lenses import (
    DeleteRow,
    IdentityEdit,
    InsertRow,
    Replace,
    SequenceEdit,
    check_edit_compatibility,
    check_edit_lens_round_trip,
    check_edit_stability,
    edit_lens_from_lens,
)
from repro.relational import constant, instance, relation, schema
from repro.rlens import ProjectLens


class TestEditAlgebra:
    def test_identity(self):
        assert IdentityEdit().apply("s") == "s"

    def test_replace(self):
        assert Replace("t").apply("s") == "t"

    def test_sequence(self):
        edit = Replace("a").then(Replace("b"))
        assert isinstance(edit, SequenceEdit)
        assert edit.apply("s") == "b"

    def test_empty_sequence_is_identity(self):
        assert SequenceEdit(()).apply("s") == "s"


class TestRelationalEdits:
    @pytest.fixture
    def inst(self):
        s = schema(relation("R", "a"))
        return instance(s, {"R": [[1]]})

    def test_insert_row(self, inst):
        out = InsertRow("R", (constant(2),)).apply(inst)
        assert out.size() == 2

    def test_delete_row(self, inst):
        out = DeleteRow("R", (constant(1),)).apply(inst)
        assert out.is_empty()

    def test_delete_missing_is_noop(self, inst):
        out = DeleteRow("R", (constant(9),)).apply(inst)
        assert out == inst

    def test_edit_sequences_compose(self, inst):
        edit = InsertRow("R", (constant(2),)).then(DeleteRow("R", (constant(1),)))
        out = edit.apply(inst)
        assert out.rows("R") == {(constant(2),)}


class TestStateBackedEditLens:
    @pytest.fixture
    def setting(self):
        rel = relation("P", "id", "name", "city")
        lens = ProjectLens(rel, ("id", "name"), "V")
        s = schema(rel)
        source = instance(s, {"P": [[1, "ann", "nyc"], [2, "bob", "sfo"]]})
        return edit_lens_from_lens(lens), source

    def test_initial(self, setting):
        edit_lens, source = setting
        view, complement = edit_lens.initial(source)
        assert len(view.rows("V")) == 2
        assert complement == (source, view)

    def test_push_right_propagates_insert(self, setting):
        edit_lens, source = setting
        view, complement = edit_lens.initial(source)
        edit = InsertRow("P", (constant(3), constant("cyd"), constant("ber")))
        view_edit, _ = edit_lens.push_right(edit, complement)
        new_view = view_edit.apply(view)
        assert (constant(3), constant("cyd")) in new_view.rows("V")

    def test_push_left_propagates_delete(self, setting):
        edit_lens, source = setting
        view, complement = edit_lens.initial(source)
        edit = DeleteRow("V", (constant(1), constant("ann")))
        source_edit, _ = edit_lens.push_left(edit, complement)
        new_source = source_edit.apply(source)
        assert len(new_source.rows("P")) == 1

    def test_stability_law(self, setting):
        edit_lens, source = setting
        assert check_edit_stability(edit_lens, [source]) == []

    def test_compatibility_law(self, setting):
        edit_lens, source = setting

        def edits_for(state):
            return [
                InsertRow("P", (constant(9), constant("zed"), constant("rio"))),
                IdentityEdit(),
            ]

        assert check_edit_compatibility(edit_lens, [source], edits_for) == []

    def test_round_trip_law(self, setting):
        edit_lens, source = setting

        def edits_for(state):
            return [
                InsertRow("P", (constant(9), constant("zed"), constant("rio"))),
                DeleteRow("P", (constant(1), constant("ann"), constant("nyc"))),
            ]

        assert check_edit_lens_round_trip(edit_lens, [source], edits_for) == []
