"""Tests for symmetric lenses: spans, composition, inversion, cospans."""

import pytest

from repro.lenses import (
    CospanSynchronizer,
    FunctionLens,
    IdentitySymmetricLens,
    check_symmetric_laws,
    observationally_equivalent,
    run_updates,
    span,
    to_span,
)


def fst_lens():
    """Asymmetric lens U = (a, b) → a."""
    return FunctionLens(
        get_fn=lambda u: u[0],
        put_fn=lambda v, u: (v, u[1]),
        create_fn=lambda v: (v, "·"),
        name="fst",
    )


def snd_lens():
    """Asymmetric lens U = (a, b) → b."""
    return FunctionLens(
        get_fn=lambda u: u[1],
        put_fn=lambda v, u: (u[0], v),
        create_fn=lambda v: ("·", v),
        name="snd",
    )


@pytest.fixture
def pair_span():
    """The classic symmetric lens: S and T are the two slots of a pair."""
    return span(fst_lens(), snd_lens())


class TestSpanLens:
    def test_putr_from_missing_creates(self, pair_span):
        t, c = pair_span.putr("a", pair_span.missing)
        assert t == "·"
        assert c == ("a", "·")

    def test_putr_then_putl_round_trip(self, pair_span):
        t, c = pair_span.putr("a", pair_span.missing)
        s, c2 = pair_span.putl("b", c)
        assert s == "a"
        assert c2 == ("a", "b")

    def test_alternating_updates(self, pair_span):
        outputs = run_updates(
            pair_span, [("r", "x"), ("l", "y"), ("r", "z")]
        )
        assert outputs == ["·", "x", "y"]

    def test_laws(self, pair_span):
        violations = check_symmetric_laws(pair_span, ["a", "b"], ["t", "u"])
        assert violations == []


class TestInversion:
    def test_invert_swaps_directions(self, pair_span):
        inv = pair_span.invert()
        s, c = inv.putr("b-side", inv.missing)
        assert c == ("·", "b-side")

    def test_double_inversion_is_original(self, pair_span):
        assert pair_span.invert().invert() is pair_span

    def test_inverted_lens_satisfies_laws(self, pair_span):
        violations = check_symmetric_laws(
            pair_span.invert(), ["t1", "t2"], ["s1", "s2"]
        )
        assert violations == []

    def test_inverse_is_observationally_inverse(self, pair_span):
        seq = [("r", "x"), ("l", "y")]
        flipped = [("l", "x"), ("r", "y")]
        assert run_updates(pair_span, seq) == run_updates(pair_span.invert(), flipped)


class TestComposition:
    def test_compose_with_identity_is_equivalent(self, pair_span):
        composed = pair_span.then(IdentitySymmetricLens())
        sequences = [
            [("r", "a"), ("l", "t"), ("r", "b")],
            [("l", "t1"), ("r", "s1")],
        ]
        assert observationally_equivalent(pair_span, composed, sequences)

    def test_composition_threads_complements(self, pair_span):
        composed = pair_span.then(pair_span.invert())
        # S → T → S: only the T-projection travels, so the right-hand
        # output stays the default, but the first complement must record
        # the pushed S-state.
        out, c = composed.putr("a", composed.missing)
        out2, c2 = composed.putr("b", c)
        assert out2 == "·"
        assert c2[0] == ("b", "·")
        # Pushing left updates the S-side through the whole chain.
        s_out, _ = composed.putl("z", c2)
        assert s_out == "b"

    def test_composed_laws(self, pair_span):
        composed = pair_span.then(IdentitySymmetricLens())
        assert check_symmetric_laws(composed, ["a"], ["t"]) == []

    def test_rshift_operator(self, pair_span):
        composed = pair_span >> IdentitySymmetricLens()
        out, _ = composed.putr("a", composed.missing)
        assert out == "·"


class TestToSpan:
    def test_round_trip_is_observationally_equivalent(self, pair_span):
        left, right = to_span(pair_span)
        rebuilt = span(left, right)
        sequences = [
            [("r", "a"), ("l", "t"), ("r", "b"), ("l", "u")],
            [("l", "t"), ("r", "s")],
        ]
        assert observationally_equivalent(pair_span, rebuilt, sequences)

    def test_legs_are_lawful_lenses(self, pair_span):
        from repro.lenses import check_well_behaved

        left, right = to_span(pair_span)
        u0 = left.create("a")
        violations = check_well_behaved(left, [u0], lambda s: ["x", s[0]])
        assert violations == []


class TestIdentitySymmetric:
    def test_identity(self):
        ident = IdentitySymmetricLens()
        assert ident.putr("x", None) == ("x", None)
        assert ident.putl("y", None) == ("y", None)
        assert check_symmetric_laws(ident, ["a"], ["b"]) == []


class TestCospan:
    @pytest.fixture
    def synchronizer(self):
        """S = (name, age), T = (name, city): interface X = name."""
        s_leg = FunctionLens(
            get_fn=lambda s: s[0],
            put_fn=lambda x, s: (x, s[1]),
            name="s-name",
        )
        t_leg = FunctionLens(
            get_fn=lambda t: t[0],
            put_fn=lambda x, t: (x, t[1]),
            name="t-name",
        )
        return CospanSynchronizer(s_leg, t_leg)

    def test_sync_right(self, synchronizer):
        assert synchronizer.sync_right(("ann", 30), ("old", "nyc")) == ("ann", "nyc")

    def test_sync_left(self, synchronizer):
        assert synchronizer.sync_left(("bob", "sfo"), ("old", 44)) == ("bob", 44)

    def test_consistency(self, synchronizer):
        assert synchronizer.consistent(("ann", 30), ("ann", "nyc"))
        assert not synchronizer.consistent(("ann", 30), ("bob", "nyc"))

    def test_sync_establishes_consistency(self, synchronizer):
        s, t = ("ann", 30), ("bob", "nyc")
        t2 = synchronizer.sync_right(s, t)
        assert synchronizer.consistent(s, t2)

    def test_run_updates_rejects_bad_direction(self, pair_span):
        with pytest.raises(ValueError):
            run_updates(pair_span, [("x", "s")])
