"""Tests for basic asymmetric lenses."""

import pytest

from repro.lenses import (
    FunctionLens,
    IdentityLens,
    IsoLens,
    MissingSourceError,
)


@pytest.fixture
def pair_first_lens():
    """The canonical toy lens: view the first slot of a pair."""
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: (v, s[1]),
        create_fn=lambda v: (v, 0),
        name="first",
    )


class TestFunctionLens:
    def test_get(self, pair_first_lens):
        assert pair_first_lens.get((1, 2)) == 1

    def test_put(self, pair_first_lens):
        assert pair_first_lens.put(9, (1, 2)) == (9, 2)

    def test_create(self, pair_first_lens):
        assert pair_first_lens.create(7) == (7, 0)

    def test_create_without_fn_raises(self):
        lens = FunctionLens(lambda s: s, lambda v, s: v)
        with pytest.raises(MissingSourceError):
            lens.create(1)

    def test_well_behaved(self, pair_first_lens):
        source = (1, 2)
        assert pair_first_lens.put(pair_first_lens.get(source), source) == source
        assert pair_first_lens.get(pair_first_lens.put(5, source)) == 5


class TestIdentityLens:
    def test_round_trip(self):
        lens = IdentityLens()
        assert lens.get("s") == "s"
        assert lens.put("v", "s") == "v"
        assert lens.create("v") == "v"


class TestIsoLens:
    @pytest.fixture
    def celsius_fahrenheit(self):
        return IsoLens(
            forward=lambda c: c * 9 / 5 + 32,
            backward=lambda f: (f - 32) * 5 / 9,
            name="c2f",
        )

    def test_forward_backward(self, celsius_fahrenheit):
        assert celsius_fahrenheit.get(100) == 212
        assert celsius_fahrenheit.put(32, None) == 0

    def test_put_ignores_source(self, celsius_fahrenheit):
        assert celsius_fahrenheit.put(212, 1234) == 100

    def test_inverse_swaps(self, celsius_fahrenheit):
        inv = celsius_fahrenheit.inverse()
        assert inv.get(212) == 100
        assert inv.inverse().get(100) == 212

    def test_create(self, celsius_fahrenheit):
        assert celsius_fahrenheit.create(212) == 100


class TestCompositionSugar:
    def test_then_and_rshift(self, pair_first_lens):
        upper = FunctionLens(
            get_fn=str.upper, put_fn=lambda v, s: v.lower(), name="upper"
        )
        composed = pair_first_lens.then(upper)
        assert composed.get(("ab", 1)) == "AB"
        via_operator = pair_first_lens >> upper
        assert via_operator.get(("ab", 1)) == "AB"
        assert composed.put("XY", ("ab", 1)) == ("xy", 1)
