"""Tests for quotient lenses: laws modulo canonizer equivalence."""

import pytest

from repro.lenses import (
    Canonizer,
    FunctionLens,
    QuotientLens,
    check_canonizer,
    identity_canonizer,
)


@pytest.fixture
def whitespace_canonizer():
    """Strings modulo surrounding whitespace and case (canonical: stripped
    lower-case), the classic quotient-lens example."""
    return Canonizer(
        canonize=lambda s: s.strip().lower(),
        choose=lambda c: c,
        name="strip+lower",
    )


@pytest.fixture
def quotient(whitespace_canonizer):
    """Upper-case view of a whitespace-quotiented string."""
    core = FunctionLens(
        get_fn=str.upper,
        put_fn=lambda v, s: v.lower(),
        create_fn=str.lower,
        name="case",
    )
    return QuotientLens(whitespace_canonizer, core, identity_canonizer())


class TestCanonizer:
    def test_equivalence(self, whitespace_canonizer):
        assert whitespace_canonizer.equivalent("  a ", "a")
        assert not whitespace_canonizer.equivalent("a", "b")

    def test_recanonize_law_holds(self, whitespace_canonizer):
        assert check_canonizer(whitespace_canonizer, ["a", "b c"]) == []

    def test_recanonize_violation_detected(self):
        broken = Canonizer(canonize=str.strip, choose=lambda c: f" {c} ", name="pad")
        # choose pads, canonize strips — still lawful. Break it properly:
        truly_broken = Canonizer(
            canonize=str.strip, choose=lambda c: c + "!", name="bang"
        )
        assert check_canonizer(broken, ["a"]) == []
        assert check_canonizer(truly_broken, ["a"]) != []

    def test_identity_canonizer(self):
        ident = identity_canonizer()
        assert ident.canonize(5) == 5
        assert ident.equivalent(5, 5)


class TestQuotientLens:
    def test_get_canonizes_first(self, quotient):
        assert quotient.get("  ab ") == "AB"

    def test_put_returns_canonical_source(self, quotient):
        assert quotient.put("XY", "  ab ") == "xy"

    def test_create(self, quotient):
        assert quotient.create("XY") == "xy"

    def test_strict_getput_fails_but_quotient_laws_hold(self, quotient):
        # Strict GetPut fails on non-canonical sources:
        assert quotient.put(quotient.get(" ab "), " ab ") != " ab "
        # ... but modulo the source equivalence everything is lawful.
        violations = quotient.check_quotient_laws(
            [" ab ", "cd", " EF"], lambda s: ["ZZ", quotient.get(s)]
        )
        assert violations == []

    def test_equivalences_exposed(self, quotient):
        assert quotient.source_equivalent(" a", "a ")
        assert quotient.view_equivalent("A", "A")
        assert not quotient.view_equivalent("A", "B")
