"""Tests for lens combinators and their law preservation."""

import pytest

from repro.lenses import (
    ComposeLens,
    ConstLens,
    FieldLens,
    FstLens,
    FunctionLens,
    IdentityLens,
    MissingSourceError,
    ProductLens,
    SndLens,
    check_well_behaved,
    compose_all,
)


def first_lens():
    return FunctionLens(
        get_fn=lambda s: s[0],
        put_fn=lambda v, s: (v, s[1]),
        create_fn=lambda v: (v, 0),
        name="first",
    )


class TestCompose:
    def test_get_composes(self):
        lens = ComposeLens(first_lens(), first_lens())
        assert lens.get(((1, 2), 3)) == 1

    def test_put_threads_through_middle(self):
        lens = ComposeLens(first_lens(), first_lens())
        assert lens.put(9, ((1, 2), 3)) == ((9, 2), 3)

    def test_create(self):
        lens = ComposeLens(first_lens(), first_lens())
        assert lens.create(9) == ((9, 0), 0)

    def test_composition_preserves_laws(self):
        lens = ComposeLens(first_lens(), first_lens())
        sources = [((1, 2), 3), ((4, 5), 6)]
        violations = check_well_behaved(lens, sources, lambda s: [9, s[0][0]])
        assert violations == []

    def test_compose_all(self):
        lens = compose_all(first_lens(), first_lens())
        assert lens.get(((1, 2), 3)) == 1

    def test_compose_all_empty_rejected(self):
        with pytest.raises(ValueError):
            compose_all()


class TestProduct:
    def test_componentwise(self):
        lens = ProductLens(first_lens(), IdentityLens())
        assert lens.get(((1, 2), "x")) == (1, "x")
        assert lens.put((9, "y"), ((1, 2), "x")) == ((9, 2), "y")

    def test_create(self):
        lens = ProductLens(first_lens(), IdentityLens())
        assert lens.create((3, "z")) == ((3, 0), "z")

    def test_laws(self):
        lens = ProductLens(first_lens(), IdentityLens())
        sources = [((1, 2), "x")]
        violations = check_well_behaved(
            lens, sources, lambda s: [(9, "q"), (s[0][0], s[1])]
        )
        assert violations == []


class TestConst:
    def test_get_is_constant(self):
        lens = ConstLens("k", default="d")
        assert lens.get("anything") == "k"

    def test_put_accepts_only_constant(self):
        lens = ConstLens("k", default="d")
        assert lens.put("k", "s") == "s"
        with pytest.raises(ValueError):
            lens.put("other", "s")

    def test_create_uses_default(self):
        assert ConstLens("k", default="d").create("k") == "d"

    def test_create_without_default_raises(self):
        with pytest.raises(MissingSourceError):
            ConstLens("k").create("k")

    def test_create_rejects_wrong_view(self):
        with pytest.raises(ValueError):
            ConstLens("k", default="d").create("wrong")


class TestProjections:
    def test_fst(self):
        lens = FstLens(default_second=0)
        assert lens.get((1, 2)) == 1
        assert lens.put(9, (1, 2)) == (9, 2)
        assert lens.create(5) == (5, 0)

    def test_fst_without_default(self):
        with pytest.raises(MissingSourceError):
            FstLens().create(1)

    def test_snd(self):
        lens = SndLens(default_first="a")
        assert lens.get((1, 2)) == 2
        assert lens.put(9, (1, 2)) == (1, 9)
        assert lens.create(9) == ("a", 9)


class TestFieldLens:
    def test_get_put(self):
        lens = FieldLens("name")
        record = {"name": "ann", "age": 3}
        assert lens.get(record) == "ann"
        assert lens.put("bob", record) == {"name": "bob", "age": 3}

    def test_put_does_not_mutate(self):
        lens = FieldLens("name")
        record = {"name": "ann"}
        lens.put("bob", record)
        assert record["name"] == "ann"

    def test_create_with_defaults(self):
        lens = FieldLens("name", defaults=(("age", 0),))
        assert lens.create("zed") == {"age": 0, "name": "zed"}

    def test_create_without_defaults_raises(self):
        with pytest.raises(MissingSourceError):
            FieldLens("name").create("zed")

    def test_laws(self):
        lens = FieldLens("name")
        sources = [{"name": "ann", "age": 1}]
        violations = check_well_behaved(lens, sources, lambda s: ["x", s["name"]])
        assert violations == []
