"""Cospan-based data exchange (paper, Section 5).

"There is already practical work in building data exchange via cospans of
certain kinds of lenses [19]. That work has been used to concretely
implement data exchange and systems interoperation."  Here two
independent systems each carry a compiled exchange lens *into* a common
interface schema; a :class:`CospanSynchronizer` pushes one side's
interface view into the other side's state.
"""

import pytest

from repro.compiler import ExchangeEngine
from repro.lenses import CospanSynchronizer
from repro.mapping import SchemaMapping
from repro.relational import constant, instance, relation, schema


@pytest.fixture
def federation():
    """Two HR systems, one shared Directory interface."""
    interface = schema(relation("Directory", "name", "site"))

    a_schema = schema(
        relation("Employee", "eid", "name", "dept"),
        relation("Department", "dept", "site"),
    )
    a_mapping = SchemaMapping.parse(
        a_schema,
        interface,
        "Employee(e, n, d), Department(d, l) -> Directory(n, l)",
    )
    b_schema = schema(relation("Staff", "name", "site", "phone"))
    b_mapping = SchemaMapping.parse(
        b_schema, interface, "Staff(n, l, p) -> Directory(n, l)"
    )
    lens_a = ExchangeEngine.compile(a_mapping).lens
    lens_b = ExchangeEngine.compile(b_mapping).lens
    sync = CospanSynchronizer(lens_a, lens_b)

    system_a = instance(
        a_schema,
        {
            "Employee": [[1, "ann", "eng"], [2, "bob", "ops"]],
            "Department": [["eng", "berlin"], ["ops", "lisbon"]],
        },
    )
    system_b = instance(
        b_schema,
        {"Staff": [["cyd", "rio", "555"]]},
    )
    return sync, system_a, system_b


class TestCospanSync:
    def test_sync_right_pushes_a_into_b(self, federation):
        sync, system_a, system_b = federation
        new_b = sync.sync_right(system_a, system_b)
        names = {r[0] for r in new_b.rows("Staff")}
        assert constant("ann") in names and constant("bob") in names
        # cyd was not in A's interface view: deleted (B follows the view).
        assert constant("cyd") not in names

    def test_sync_left_pushes_b_into_a(self, federation):
        sync, system_a, system_b = federation
        new_a = sync.sync_left(system_b, system_a)
        names = {r[1] for r in new_a.rows("Employee")}
        assert constant("cyd") in names

    def test_sync_establishes_consistency(self, federation):
        sync, system_a, system_b = federation
        new_b = sync.sync_right(system_a, system_b)
        # Both sides now project to the same interface view (modulo the
        # site values which both mappings export as constants here).
        assert sync.left.get(system_a).same_facts(sync.right.get(new_b))
        assert sync.consistent(system_a, new_b)

    def test_b_side_private_data_policy(self, federation):
        """B's phone column is outside the interface: policy fills it."""
        sync, system_a, system_b = federation
        new_b = sync.sync_right(system_a, system_b)
        from repro.relational import is_null

        ann = next(r for r in new_b.rows("Staff") if r[0] == constant("ann"))
        assert is_null(ann[2])  # default null policy for Staff.phone

    def test_cospan_is_not_a_symmetric_lens(self, federation):
        """The paper's caveat: no shared complement, so a B-side edit that
        A's interface cannot express is silently normalized — unlike a
        symmetric lens, whose complement would carry it."""
        sync, system_a, system_b = federation
        # Sync B from A, edit B's private phone, sync again from A:
        new_b = sync.sync_right(system_a, system_b)
        resync = sync.sync_right(system_a, new_b)
        # Interface-level data survives; the second sync is idempotent.
        assert resync.same_facts(new_b)
