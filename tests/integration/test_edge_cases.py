"""Edge cases across modules: empty inputs, constants in odd positions,
unusual-but-legal mappings, failure surfaces."""

import pytest

from repro.compiler import ExchangeEngine
from repro.mapping import SchemaMapping, StTgd, universal_solution
from repro.relational import (
    Fact,
    constant,
    empty_instance,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)
from repro.stats import Statistics


class TestConstantsInMappings:
    def test_constant_in_premise_position(self):
        source = schema(relation("Emp", "name", "status"))
        target = schema(relation("Active", "name"))
        mapping = SchemaMapping.parse(
            source, target, "Emp(n, 'active') -> Active(n)"
        )
        I = instance(
            source, {"Emp": [["ann", "active"], ["bob", "retired"]]}
        )
        engine = ExchangeEngine.compile(mapping, Statistics.gather(I))
        out = engine.exchange(I)
        assert out.rows("Active") == {(constant("ann"),)}
        assert homomorphically_equivalent(out, universal_solution(mapping, I))

    def test_constant_in_conclusion_position(self):
        source = schema(relation("Emp", "name"))
        target = schema(relation("Tagged", "name", "tag"))
        mapping = SchemaMapping.parse(source, target, "Emp(n) -> Tagged(n, 'emp')")
        I = instance(source, {"Emp": [["ann"]]})
        engine = ExchangeEngine.compile(mapping)
        out = engine.exchange(I)
        assert out.rows("Tagged") == {(constant("ann"), constant("emp"))}
        # put: inserting a fact with the wrong tag is outside the image
        from repro.rlens import ViewViolationError

        bad = out.with_facts([Fact("Tagged", (constant("x"), constant("boss")))])
        with pytest.raises(ViewViolationError):
            engine.put_back(bad, I)

    def test_constant_round_trip_insert(self):
        source = schema(relation("Emp", "name"))
        target = schema(relation("Tagged", "name", "tag"))
        mapping = SchemaMapping.parse(source, target, "Emp(n) -> Tagged(n, 'emp')")
        I = instance(source, {"Emp": [["ann"]]})
        engine = ExchangeEngine.compile(mapping)
        good = engine.exchange(I).with_facts(
            [Fact("Tagged", (constant("cyd"), constant("emp")))]
        )
        back = engine.put_back(good, I)
        assert (constant("cyd"),) in back.rows("Emp")


class TestRepeatedVariables:
    def test_repeated_frontier_variable_in_conclusion(self):
        source = schema(relation("Emp", "name"))
        target = schema(relation("Pair", "a", "b"))
        mapping = SchemaMapping.parse(source, target, "Emp(n) -> Pair(n, n)")
        I = instance(source, {"Emp": [["ann"]]})
        engine = ExchangeEngine.compile(mapping)
        out = engine.exchange(I)
        assert out.rows("Pair") == {(constant("ann"), constant("ann"))}
        # A fact with mismatched components is unproducible.
        from repro.rlens import ViewViolationError

        bad = out.with_facts([Fact("Pair", (constant("x"), constant("y")))])
        with pytest.raises(ViewViolationError):
            engine.put_back(bad, I)

    def test_repeated_variable_in_premise_atom(self):
        source = schema(relation("Manager", "emp", "mgr"))
        target = schema(relation("SelfMngr", "emp"))
        mapping = SchemaMapping.parse(
            source, target, "Manager(x, x) -> SelfMngr(x)"
        )
        I = instance(
            source, {"Manager": [["ted", "ted"], ["ann", "ted"]]}
        )
        engine = ExchangeEngine.compile(mapping, Statistics.gather(I))
        out = engine.exchange(I)
        assert out.rows("SelfMngr") == {(constant("ted"),)}
        assert homomorphically_equivalent(out, universal_solution(mapping, I))


class TestEmptyThings:
    def test_exchange_of_empty_source(self):
        from repro.workloads import hr_scenario

        scenario = hr_scenario()
        engine = ExchangeEngine.compile(scenario.mapping)
        out = engine.exchange(empty_instance(scenario.source))
        assert out.is_empty()

    def test_put_empty_view_clears_support(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        I = instance(source, {"A": [["u"], ["v"]]})
        engine = ExchangeEngine.compile(mapping)
        out = engine.put_back(empty_instance(target), I)
        assert out.is_empty()

    def test_mapping_with_no_tgds(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping(source, target, [])
        engine = ExchangeEngine.compile(mapping)
        I = instance(source, {"A": [["u"]]})
        assert engine.exchange(I).is_empty()
        assert engine.put_back(empty_instance(target), I) == I


class TestSelfJoinPremises:
    def test_two_atoms_same_relation(self):
        source = schema(relation("Edge", "a", "b"))
        target = schema(relation("TwoStep", "a", "c"))
        mapping = SchemaMapping.parse(
            source, target, "Edge(x, y), Edge(y, z) -> TwoStep(x, z)"
        )
        I = instance(source, {"Edge": [["p", "q"], ["q", "r"]]})
        engine = ExchangeEngine.compile(mapping, Statistics.gather(I))
        out = engine.exchange(I)
        assert (constant("p"), constant("r")) in out.rows("TwoStep")
        assert homomorphically_equivalent(out, universal_solution(mapping, I))

    def test_self_join_incremental_insert(self):
        from repro.compiler import IncrementalExchange
        from repro.lenses.delta import InstanceDelta

        source = schema(relation("Edge", "a", "b"))
        target = schema(relation("TwoStep", "a", "c"))
        mapping = SchemaMapping.parse(
            source, target, "Edge(x, y), Edge(y, z) -> TwoStep(x, z)"
        )
        I = instance(source, {"Edge": [["p", "q"]]})
        engine = ExchangeEngine.compile(mapping)
        incremental = IncrementalExchange(engine.lens)
        old_target = engine.exchange(I)
        # The new edge participates in both premise atom roles.
        delta = InstanceDelta([Fact("Edge", (constant("q"), constant("p")))], [])
        refreshed = incremental.refresh(delta, I, old_target)
        recomputed = engine.exchange(delta.apply(I))
        assert refreshed.same_facts(recomputed)
        assert (constant("p"), constant("p")) in refreshed.rows("TwoStep")


class TestBroadRandomCompleteness:
    def test_thirty_seed_sweep(self):
        """A wider sweep than E8's bench: every seed must be complete."""
        from repro.compiler import check_completeness
        from repro.workloads import random_exchange_setting

        incomplete = []
        for seed in range(30):
            mapping, inst = random_exchange_setting(
                seed, n_source_relations=2, n_target_relations=2, n_tgds=2,
                rows_per_relation=4,
            )
            engine = ExchangeEngine.compile(mapping, Statistics.gather(inst))
            report = check_completeness(engine, [inst])
            if not report.complete:
                incomplete.append((seed, report.failures))
        assert not incomplete, incomplete
