"""E7's claim as a test: symmetric lenses are a closed mapping language.

Composition and inversion of symmetric lenses yield symmetric lenses
satisfying the same laws, while st-tgds leave their language under both
operators (Examples 2 and 3).
"""

import pytest

from repro.compiler import ExchangeEngine
from repro.lenses import check_symmetric_laws, observationally_equivalent
from repro.mapping import (
    SOMapping,
    SchemaMapping,
    compose,
    maximum_recovery,
)
from repro.relational import Fact, constant, instance, relation, schema
from repro.workloads import emp_manager_scenario, manager_boss_scenario


class TestStTgdsAreNotClosed:
    def test_composition_leaves_st_tgds(self):
        m12 = emp_manager_scenario().mapping
        m23 = manager_boss_scenario().mapping
        composed = compose(m12, m23)
        assert isinstance(composed, SOMapping)  # not a SchemaMapping

    def test_inversion_leaves_st_tgds(self):
        from repro.workloads import father_mother_scenario

        mapping = father_mother_scenario().mapping
        recovery = maximum_recovery(mapping)
        # The recovery needs a disjunction: not expressible as st-tgds.
        assert any(len(rule.branches) > 1 for rule in recovery.rules)


class TestSymmetricLensesAreClosed:
    @pytest.fixture
    def lenses(self):
        first = ExchangeEngine.compile(emp_manager_scenario().mapping)
        second = ExchangeEngine.compile(manager_boss_scenario().mapping)
        return first.lens.symmetric(), second.lens.symmetric()

    def test_composition_stays_in_language(self, lenses):
        sym1, sym2 = lenses
        composed = sym1.then(sym2)
        source = emp_manager_scenario().sample
        out, complement = composed.putr(source, composed.missing)
        assert "Boss" in out.schema
        # And the composed lens still satisfies the symmetric laws.
        violations = check_symmetric_laws(composed, [source], [out])
        assert violations == []

    def test_inversion_stays_in_language(self, lenses):
        sym1, _ = lenses
        inverted = sym1.invert()
        scenario = emp_manager_scenario()
        source = scenario.sample
        view, c = sym1.putr(source, sym1.missing)
        # The inverse maps the other way and satisfies the (swapped) laws.
        back, _ = inverted.putr(view, c)
        assert back.schema == scenario.source
        assert check_symmetric_laws(inverted, [view], [source]) == []

    def test_double_inversion_is_identity(self, lenses):
        sym1, _ = lenses
        scenario = emp_manager_scenario()
        sequences = [
            [("r", scenario.sample)],
        ]
        assert observationally_equivalent(sym1, sym1.invert().invert(), sequences)

    def test_composition_then_inversion(self, lenses):
        """Closure under *repeated* application of both operators.

        ``(ℓ₁;ℓ₂);(ℓ₁;ℓ₂)⁻¹;((ℓ₁;ℓ₂);(ℓ₁;ℓ₂)⁻¹)`` is a legitimate
        symmetric lens from A back to A — the kind of expression the
        closed-language requirement demands to be meaningful.
        """
        sym1, sym2 = lenses
        forward = sym1.then(sym2)
        loop = forward.then(forward.invert())
        convoluted = loop.then(loop)
        scenario = emp_manager_scenario()
        out, complement = convoluted.putr(scenario.sample, convoluted.missing)
        assert out.schema == scenario.source
        # A second push through the established complement echoes exactly.
        out2, _ = convoluted.putr(scenario.sample, complement)
        assert out2 == scenario.sample


class TestComposedExchangeAgrees:
    def test_lens_composition_matches_mapping_composition(self):
        """Composing the lenses computes the same exchange as composing
        the mappings (up to homomorphic equivalence)."""
        from repro.mapping import compose_sotgd
        from repro.relational import homomorphically_equivalent

        scenario12 = emp_manager_scenario()
        scenario23 = manager_boss_scenario()
        sym = (
            ExchangeEngine.compile(scenario12.mapping).lens.symmetric()
            .then(ExchangeEngine.compile(scenario23.mapping).lens.symmetric())
        )
        so = compose_sotgd(scenario12.mapping, scenario23.mapping)
        I = scenario12.sample
        via_lens, _ = sym.putr(I, sym.missing)
        via_so = so.chase(I)
        assert homomorphically_equivalent(via_lens, via_so)
