"""Property-based tests for the extension features.

Canonical forms, the delta algebra, and incremental exchange — each
checked against its semantic reference over randomized inputs.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import ExchangeEngine
from repro.compiler.incremental import IncrementalExchange
from repro.lenses.delta import InstanceDelta
from repro.relational import (
    Fact,
    Instance,
    LabeledNull,
    constant,
    homomorphically_equivalent,
    relation,
    schema,
)
from repro.relational.canonical import canonical_form, canonically_equal
from repro.stats import Statistics
from repro.workloads import random_exchange_setting

MGR_SCHEMA = schema(relation("Manager", "emp", "mgr"))

values = st.one_of(
    st.sampled_from([constant(x) for x in ["a", "b", "c"]]),
    st.builds(LabeledNull, st.integers(min_value=0, max_value=4)),
)


@st.composite
def manager_instances(draw):
    rows = draw(st.lists(st.tuples(values, values), max_size=5))
    return Instance(MGR_SCHEMA, [Fact("Manager", row) for row in rows])


@settings(max_examples=50, deadline=None)
@given(manager_instances(), st.permutations(list(range(5))))
def test_canonical_form_is_relabeling_invariant(inst, permutation):
    """Relabeling nulls never changes the canonical form."""
    relabeling = {
        LabeledNull(i): LabeledNull(100 + permutation[i]) for i in range(5)
    }
    relabeled = inst.map_values(relabeling)
    assert canonical_form(inst).instance.same_facts(
        canonical_form(relabeled).instance
    )


@settings(max_examples=40, deadline=None)
@given(manager_instances())
def test_canonical_form_is_equivalent_to_original(inst):
    form = canonical_form(inst).instance
    assert homomorphically_equivalent(inst, form.cast(MGR_SCHEMA))


@settings(max_examples=40, deadline=None)
@given(manager_instances(), manager_instances())
def test_canonical_equality_implies_hom_equivalence(left, right):
    if canonically_equal(left, right):
        assert homomorphically_equivalent(left, right)


# --- delta algebra -----------------------------------------------------------


@st.composite
def deltas(draw):
    ins = draw(st.lists(st.tuples(values, values), max_size=3))
    dels = draw(st.lists(st.tuples(values, values), max_size=3))
    return InstanceDelta(
        [Fact("Manager", r) for r in ins], [Fact("Manager", r) for r in dels]
    )


@settings(max_examples=60, deadline=None)
@given(manager_instances(), deltas(), deltas())
def test_delta_composition_is_application_order(inst, d1, d2):
    assert d1.then(d2).apply(inst).same_facts(d2.apply(d1.apply(inst)))


@settings(max_examples=60, deadline=None)
@given(manager_instances(), deltas(), deltas(), deltas())
def test_delta_composition_associative_on_states(inst, d1, d2, d3):
    left = d1.then(d2).then(d3)
    right = d1.then(d2.then(d3))
    assert left.apply(inst).same_facts(right.apply(inst))


@settings(max_examples=60, deadline=None)
@given(manager_instances(), manager_instances())
def test_diff_is_minimal_and_correct(old, new):
    delta = InstanceDelta.diff(old, new)
    assert delta.apply(old).same_facts(new)
    # Minimality: every insert is genuinely new, every delete was present.
    assert all(f not in old for f in delta.inserts)
    assert all(f in old for f in delta.deletes)


# --- incremental exchange -----------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=50))
def test_incremental_refresh_equals_recompute(seed, edit_seed):
    mapping, inst = random_exchange_setting(
        seed, n_source_relations=2, n_target_relations=2, n_tgds=2,
        rows_per_relation=5,
    )
    engine = ExchangeEngine.compile(mapping, Statistics.gather(inst))
    incremental = IncrementalExchange(engine.lens)
    old_target = engine.exchange(inst)

    rng = random.Random(edit_seed)
    facts = sorted(inst.facts(), key=repr)
    deletes = [f for f in facts if rng.random() < 0.3][:3]
    rel = rng.choice(list(mapping.source))
    inserts = [
        Fact(
            rel.name,
            tuple(constant(f"p{edit_seed}_{i}") for i in range(rel.arity)),
        )
    ]
    delta = InstanceDelta(inserts, deletes)
    refreshed = incremental.refresh(delta, inst, old_target)
    recomputed = engine.exchange(delta.apply(inst))
    assert refreshed.same_facts(recomputed)
