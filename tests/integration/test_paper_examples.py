"""Integration tests reproducing the paper's worked examples verbatim.

These are the executable versions of Examples 1–3 and Figures 1–2, the
same checks benchmarks E1–E4 and E9 report on.
"""

import pytest

from repro.mapping import (
    SchemaMapping,
    VisualMapping,
    compose_sotgd,
    is_recovery,
    maximum_recovery,
    recovered_sources,
    subset_property_violations,
    universal_solution,
)
from repro.relational import (
    LabeledNull,
    constant,
    core,
    homomorphically_equivalent,
    instance,
    is_homomorphic,
    relation,
    schema,
)


class TestExampleOne:
    """Example 1: Emp → ∃y Manager, I = {Emp(Alice), Emp(Bob)}."""

    @pytest.fixture
    def setting(self):
        S = schema(relation("Emp", "name"))
        T = schema(relation("Manager", "emp", "mgr"))
        M = SchemaMapping.parse(S, T, "Emp(x) -> exists y . Manager(x, y)")
        I = instance(S, {"Emp": [["Alice"], ["Bob"]]})
        return S, T, M, I

    def test_papers_three_solutions(self, setting):
        S, T, M, I = setting
        J1 = instance(T, {"Manager": [["Alice", "Alice"], ["Bob", "Alice"]]})
        J2 = instance(T, {"Manager": [["Alice", "Bob"], ["Bob", "Ted"]]})
        Jstar = universal_solution(M, I)
        for J in (J1, J2, Jstar):
            assert M.is_solution(I, J)

    def test_jstar_is_most_general(self, setting):
        S, T, M, I = setting
        Jstar = universal_solution(M, I)
        J1 = instance(T, {"Manager": [["Alice", "Alice"], ["Bob", "Alice"]]})
        J2 = instance(T, {"Manager": [["Alice", "Bob"], ["Bob", "Ted"]]})
        assert is_homomorphic(Jstar, J1) and is_homomorphic(Jstar, J2)
        assert not is_homomorphic(J1, Jstar)
        assert not is_homomorphic(J2, Jstar)

    def test_jstar_uses_two_distinct_nulls(self, setting):
        *_ignore, M, I = setting
        Jstar = universal_solution(M, I)
        assert len(Jstar.nulls()) == 2

    def test_jstar_is_core(self, setting):
        *_ignore, M, I = setting
        Jstar = universal_solution(M, I)
        assert core(Jstar) == Jstar


class TestExampleTwo:
    """Example 2: composition needs second-order quantification."""

    @pytest.fixture
    def setting(self):
        A = schema(relation("Emp", "name"))
        B = schema(relation("Manager", "emp", "mgr"))
        C = schema(relation("Boss", "emp", "boss"), relation("SelfMngr", "emp"))
        m12 = SchemaMapping.parse(A, B, "Emp(x) -> exists y . Manager(x, y)")
        m23 = SchemaMapping.parse(
            B,
            C,
            "Manager(x, y) -> Boss(x, y); Manager(x, x) -> SelfMngr(x)",
        )
        return A, B, C, m12, m23

    def test_composition_is_second_order(self, setting):
        *_ignore, m12, m23 = setting
        so = compose_sotgd(m12, m23)
        # Function symbols are genuinely needed: the composed sentence
        # quantifies over a function assigning a boss to every employee.
        assert so.functions
        texts = [repr(c) for c in so.clauses]
        assert any("=" in t for t in texts)  # the x = f(x) equality survives

    def test_composition_semantics_on_papers_reading(self, setting):
        A, B, C, m12, m23 = setting
        so = compose_sotgd(m12, m23)
        I = instance(A, {"Emp": [["e"]]})
        # "there exists a function f that assigns a manager/boss to every
        # employee": any ground boss works...
        K = instance(C, {"Boss": [["e", "b"]]})
        assert so.satisfied_by(I, K)
        # "...and if the boss assigned to e equals f(e), then e should be
        # in SelfMngr": choosing f(e)=e without SelfMngr(e) is inconsistent.
        K_self = instance(C, {"Boss": [["e", "e"]]})
        assert not so.satisfied_by(I, K_self)

    def test_composed_chase_equals_sequential_exchange(self, setting):
        A, B, C, m12, m23 = setting
        so = compose_sotgd(m12, m23)
        I = instance(A, {"Emp": [["Alice"], ["Bob"], ["Eve"]]})
        sequential = universal_solution(m23, universal_solution(m12, I).cast(B))
        assert homomorphically_equivalent(so.chase(I), sequential)


class TestExampleThree:
    """Example 3: Father/Mother → Parent and its maximum recovery."""

    @pytest.fixture
    def setting(self):
        S = schema(relation("Father", "p", "c"), relation("Mother", "p", "c"))
        T = schema(relation("Parent", "p", "c"))
        M = SchemaMapping.parse(
            S, T, "Father(x, y) -> Parent(x, y); Mother(x, y) -> Parent(x, y)"
        )
        I = instance(S, {"Father": [["Leslie", "Alice"]]})
        return S, T, M, I

    def test_best_solution_is_single_parent_fact(self, setting):
        S, T, M, I = setting
        J = universal_solution(M, I)
        assert J.rows("Parent") == {(constant("Leslie"), constant("Alice"))}

    def test_not_fagin_invertible(self, setting):
        S, T, M, I = setting
        I2 = instance(S, {"Mother": [["Leslie", "Alice"]]})
        assert subset_property_violations(M, [I, I2])

    def test_recovery_is_papers_disjunction(self, setting):
        S, T, M, I = setting
        recovery = maximum_recovery(M)
        text = repr(recovery)
        assert "Father" in text and "Mother" in text and "∨" in text

    def test_both_parents_equally_good(self, setting):
        S, T, M, I = setting
        I2 = instance(S, {"Mother": [["Leslie", "Alice"]]})
        recovery = maximum_recovery(M)
        assert is_recovery(M, recovery, [I, I2])
        assert recovered_sources(M, recovery, I, [I, I2]) == [I, I2]


class TestFigureOne:
    """Figure 1: the visual diagrams compile to the printed st-tgds."""

    def test_both_diagrams_round_trip(self):
        takes = schema(relation("Takes", "student", "course"))
        middle = schema(
            relation("Student", "sid", "name"),
            relation("Assgn", "student", "course"),
        )
        enrollment = schema(relation("Enrollment", "sid", "course"))

        upper = VisualMapping(takes, middle)
        c = upper.correspondence()
        c.source("Takes").target("Student", "Assgn")
        c.arrow("Takes.student", "Student.name")
        c.arrow("Takes.student", "Assgn.student")
        c.arrow("Takes.course", "Assgn.course")

        lower = VisualMapping(middle, enrollment)
        c2 = lower.correspondence()
        c2.source("Student", "Assgn").target("Enrollment")
        c2.join("Student.name", "Assgn.student")
        c2.arrow("Student.sid", "Enrollment.sid")
        c2.arrow("Assgn.course", "Enrollment.course")

        I = instance(takes, {"Takes": [["ann", "db"]]})
        mid = universal_solution(upper.compile(), I)
        final = universal_solution(lower.compile(), mid.cast(middle))
        rows = final.rows("Enrollment")
        assert len(rows) == 1
        (row,) = rows
        assert row[1] == constant("db")
        assert isinstance(row[0], LabeledNull)  # sid was invented upstream
