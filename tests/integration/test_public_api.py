"""Tests for the public API surface: everything advertised is importable
and every ``__all__`` entry resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.relational",
    "repro.logic",
    "repro.mapping",
    "repro.lenses",
    "repro.rlens",
    "repro.compiler",
    "repro.stats",
    "repro.channels",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} is advertised but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_are_sorted_and_unique(package):
    module = importlib.import_module(package)
    names = list(module.__all__)
    assert len(names) == len(set(names)), f"duplicates in {package}.__all__"


def test_readme_quickstart_names_exist():
    """The names the README's quickstart uses are in the top namespace."""
    import repro

    for name in [
        "ExchangeEngine",
        "Hints",
        "SchemaMapping",
        "Statistics",
        "instance",
        "relation",
        "schema",
    ]:
        assert hasattr(repro, name)


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_cli_module_importable():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.prog == "repro"


def test_docstrings_on_public_modules():
    for package in PACKAGES:
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} lacks a module docstring"
