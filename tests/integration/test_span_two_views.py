"""A genuine symmetric exchange: two independent views over a universal U.

The paper's span picture in its realistic form: the universal set U is an
HR database; S (a directory) and T (a badge roster) are *both* views of
it through compiled exchange lenses.  ``span_exchange`` yields a
symmetric lens S ↔ T where neither side is master — the complement (the
HR database) "contains all the information of both, and in general even
more besides".
"""

import pytest

from repro.compiler import ExchangeEngine, Hints
from repro.lenses import check_symmetric_laws
from repro.mapping import SchemaMapping
from repro.relational import Fact, constant, instance, relation, schema
from repro.rlens import ConstantPolicy, span_exchange


@pytest.fixture
def setting():
    universal = schema(relation("Person", "name", "site", "badge"))
    directory = schema(relation("Directory", "name", "site"))
    roster = schema(relation("Badge", "name", "badge"))

    to_directory = SchemaMapping.parse(
        universal, directory, "Person(n, s, b) -> Directory(n, s)"
    )
    to_roster = SchemaMapping.parse(
        universal, roster, "Person(n, s, b) -> Badge(n, b)"
    )
    # The directory leg must fill Person.badge when a directory row is
    # (re)justified: restore it via the FD name → badge from the pre-edit
    # universe, falling back to a default for brand-new people.  The
    # roster leg symmetrically restores Person.site via name → site.
    from repro.relational import FunctionalDependency
    from repro.rlens import FdPolicy

    hints = Hints()
    hints.set_column_policy(
        "Person",
        "badge",
        FdPolicy(
            FunctionalDependency("Person", ("name",), ("badge",)),
            fallback=ConstantPolicy("unissued"),
        ),
    )
    hints2 = Hints()
    hints2.set_column_policy(
        "Person",
        "site",
        FdPolicy(
            FunctionalDependency("Person", ("name",), ("site",)),
            fallback=ConstantPolicy("unassigned"),
        ),
    )
    left = ExchangeEngine.compile(to_directory, hints=hints).lens
    right = ExchangeEngine.compile(to_roster, hints=hints2).lens
    sym = span_exchange(left, right)

    hr = instance(
        universal,
        {
            "Person": [
                ["ann", "berlin", "B1"],
                ["bob", "lisbon", "B2"],
            ]
        },
    )
    return sym, left, right, hr


def directory_fact(name, site):
    return Fact("Directory", (constant(name), constant(site)))


def badge_fact(name, badge):
    return Fact("Badge", (constant(name), constant(badge)))


class TestTwoViewSpan:
    def test_putr_derives_the_other_view(self, setting):
        sym, left, right, hr = setting
        directory_state = left.get(hr)
        roster, complement = sym.putr(directory_state, sym.missing)
        # From a fresh complement the badges are policy defaults...
        badges = {r[1] for r in roster.rows("Badge")}
        assert badges == {constant("unissued")}

    def test_fd_policies_align_modifications(self, setting):
        """The paper's FD policy does alignment work: re-justified rows
        recover the other view's private column from the pre-edit U."""
        sym, left, right, hr = setting
        # Seed U with the true HR data: fold the real roster in, then the
        # real directory. The FD policies keep each side's private column
        # alive across the pushes.
        real_roster = right.get(hr)
        _, complement = sym.putl(real_roster, sym.missing)
        roster_after, complement = sym.putr(left.get(hr), complement)
        assert badge_fact("ann", "B1") in roster_after
        assert badge_fact("bob", "B2") in roster_after

    def test_value_change_keeps_other_sides_column(self, setting):
        """Changing ann's badge (delete+insert to the state-based put)
        does not lose her site: the site FD restores it."""
        sym, left, right, hr = setting
        real_roster = right.get(hr)
        _, complement = sym.putl(real_roster, sym.missing)
        directory_before, complement_view = sym.putr(
            left.get(hr), complement
        )
        complement = complement_view
        reissued = right.get(hr).without_facts(
            [badge_fact("ann", "B1")]
        ).with_facts([badge_fact("ann", "B9")])
        directory_now, complement = sym.putl(reissued, complement)
        # ann's site survived the badge change...
        assert directory_fact("ann", "berlin") in directory_now
        # ...and her new badge is in the universe.
        roster_now, _ = sym.putr(directory_now, complement)
        assert badge_fact("ann", "B9") in roster_now
        assert badge_fact("bob", "B2") in roster_now

    def test_edit_on_either_side_propagates(self, setting):
        sym, left, right, hr = setting
        directory_state = left.get(hr)
        _, complement = sym.putr(directory_state, sym.missing)
        # Directory side hires cyd: the roster side sees the fallback
        # badge (the FD has never seen cyd).
        edited = directory_state.with_facts([directory_fact("cyd", "rome")])
        roster, complement = sym.putr(edited, complement)
        assert badge_fact("cyd", "unissued") in roster
        # Roster side issues the badge; cyd's site survives via the FD.
        issued = roster.without_facts(
            [badge_fact("cyd", "unissued")]
        ).with_facts([badge_fact("cyd", "B3")])
        directory_after, complement = sym.putl(issued, complement)
        assert directory_fact("cyd", "rome") in directory_after
        assert directory_fact("ann", "berlin") in directory_after
        assert directory_fact("bob", "lisbon") in directory_after

    def test_symmetric_laws_hold(self, setting):
        sym, left, right, hr = setting
        directory_state = left.get(hr)
        roster_state = right.get(hr)
        violations = check_symmetric_laws(
            sym, [directory_state], [roster_state]
        )
        assert violations == []

    def test_inversion_swaps_the_views(self, setting):
        sym, left, right, hr = setting
        inverted = sym.invert()
        roster_state = right.get(hr)
        directory_out, _ = inverted.putr(roster_state, inverted.missing)
        assert "Directory" in directory_out.schema
