"""Property-based tests (hypothesis) for the end-to-end exchange engine.

Random mappings and instances drive the core invariants:

* the compiled lens's forward direction is homomorphically equivalent to
  the chase (compiler completeness, E8);
* GetPut is exact, PutGet holds modulo homomorphic equivalence;
* the symmetric wrapper satisfies the round-trip laws.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import ExchangeEngine
from repro.mapping import universal_solution
from repro.relational import homomorphically_equivalent
from repro.stats import Statistics
from repro.workloads import (
    apply_edits,
    random_exchange_setting,
    random_view_edits,
)

seeds = st.integers(min_value=0, max_value=200)


def _setting(seed):
    mapping, inst = random_exchange_setting(
        seed, n_source_relations=2, n_target_relations=2, n_tgds=2,
        rows_per_relation=5,
    )
    engine = ExchangeEngine.compile(mapping, Statistics.gather(inst))
    return mapping, inst, engine


@settings(max_examples=40, deadline=None)
@given(seeds)
def test_compiled_forward_equals_chase(seed):
    mapping, inst, engine = _setting(seed)
    assert homomorphically_equivalent(
        engine.exchange(inst), universal_solution(mapping, inst)
    )


@settings(max_examples=40, deadline=None)
@given(seeds)
def test_getput_is_exact(seed):
    mapping, inst, engine = _setting(seed)
    view = engine.exchange(inst)
    assert engine.put_back(view, inst) == inst


@settings(max_examples=30, deadline=None)
@given(seeds, st.integers(min_value=0, max_value=50))
def test_putget_modulo_homomorphic_equivalence(seed, edit_seed):
    mapping, inst, engine = _setting(seed)
    view = engine.exchange(inst)
    rng = random.Random(edit_seed)
    # Deletions only: inserted random facts may not be producible by the
    # random mapping (a legitimate rejection, tested separately).
    edits = random_view_edits(
        view, rng, n_edits=min(3, view.size()), insert_probability=0.0
    )
    edited = apply_edits(view, edits)
    new_source = engine.put_back(edited, inst)
    final_view = engine.exchange(new_source)
    # Deletion propagation may remove sibling facts (shared premise rows),
    # so the final view is contained in the edited view up to homomorphism.
    from repro.relational import is_homomorphic

    assert is_homomorphic(final_view, edited) or final_view.same_facts(edited)
    # Deleted facts stay deleted.
    for edit in edits:
        assert edit.fact not in final_view


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_symmetric_wrapper_round_trips(seed):
    mapping, inst, engine = _setting(seed)
    sym = engine.symmetric_session()
    view, complement = sym.putr(inst, sym.missing)
    back, complement2 = sym.putl(view, complement)
    assert back == inst
    view2, _ = sym.putr(back, complement2)
    assert view2 == view


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_chase_solution_property(seed):
    mapping, inst, _ = _setting(seed)
    solution = universal_solution(mapping, inst)
    assert mapping.is_solution(inst, solution)
