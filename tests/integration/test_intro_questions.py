"""The introduction's Person1 → Person2 questions, answered executably.

The paper opens with four questions about a "trivial" exchange; each test
here is one of those questions with the machinery's answer.
"""

import pytest

from repro.compiler import ExchangeEngine, Hints
from repro.relational import (
    Fact,
    FunctionalDependency,
    constant,
    is_null,
)
from repro.rlens import ConstantPolicy, EnvironmentPolicy, FdPolicy
from repro.stats import Statistics
from repro.workloads import person_scenario


@pytest.fixture
def scenario():
    return person_scenario()


@pytest.fixture
def engine(scenario):
    return ExchangeEngine.compile(
        scenario.mapping, Statistics.gather(scenario.sample)
    )


class TestHowDoesOnePopulateSalary:
    """'Should it be filled in by nulls, or as a function of ...?'"""

    def test_default_answer_is_nulls(self, scenario, engine):
        exchanged = engine.exchange(scenario.sample)
        salary_position = scenario.target["Person2"].position_of("salary")
        assert all(
            is_null(row[salary_position]) for row in exchanged.rows("Person2")
        )

    def test_nulls_are_canonical_hence_updatable_later(self, scenario, engine):
        """Two exchanges agree on which placeholder stands for which person."""
        first = engine.exchange(scenario.sample)
        second = engine.exchange(scenario.sample)
        assert first == second


class TestHowDoesOnePopulateZipCode:
    """'Should it be filled in by nulls, or as a function of the City?'"""

    def test_the_mapping_answers_via_the_lookup_join(self, scenario, engine):
        exchanged = engine.exchange(scenario.sample)
        zip_position = scenario.target["Person2"].position_of("zipcode")
        zips = {row[zip_position] for row in exchanged.rows("Person2")}
        assert zips == {constant("49001"), constant("49002")}


class TestHowAreChangesMigratedBack:
    """'how are those changes migrated back to the Person1 instance?'"""

    def test_deletion_migrates_back(self, scenario, engine):
        exchanged = engine.exchange(scenario.sample)
        alice = next(
            f for f in exchanged.facts() if f.row[1] == constant("Alice")
        )
        edited = exchanged.without_facts([alice])
        back = engine.put_back(edited, scenario.sample)
        names = {row[1] for row in back.rows("Person1")}
        assert constant("Alice") not in names

    def test_insertion_migrates_back(self, scenario, engine):
        exchanged = engine.exchange(scenario.sample)
        new_person = Fact(
            "Person2",
            (constant(9), constant("Dana"), constant(1), constant("49001")),
        )
        back = engine.put_back(exchanged.with_facts([new_person]), scenario.sample)
        dana = next(r for r in back.rows("Person1") if r[0] == constant(9))
        assert dana[1] == constant("Dana")


class TestIsTheAgeFieldPreserved:
    """'Is the Age field preserved? How does one calculate City?'

    The answer is a *policy question*, and every one of the paper's four
    policy options works.
    """

    def _hints(self, policy_for_age):
        hints = Hints(environment={"default_age": 18})
        hints.set_column_policy("Person1", "age", policy_for_age)
        return hints

    def _insert_dana(self, scenario, engine):
        exchanged = engine.exchange(scenario.sample)
        new_person = Fact(
            "Person2",
            (constant(9), constant("Dana"), constant(1), constant("49001")),
        )
        back = engine.put_back(exchanged.with_facts([new_person]), scenario.sample)
        return next(r for r in back.rows("Person1") if r[0] == constant(9))

    def test_null_answer(self, scenario):
        engine = ExchangeEngine.compile(scenario.mapping)
        dana = self._insert_dana(scenario, engine)
        assert is_null(dana[2])

    def test_constant_answer(self, scenario):
        engine = ExchangeEngine.compile(
            scenario.mapping, hints=self._hints(ConstantPolicy(0))
        )
        dana = self._insert_dana(scenario, engine)
        assert dana[2] == constant(0)

    def test_environment_answer(self, scenario):
        engine = ExchangeEngine.compile(
            scenario.mapping, hints=self._hints(EnvironmentPolicy("default_age"))
        )
        dana = self._insert_dana(scenario, engine)
        assert dana[2] == constant(18)

    def test_existing_age_survives_round_trips(self, scenario, engine):
        """Ages of people untouched by the edit are never disturbed."""
        exchanged = engine.exchange(scenario.sample)
        back = engine.put_back(exchanged, scenario.sample)
        assert back == scenario.sample


class TestGrandTour:
    """Every shipped scenario supports the full workflow end to end."""

    def test_compile_exchange_put_questions_recovery(self):
        from repro.mapping import is_recovery, maximum_recovery
        from repro.workloads import all_scenarios

        for scenario in all_scenarios():
            engine = ExchangeEngine.compile(
                scenario.mapping, Statistics.gather(scenario.sample)
            )
            exchanged = engine.exchange(scenario.sample)
            assert engine.put_back(exchanged, scenario.sample) == scenario.sample
            assert isinstance(engine.show_plan(), str)
            engine.policy_questions()  # must not raise
            recovery = maximum_recovery(scenario.mapping)
            assert is_recovery(scenario.mapping, recovery, [scenario.sample]), (
                scenario.name
            )
            session = engine.symmetric_session()
            view, complement = session.putr(scenario.sample, session.missing)
            back, _ = session.putl(view, complement)
            assert back == scenario.sample, scenario.name
