"""Tracer behavior: nesting, timing monotonicity, the no-op fast path."""

import time

import pytest

from repro.obs import (
    NoopTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
    tracing,
)


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        roots = tracer.spans()
        assert [s.name for s in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.spans()] == ["first", "second"]

    def test_walk_is_depth_first_with_depths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        (root,) = tracer.spans()
        walked = [(s.name, depth) for s, depth in root.walk()]
        assert walked == [("a", 0), ("b", 1), ("c", 2), ("d", 1)]

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_exception_finishes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.finished
        assert span.attributes["error"] == "ValueError"
        assert tracer.current is None


class TestTiming:
    def test_durations_are_monotone_child_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        (outer,) = tracer.spans()
        (inner,) = outer.children
        assert inner.duration > 0
        assert outer.duration >= inner.duration
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_open_span_duration_grows(self):
        span = Span("open")
        first = span.duration
        time.sleep(0.001)
        assert span.duration > first
        span.finish()
        frozen = span.duration
        assert span.duration == frozen

    def test_finish_is_idempotent(self):
        span = Span("once")
        span.finish()
        end = span.end
        span.finish()
        assert span.end == end


class TestAttributes:
    def test_span_attributes_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("op", size=3) as span:
            span.set(result=9)
        (recorded,) = tracer.spans()
        assert recorded.attributes == {"size": 3, "result": 9}

    def test_annotate_targets_current_span(self):
        tracer = Tracer()
        with tracer.span("op"):
            tracer.annotate(flag=True)
        assert tracer.spans()[0].attributes == {"flag": True}
        tracer.annotate(ignored=1)  # no open span: no-op, no error


class TestNoopTracer:
    def test_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("anything", x=1) as span:
            span.set(y=2)
        assert tracer.spans() == []
        assert tracer.current is None
        assert not tracer.enabled

    def test_span_is_a_shared_singleton(self):
        tracer = NoopTracer()
        assert tracer.span("a") is tracer.span("b")


class TestGlobalTracer:
    def test_default_is_noop(self):
        assert not get_tracer().enabled

    def test_enable_disable_roundtrip(self):
        tracer = enable()
        try:
            assert get_tracer() is tracer
            assert tracer.enabled
        finally:
            disable()
        assert not get_tracer().enabled

    def test_tracing_scopes_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            with get_tracer().span("scoped"):
                pass
        assert get_tracer() is before
        assert [s.name for s in tracer.spans()] == ["scoped"]

    def test_set_tracer_none_restores_default(self):
        set_tracer(Tracer())
        set_tracer(None)
        assert not get_tracer().enabled
