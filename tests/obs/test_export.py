"""Exporters: text tree rendering and the JSON-lines round trip."""

import json

from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_duration,
    render_metrics,
    render_trace,
    span_records,
    trace_to_json_lines,
    write_json_lines,
)


def sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("chase", variant="naive") as span:
        with tracer.span("chase.round", round=1):
            pass
        span.set(facts=4)
    with tracer.span("lens.get"):
        pass
    return tracer


class TestFormatDuration:
    def test_units(self):
        assert format_duration(2.5) == "2.50s"
        assert format_duration(0.0456) == "45.60ms"
        assert format_duration(0.000789) == "789µs"


class TestTextTree:
    def test_renders_names_durations_and_attributes(self):
        text = render_trace(sample_tracer())
        assert text.startswith("Trace (2 root spans)")
        assert "── chase" in text
        assert "── chase.round" in text
        assert "variant='naive'" in text
        assert "facts=4" in text
        # Child indented deeper than parent.
        lines = text.splitlines()
        chase_line = next(l for l in lines if "── chase " in l)
        round_line = next(l for l in lines if "chase.round" in l)
        assert round_line.index("──") > chase_line.index("──")

    def test_attributes_can_be_suppressed(self):
        text = render_trace(sample_tracer(), attributes=False)
        assert "variant" not in text

    def test_accepts_span_lists_too(self):
        tracer = sample_tracer()
        assert render_trace(tracer.spans()) == render_trace(tracer)


class TestJsonLines:
    def test_round_trip(self):
        tracer = sample_tracer()
        lines = trace_to_json_lines(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 3  # chase, chase.round, lens.get
        by_name = {r["name"]: r for r in records}
        assert by_name["chase"]["parent"] is None
        assert by_name["chase.round"]["parent"] == by_name["chase"]["id"]
        assert by_name["chase.round"]["depth"] == 1
        assert by_name["chase"]["attributes"] == {"variant": "naive", "facts": 4}
        assert all(r["duration"] >= 0 for r in records)

    def test_records_match_walk_order(self):
        tracer = sample_tracer()
        names = [r["name"] for r in span_records(tracer)]
        assert names == ["chase", "chase.round", "lens.get"]

    def test_write_json_lines(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_json_lines(tracer, path)
        assert count == 3
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_empty_trace(self, tmp_path):
        tracer = Tracer()
        assert trace_to_json_lines(tracer) == ""
        path = tmp_path / "empty.jsonl"
        assert write_json_lines(tracer, path) == 0
        assert path.read_text() == ""

    def test_non_json_attributes_fall_back_to_repr(self):
        tracer = Tracer()
        with tracer.span("op", obj={1, 2}):
            pass
        (record,) = (json.loads(l) for l in trace_to_json_lines(tracer).splitlines())
        assert "1" in record["attributes"]["obj"]


class TestRenderMetrics:
    def test_sections(self):
        registry = MetricsRegistry()
        registry.increment("chase.tgd_firings", 3)
        registry.gauge("observed.unit.tgd_0").set(7)
        registry.observe("lens.get.seconds", 0.002)
        text = render_metrics(registry)
        assert "chase.tgd_firings = 3" in text
        assert "observed.unit.tgd_0 = 7" in text
        assert "lens.get.seconds" in text and "p95" in text

    def test_empty_registry(self):
        assert "no metrics recorded" in render_metrics(MetricsRegistry())


class TestMetricsSnapshot:
    def test_histogram_line_renders_all_percentiles(self):
        """Snapshot of the text-tree metrics exporter's histogram line."""
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("queue.depth", float(value))
        text = render_metrics(registry)
        assert "── histograms (count / p50 / p95 / p99 / max):" in text
        assert "   queue.depth: n=100  p50=50  p95=95  p99=99  max=100" in text

    def test_duration_histograms_humanize(self):
        registry = MetricsRegistry()
        registry.observe("lens.get.seconds", 0.002)
        line = next(
            l for l in render_metrics(registry).splitlines() if "lens.get" in l
        )
        assert "p99=2.00ms" in line


class TestSpansFromRecords:
    def test_round_trip_rebuilds_the_forest(self):
        from repro.obs import spans_from_records

        tracer = sample_tracer()
        records = list(span_records(tracer))
        rebuilt = spans_from_records(records)
        assert [s.name for s in rebuilt] == ["chase", "lens.get"]
        (chase, _) = rebuilt
        assert [c.name for c in chase.children] == ["chase.round"]
        assert chase.attributes["facts"] == 4
        # Fresh ids: a re-export never collides with the original ids.
        original_ids = {r["id"] for r in records}
        new_ids = {r["id"] for r in span_records(rebuilt)}
        assert original_ids.isdisjoint(new_ids)

    def test_attach_grafts_under_current_span(self):
        from repro.obs import spans_from_records

        worker = Tracer()
        with worker.span("chase", shard=0):
            pass
        shipped = list(span_records(worker))

        parent = Tracer()
        with parent.span("exchange.workers") as span:
            for root in spans_from_records(shipped):
                parent.attach(root)
        (root,) = parent.spans()
        assert [c.name for c in root.children] == ["chase"]
        assert root.children[0].attributes["shard"] == 0


class TestProvenanceExport:
    def make_log(self):
        from repro.provenance import ProvenanceLog
        from repro.relational import constant
        from repro.relational.instance import Fact
        from repro.relational.values import LabeledNull

        log = ProvenanceLog()
        log.record_firing(
            "tgd_0",
            "S(x) -> T(x)",
            "st_tgds",
            [Fact("S", (constant("a"),))],
            {"x": constant("a")},
            {},
            [Fact("T", (constant("a"),))],
        )
        log.record_rewrite(
            "egd_0", "e", LabeledNull(1), LabeledNull(2), [], {}
        )
        return log

    def test_json_lines_one_record_per_line(self):
        from repro.obs import provenance_to_json_lines

        lines = provenance_to_json_lines(self.make_log()).splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["derivation", "rewrite"]
        assert records[0]["rule_id"] == "tgd_0"

    def test_write_returns_count(self, tmp_path):
        from repro.obs import write_provenance_json_lines

        path = tmp_path / "prov.jsonl"
        assert write_provenance_json_lines(self.make_log(), path) == 2
        assert len(path.read_text().splitlines()) == 2

    def test_noop_store_exports_nothing(self, tmp_path):
        from repro.obs import write_provenance_json_lines
        from repro.provenance import NOOP

        path = tmp_path / "empty.jsonl"
        assert write_provenance_json_lines(NOOP, path) == 0
        assert path.read_text() == ""
