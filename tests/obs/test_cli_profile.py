"""CLI observability: ``repro profile``, ``--trace`` and ``--trace-json``."""

import json

import pytest

from repro.cli import main
from repro.obs import get_registry, get_tracer
from repro.relational import (
    instance,
    instance_to_json,
    loads_instance,
    relation,
    schema,
    schema_to_json,
)


@pytest.fixture
def files(tmp_path):
    source = schema(relation("Emp", "name"))
    target = schema(relation("Manager", "emp", "mgr"))
    schemas_file = tmp_path / "schemas.json"
    schemas_file.write_text(
        json.dumps(
            {"source": schema_to_json(source), "target": schema_to_json(target)}
        )
    )
    mapping_file = tmp_path / "mapping.tgd"
    mapping_file.write_text("Emp(x) -> exists y . Manager(x, y)\n")
    data_file = tmp_path / "source.json"
    data = instance(source, {"Emp": [["Alice"], ["Bob"]]})
    data_file.write_text(json.dumps(instance_to_json(data)))
    return tmp_path, schemas_file, mapping_file, data_file


def run(argv):
    return main([str(a) for a in argv])


class TestProfile:
    def test_prints_span_tree_and_metrics(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            ["profile", "--schemas", schemas, "--mapping", mapping, "--data", data]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The acceptance bar: chase, compile, plan, get and put stages.
        for stage in ("chase", "compile", "plan", "lens.get", "lens.put"):
            assert stage in out, f"span tree missing {stage}"
        # Nonzero timings: at least some spans report µs/ms/s durations.
        assert "µs" in out or "ms" in out or "s" in out
        assert "Metrics" in out
        assert "chase.tgd_firings = 2" in out
        assert "observed.unit.tgd_0 = 2" in out

    def test_verbose_appends_cardinalities(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            [
                "profile",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cardinalities (estimated vs observed)" in out
        assert "observed = 2" in out

    def test_repeat_multiplies_round_trips(self, files, capsys):
        _, schemas, mapping, data = files
        run(
            [
                "profile",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--repeat", "3",
            ]
        )
        out = capsys.readouterr().out
        assert "lens.put.calls = 3" in out

    def test_profile_restores_global_tracer(self, files, capsys):
        _, schemas, mapping, data = files
        before_tracer, before_registry = get_tracer(), get_registry()
        run(["profile", "--schemas", schemas, "--mapping", mapping, "--data", data])
        assert get_tracer() is before_tracer
        assert get_registry() is before_registry


class TestTraceFlags:
    def test_trace_goes_to_stderr_stdout_stays_parseable(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            [
                "exchange",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--trace",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        restored = loads_instance(captured.out)  # stdout unpolluted
        assert len(restored.rows("Manager")) == 2
        assert "── lens.get" in captured.err
        assert "Metrics" in captured.err

    def test_trace_json_writes_parseable_lines(self, files, capsys):
        tmp, schemas, mapping, data = files
        trace_file = tmp / "trace.jsonl"
        code = run(
            [
                "exchange",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--trace-json", trace_file,
            ]
        )
        assert code == 0
        lines = trace_file.read_text().strip().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        names = {record["name"] for record in records}
        assert "lens.get" in names and "compile" in names
        roots = [r for r in records if r["parent"] is None]
        assert all(r["duration"] >= 0 for r in records)
        assert roots

    def test_trace_json_unwritable_path_is_a_clean_error(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            [
                "exchange",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--trace-json", "/nonexistent-dir/trace.jsonl",
            ]
        )
        assert code == 2
        captured = capsys.readouterr()
        loads_instance(captured.out)  # the exchange itself still completed
        assert "error: cannot write trace to" in captured.err

    def test_chase_subcommand_traces_the_chase(self, files, capsys):
        _, schemas, mapping, data = files
        run(
            [
                "chase",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--trace",
            ]
        )
        err = capsys.readouterr().err
        assert "── chase" in err
        assert "chase.tgd_firings = 2" in err

    def test_plan_verbose_without_trace(self, files, capsys):
        from repro.obs import collecting

        _, schemas, mapping, data = files
        # Scope a fresh registry: the process-global one may hold gauges
        # from earlier CLI invocations in this test session.
        with collecting():
            code = run(
                [
                    "plan",
                    "--schemas", schemas,
                    "--mapping", mapping,
                    "--data", data,
                    "--verbose",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "cardinalities (estimated vs observed)" in out
        assert "no exchange observed yet" in out
