"""Instrumentation threaded through the pipeline actually reports.

Covers the chase (spans, statistics folding, partial statistics on
failing runs), the compiler/lens (compile/plan/get/put spans, observed
cardinalities, explain(verbose)), the lens laws, and evolution-channel
propagation counters.
"""

import pytest

from repro.compiler import ExchangeEngine
from repro.channels import AddColumn, DropColumn, propagate_all, propagate_primitive
from repro.lenses.laws import check_getput, check_putget
from repro.logic.parser import parse_conjunction, parse_rule
from repro.logic.terms import Var
from repro.mapping import SchemaMapping, StTgd, chase, universal_solution
from repro.mapping.chase import ChaseFailure, ChaseNonTermination
from repro.mapping.dependencies import Egd, TargetTgd
from repro.obs import collecting, tracing
from repro.options import ExchangeOptions
from repro.relational import Attribute, instance, relation, schema
from repro.stats import Statistics
from repro.workloads import emp_manager_scenario


def parse_tgd(text):
    return StTgd.parse(text)


@pytest.fixture
def observed():
    """Fresh tracer + registry scoped around each test."""
    with tracing() as tracer, collecting() as registry:
        yield tracer, registry


def span_names(tracer):
    return [span.name for root in tracer.spans() for span, _ in root.walk()]


class TestChaseInstrumentation:
    def test_chase_produces_spans_and_counters(self, observed):
        tracer, registry = observed
        scenario = emp_manager_scenario()
        result = chase(scenario.mapping, scenario.sample)
        names = span_names(tracer)
        assert "chase" in names and "chase.st_tgds" in names
        assert registry.counter("chase.tgd_firings").value == result.statistics.tgd_firings > 0
        assert registry.counter("chase.nulls_created").value == result.statistics.nulls_created

    def test_as_dict_matches_fields(self):
        scenario = emp_manager_scenario()
        stats = chase(scenario.mapping, scenario.sample).statistics
        assert stats.as_dict() == {
            "tgd_firings": stats.tgd_firings,
            "egd_firings": stats.egd_firings,
            "target_tgd_firings": stats.target_tgd_firings,
            "nulls_created": stats.nulls_created,
            "rounds": stats.rounds,
        }
        # repr derives from as_dict, so the two cannot drift apart.
        assert f"tgd={stats.tgd_firings}" in repr(stats)

    def test_chase_failure_carries_partial_statistics(self, observed):
        tracer, registry = observed
        source = schema(relation("Boss", "n", "b"))
        target = schema(relation("Manager", "emp", "mgr"))
        key = Egd(
            parse_conjunction("Manager(x, y), Manager(x, z)"), Var("y"), Var("z")
        )
        mapping = SchemaMapping(
            source, target, [parse_tgd("Boss(x, b) -> Manager(x, b)")], [key]
        )
        I = instance(source, {"Boss": [["ann", "mona"], ["ann", "rita"]]})
        with pytest.raises(ChaseFailure) as excinfo:
            universal_solution(mapping, I)
        stats = excinfo.value.statistics
        assert stats is not None
        assert stats.tgd_firings == 2  # both Boss rows fired before the egd conflict
        # Even the failing run published its counters.
        assert registry.counter("chase.tgd_firings").value == 2

    def test_nontermination_carries_partial_statistics(self):
        source = schema(relation("A", "x"))
        target = schema(relation("E", "x", "y"))
        # E(x, y) → ∃z E(y, z): not weakly acyclic, chases forever.
        loop = parse_rule("E(x, y) -> exists z . E(y, z)")
        mapping = SchemaMapping(
            source,
            target,
            [parse_tgd("A(x) -> exists y . E(x, y)")],
            [TargetTgd(loop.lhs, loop.branches[0][1])],
        )
        I = instance(source, {"A": [["a"]]})
        with pytest.raises(ChaseNonTermination) as excinfo:
            chase(mapping, I, options=ExchangeOptions(max_steps=25))
        stats = excinfo.value.statistics
        assert stats is not None
        assert stats.target_tgd_firings > 0
        assert stats.nulls_created > 0


class TestPipelineInstrumentation:
    def test_compile_get_put_spans(self, observed):
        tracer, registry = observed
        scenario = emp_manager_scenario()
        engine = ExchangeEngine.compile(
            scenario.mapping, Statistics.gather(scenario.sample)
        )
        target = engine.exchange(scenario.sample)
        engine.put_back(target, scenario.sample)
        names = span_names(tracer)
        for expected in ("compile", "plan", "plan.tgd", "lens.get",
                         "unit.forward", "lens.put"):
            assert expected in names, f"missing span {expected}"
        assert registry.counter("lens.get.calls").value >= 1
        assert registry.counter("lens.put.calls").value == 1
        assert registry.histogram("lens.get.seconds").count >= 1

    def test_observed_cardinalities_feed_explain(self, observed):
        _, registry = observed
        scenario = emp_manager_scenario()
        engine = ExchangeEngine.compile(
            scenario.mapping, Statistics.gather(scenario.sample)
        )
        before = engine.explain(verbose=True)
        assert "no exchange observed yet" in before
        engine.exchange(scenario.sample)
        after = engine.explain(verbose=True)
        assert "cardinalities (estimated vs observed)" in after
        assert "observed = 2" in after  # two Emp rows → two Manager facts
        # explain() extends the raw plan text with analyzer diagnostics.
        assert engine.explain().startswith(engine.show_plan())

    def test_timed_get_put_on_relational_lens(self, observed):
        tracer, _ = observed
        scenario = emp_manager_scenario()
        engine = ExchangeEngine.compile(scenario.mapping)
        view = engine.lens.timed_get(scenario.sample)
        engine.lens.timed_put(view, scenario.sample)
        names = span_names(tracer)
        assert "rlens.get" in names and "rlens.put" in names


class TestLawCheckInstrumentation:
    def test_law_checks_are_counted(self, observed):
        tracer, registry = observed
        scenario = emp_manager_scenario()
        engine = ExchangeEngine.compile(scenario.mapping)
        violations = check_getput(engine.lens, [scenario.sample])
        assert violations == []
        views = lambda s: [engine.lens.get(s)]
        check_putget(engine.lens, [scenario.sample], views)
        assert registry.counter("laws.checks").value == 2
        assert registry.counter("laws.checks.GetPut").value == 1
        assert registry.counter("laws.checks.PutGet").value == 1
        assert registry.counter("laws.violations").value == 0
        assert span_names(tracer).count("laws.check") == 2


class TestChannelInstrumentation:
    def test_propagation_counters(self, observed):
        _, registry = observed
        source = schema(relation("Emp", "name", "dept"))
        target = schema(relation("Roster", "name"))
        mapping = SchemaMapping.parse(source, target, "Emp(n, d) -> Roster(n)")
        step = propagate_primitive(mapping, AddColumn("Emp", Attribute("salary")))
        propagate_primitive(step.mapping, DropColumn("Emp", "dept"))
        assert registry.counter("channels.propagate.AddColumn").value == 1
        assert registry.counter("channels.propagate.DropColumn").value == 1
        assert registry.counter("channels.propagations").value == 2

    def test_induced_and_notes_counted(self, observed):
        _, registry = observed
        source = schema(relation("Emp", "name", "dept"))
        target = schema(relation("Roster", "name", "dept"))
        mapping = SchemaMapping.parse(source, target, "Emp(n, d) -> Roster(n, d)")
        result = propagate_all(mapping, [DropColumn("Emp", "dept")])
        assert result.induced  # dropping an exported column induces a target drop
        assert registry.counter("channels.induced_primitives").value == len(
            result.induced
        )
        assert registry.counter("channels.information_loss_notes").value == len(
            result.notes
        )
