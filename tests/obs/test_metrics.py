"""Metrics instruments: counters, gauges, histogram percentiles, registry."""

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    collecting,
    get_registry,
    set_registry,
)


class TestCounterAndGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_increment_shorthand(self):
        registry = MetricsRegistry()
        registry.increment("x")
        registry.increment("x", 2)
        assert registry.counter("x").value == 3

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rows")
        assert gauge.value is None
        gauge.set(10)
        gauge.set(3)
        assert registry.gauge("rows").value == 3

    def test_instruments_are_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(100) == 100
        assert h.max == 100
        assert h.min == 1

    def test_single_observation(self):
        h = Histogram("t")
        h.observe(7.5)
        assert h.percentile(50) == 7.5
        assert h.percentile(95) == 7.5
        assert h.summary()["count"] == 1

    def test_empty_histogram_is_all_zero(self):
        h = Histogram("t")
        assert h.percentile(50) == 0.0
        assert h.summary() == {
            "count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }

    def test_percentile_rejects_out_of_range(self):
        h = Histogram("t")
        h.observe(1)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_unsorted_observations(self):
        h = Histogram("t")
        for v in [9, 1, 5, 3, 7]:
            h.observe(v)
        assert h.percentile(50) == 5
        assert h.mean == 5.0


class TestRegistry:
    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.increment("c", 2)
        registry.gauge("g").set(1.5)
        registry.observe("h", 0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["p50"] == 0.25

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.increment("c")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_collecting_scopes_and_restores(self):
        before = get_registry()
        with collecting() as registry:
            assert get_registry() is registry
            get_registry().increment("scoped")
        assert get_registry() is before
        assert registry.counter("scoped").value == 1

    def test_set_registry_none_restores_default(self):
        set_registry(MetricsRegistry())
        set_registry(None)
        assert get_registry() is not None
