"""Tests for the ``repro lint`` subcommand (text, JSON, exit codes)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.relational import relation, schema, schema_to_json


FIXTURES = Path(__file__).parent / "fixtures"


def run(argv):
    return main([str(a) for a in argv])


@pytest.fixture
def clean_files(tmp_path):
    source = schema(relation("Emp", "name"))
    target = schema(relation("Person", "name"))
    schemas = tmp_path / "schemas.json"
    schemas.write_text(
        json.dumps(
            {"source": schema_to_json(source), "target": schema_to_json(target)}
        )
    )
    mapping = tmp_path / "mapping.tgd"
    mapping.write_text("Emp(x) -> Person(x)\n")
    return schemas, mapping


class TestExitCodes:
    def test_clean_mapping_exits_zero(self, clean_files, capsys):
        schemas, mapping = clean_files
        assert run(["lint", "--schemas", schemas, "--mapping", mapping]) == 0
        assert "clean" in capsys.readouterr().out

    def test_quickstart_example_exits_zero(self, capsys):
        root = Path(__file__).resolve().parents[2]
        code = run(
            [
                "lint",
                "--schemas",
                root / "examples" / "quickstart" / "schemas.json",
                "--mapping",
                root / "examples" / "quickstart" / "mapping.tgd",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Informational findings are reported but do not fail the lint.
        assert "info RA002" in out

    def test_warning_exits_one(self, tmp_path, capsys):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        schemas = tmp_path / "schemas.json"
        schemas.write_text(
            json.dumps(
                {"source": schema_to_json(source), "target": schema_to_json(target)}
            )
        )
        mapping = tmp_path / "mapping.tgd"
        mapping.write_text("A(x), x = x -> B(x)\n")
        assert run(["lint", "--schemas", schemas, "--mapping", mapping]) == 1
        assert "warning RA003" in capsys.readouterr().out

    def test_cyclic_fixture_exits_two_with_witness(self, capsys):
        code = run(
            [
                "lint",
                "--schemas",
                FIXTURES / "schemas.json",
                "--mapping",
                FIXTURES / "mapping.tgd",
                "--target-deps",
                FIXTURES / "deps.tgd",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "error RA101" in out
        # The witness names the (relation, position) cycle in the text.
        assert "(E, 1) --∃--> (E, 1)" in out
        # The finding points at the offending line of deps.tgd.
        assert "deps.tgd:2:1" in out


class TestJsonOutput:
    def test_json_shape_and_witness(self, capsys):
        code = run(
            [
                "lint",
                "--schemas",
                FIXTURES / "schemas.json",
                "--mapping",
                FIXTURES / "mapping.tgd",
                "--target-deps",
                FIXTURES / "deps.tgd",
                "--json",
            ]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["exit_code"] == 2
        ra101 = [d for d in payload["diagnostics"] if d["code"] == "RA101"]
        assert len(ra101) == 1
        assert ra101[0]["data"]["cycle"]["positions"] == [["E", 1]]
        assert ra101[0]["data"]["cycle"]["existential"] == "z"
        assert ra101[0]["span"]["source"].endswith("deps.tgd")

    def test_clean_json(self, clean_files, capsys):
        schemas, mapping = clean_files
        assert (
            run(["lint", "--schemas", schemas, "--mapping", mapping, "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        # A full, dependency-free mapping is shard-parallelizable (RA501)
        # and SQL-compilable (RA510) — informational findings only.
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes == ["RA501", "RA510"]
        assert all(d["severity"] == "info" for d in payload["diagnostics"])
        assert payload["summary"]["exit_code"] == 0


class TestRobustness:
    def test_parse_error_becomes_ra000(self, clean_files, tmp_path, capsys):
        schemas, _ = clean_files
        mapping = tmp_path / "broken.tgd"
        mapping.write_text("Emp(x) -> Person(x)\nEmp(x ->\n")
        code = run(["lint", "--schemas", schemas, "--mapping", mapping])
        assert code == 2
        out = capsys.readouterr().out
        assert "error RA000" in out

    def test_unknown_relation_is_reported_not_fatal(self, clean_files, tmp_path, capsys):
        schemas, _ = clean_files
        mapping = tmp_path / "m.tgd"
        mapping.write_text("Ghost(x) -> Person(x)\n")
        code = run(["lint", "--schemas", schemas, "--mapping", mapping])
        assert code == 2
        out = capsys.readouterr().out
        assert "error RA006" in out
        assert "Ghost" in out

    def test_missing_mapping_file_is_cli_error(self, clean_files):
        schemas, _ = clean_files
        with pytest.raises(SystemExit) as excinfo:
            run(["lint", "--schemas", schemas, "--mapping", "nope.tgd"])
        assert excinfo.value.code == 2
