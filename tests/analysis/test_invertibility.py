"""Tests for the invertibility pass (RA301–RA304; paper Example 3)."""

from repro.analysis import AnalysisBundle, analyze
from repro.mapping.sttgd import StTgd
from repro.relational import relation, schema


def codes(report):
    return [d.code for d in report]


class TestForgottenAttributes:
    def test_dropped_attribute_is_ra301(self):
        src = schema(relation("Person", "name", "age"))
        tgt = schema(relation("P2", "name"))
        bundle = AnalysisBundle(src, tgt, [StTgd.parse("Person(n, a) -> P2(n)")])
        report = analyze(bundle, passes=["invertibility"])
        found = report.with_code("RA301")
        assert len(found) == 1
        assert found[0].data == {"relation": "Person", "attribute": "age"}

    def test_unread_relations_are_not_reported(self):
        src = schema(relation("Person", "name"), relation("Unused", "x"))
        tgt = schema(relation("P2", "name"))
        bundle = AnalysisBundle(src, tgt, [StTgd.parse("Person(n) -> P2(n)")])
        report = analyze(bundle, passes=["invertibility"])
        assert "RA301" not in codes(report)


class TestDisjunctiveProducers:
    def test_example3_shape_is_ra302(self):
        # Father and Mother both feed Parent: the maximum recovery must
        # disjoin (Parent(x,y) ∧ C(x) ∧ C(y) → Father(x,y) ∨ Mother(x,y)).
        src = schema(relation("Father", "c", "p"), relation("Mother", "c", "p"))
        tgt = schema(relation("Parent", "c", "p"))
        bundle = AnalysisBundle(
            src,
            tgt,
            [
                StTgd.parse("Father(x, y) -> Parent(x, y)"),
                StTgd.parse("Mother(x, y) -> Parent(x, y)"),
            ],
        )
        report = analyze(bundle, passes=["invertibility"])
        found = report.with_code("RA302")
        assert len(found) == 1
        assert found[0].data == {"relation": "Parent", "producers": [0, 1]}
        assert found[0].severity.value == "info"

    def test_single_producer_is_silent(self):
        src = schema(relation("Father", "c", "p"))
        tgt = schema(relation("Parent", "c", "p"))
        bundle = AnalysisBundle(
            src, tgt, [StTgd.parse("Father(x, y) -> Parent(x, y)")]
        )
        report = analyze(bundle, passes=["invertibility"])
        assert "RA302" not in codes(report)


class TestConstantConclusions:
    def test_constant_in_conclusion_is_ra303(self):
        src = schema(relation("A", "x"))
        tgt = schema(relation("B", "x", "kind"))
        bundle = AnalysisBundle(
            src, tgt, [StTgd.parse('A(x) -> B(x, "employee")')]
        )
        report = analyze(bundle, passes=["invertibility"])
        found = report.with_code("RA303")
        assert len(found) == 1
        assert found[0].severity.value == "info"


class TestEntangledExistentials:
    def test_shared_existential_is_ra304_warning(self):
        src = schema(relation("A", "x"))
        tgt = schema(relation("B", "x", "y"), relation("D", "y", "x"))
        bundle = AnalysisBundle(
            src,
            tgt,
            [StTgd.parse("A(x) -> exists y . B(x, y), D(y, x)")],
        )
        report = analyze(bundle, passes=["invertibility"])
        found = report.with_code("RA304")
        assert len(found) == 1
        assert found[0].severity.value == "warning"
        assert found[0].data["shared_existentials"] == ["y"]
        assert report.exit_code() == 1

    def test_independent_existentials_are_fine(self):
        src = schema(relation("A", "x"))
        tgt = schema(relation("B", "x", "y"), relation("D", "x", "z"))
        bundle = AnalysisBundle(
            src,
            tgt,
            [StTgd.parse("A(x) -> exists y, z . B(x, y), D(x, z)")],
        )
        report = analyze(bundle, passes=["invertibility"])
        assert "RA304" not in codes(report)
