"""Tests for the diagnostics data model: codes, severities, reports."""

import json

from repro.analysis import AnalysisReport, Diagnostic, Severity
from repro.logic.parser import Span


def diag(code, severity, message="m", span=None):
    return Diagnostic(code, severity, message, span)


class TestSeverity:
    def test_ranks_order_worst_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_values_are_json_friendly(self):
        assert [s.value for s in Severity] == ["error", "warning", "info"]


class TestDiagnostic:
    def test_render_without_span(self):
        d = diag("RA001", Severity.ERROR, "unsafe variable")
        assert d.render() == "error RA001: unsafe variable"

    def test_render_with_span(self):
        span = Span(line=3, column=7, source="m.tgd", text="A(x) -> B(x)")
        d = diag("RA101", Severity.ERROR, "cycle", span)
        assert d.render() == "m.tgd:3:7: error RA101: cycle"

    def test_as_dict_round_trips_through_json(self):
        span = Span(line=1, column=1, source="m.tgd", text="A(x) -> B(x)")
        d = Diagnostic("RA002", Severity.INFO, "msg", span, "safety", {"k": [1]})
        payload = json.loads(json.dumps(d.as_dict()))
        assert payload["code"] == "RA002"
        assert payload["severity"] == "info"
        assert payload["pass"] == "safety"
        assert payload["span"]["line"] == 1
        assert payload["data"] == {"k": [1]}


class TestAnalysisReport:
    def test_orders_worst_first(self):
        report = AnalysisReport(
            [
                diag("RA002", Severity.INFO),
                diag("RA101", Severity.ERROR),
                diag("RA403", Severity.WARNING),
            ]
        )
        assert [d.code for d in report] == ["RA101", "RA403", "RA002"]

    def test_exit_codes(self):
        assert AnalysisReport([]).exit_code() == 0
        assert AnalysisReport([diag("RA002", Severity.INFO)]).exit_code() == 0
        assert AnalysisReport([diag("RA403", Severity.WARNING)]).exit_code() == 1
        assert (
            AnalysisReport(
                [diag("RA403", Severity.WARNING), diag("RA101", Severity.ERROR)]
            ).exit_code()
            == 2
        )

    def test_clean_summary(self):
        assert "clean" in AnalysisReport([]).summary()

    def test_summary_counts(self):
        report = AnalysisReport(
            [diag("RA101", Severity.ERROR), diag("RA002", Severity.INFO)]
        )
        assert report.summary() == "1 error(s), 0 warning(s), 1 info(s)"

    def test_selectors(self):
        report = AnalysisReport(
            [diag("RA101", Severity.ERROR), diag("RA002", Severity.INFO)]
        )
        assert [d.code for d in report.errors] == ["RA101"]
        assert report.warnings == []
        assert [d.code for d in report.with_code("RA002")] == ["RA002"]

    def test_json_shape(self):
        report = AnalysisReport([diag("RA101", Severity.ERROR)])
        payload = json.loads(report.to_json())
        assert set(payload) == {"diagnostics", "summary"}
        assert payload["summary"] == {
            "errors": 1,
            "warnings": 0,
            "infos": 0,
            "exit_code": 2,
        }

    def test_merged_with(self):
        a = AnalysisReport([diag("RA002", Severity.INFO)])
        b = AnalysisReport([diag("RA101", Severity.ERROR)])
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.exit_code() == 2
