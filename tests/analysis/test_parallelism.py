"""Tests for the parallelism pass (RA501–RA502)."""

from repro.analysis import AnalysisBundle, analyze
from repro.logic.parser import Span, parse_conjunction, parse_rule
from repro.logic.terms import Var
from repro.mapping.dependencies import Egd, TargetTgd
from repro.mapping.sttgd import StTgd
from repro.relational import relation, schema


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))
JOIN = StTgd.parse("Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)")
CROSS = StTgd.parse("Emp(n, d), Dept(e, h) -> exists m . Office(n, h, m)")


def office_egd():
    return Egd(
        parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
        Var("h"),
        Var("h2"),
    )


class TestParallelism:
    def test_clean_mapping_reports_ra501(self):
        report = analyze(AnalysisBundle(SRC, TGT, [JOIN]), passes=["parallelism"])
        found = report.with_code("RA501")
        assert len(found) == 1
        assert found[0].severity.value == "info"
        assert "--workers" in found[0].message
        assert report.exit_code() == 0

    def test_egd_reports_ra502_and_suppresses_ra501(self):
        bundle = AnalysisBundle(
            SRC, TGT, [JOIN], target_dependencies=[office_egd()]
        )
        report = analyze(bundle, passes=["parallelism"])
        assert len(report.with_code("RA501")) == 0
        (found,) = report.with_code("RA502")
        assert "egd" in found.message
        assert found.data["blocker"] == "target-dependency"

    def test_target_tgd_named_distinctly(self):
        rule = parse_rule("Office(n, h, m) -> Office(h, h, m)")
        dep = TargetTgd(rule.lhs, rule.branches[0][1])
        bundle = AnalysisBundle(SRC, TGT, [JOIN], target_dependencies=[dep])
        report = analyze(bundle, passes=["parallelism"])
        (found,) = report.with_code("RA502")
        assert "target tgd" in found.message

    def test_cross_join_reports_both_codes(self):
        report = analyze(AnalysisBundle(SRC, TGT, [CROSS]), passes=["parallelism"])
        (ra502,) = report.with_code("RA502")
        assert ra502.data["blocker"] == "cross-join"
        assert "cross-joining premise" in ra502.message
        (ra501,) = report.with_code("RA501")
        assert "modulo the collapsing premises" in ra501.message

    def test_dependency_span_is_attached(self):
        dep_span = Span(line=3, column=1, source="deps.tgd", text="egd text")
        bundle = AnalysisBundle(
            SRC,
            TGT,
            [JOIN],
            target_dependencies=[office_egd()],
            dependency_spans=(dep_span,),
        )
        report = analyze(bundle, passes=["parallelism"])
        (found,) = report.with_code("RA502")
        assert found.span == dep_span

    def test_empty_bundle_is_silent(self):
        report = analyze(AnalysisBundle(SRC, TGT, []), passes=["parallelism"])
        assert len(report) == 0
