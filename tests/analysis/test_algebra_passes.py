"""Tests for the mapping-algebra analysis pass (RA6xx) and code filters."""

import pytest

from repro.analysis import (
    AnalysisBundle,
    Severity,
    analyze,
    containment_diagnostics,
    evolution_diagnostics,
    normalize_code_filters,
    pipeline_diagnostics,
)
from repro.analysis.algebra import REDUNDANCY_TGD_LIMIT
from repro.analysis.registry import code_matches
from repro.logic.parser import parse_rule
from repro.mapping import SchemaMapping, StTgd
from repro.mapping.dependencies import target_dependency_from_rule
from repro.relational import relation, schema


S = schema(relation("S", "a", "b"))
T = schema(relation("T", "a", "b"), relation("U", "a", "b"))


def mapping(*tgd_texts, deps=()):
    return SchemaMapping(S, T, [StTgd.parse(t) for t in tgd_texts], deps)


def bundle(*tgd_texts, deps=()):
    return AnalysisBundle(
        S, T, [StTgd.parse(t) for t in tgd_texts], (), deps, ()
    )


def codes(report):
    return [d.code for d in report]


class TestCheckAlgebra:
    def test_redundant_tgd_is_ra601(self):
        report = analyze(bundle("S(x, y) -> T(x, y)", "S(p, q) -> T(p, q)"))
        ra601 = [d for d in report if d.code == "RA601"]
        assert len(ra601) == 2  # both halves of the equivalent pair
        assert all(d.severity is Severity.WARNING for d in ra601)
        assert ra601[0].data["hint"] == "repro optimize"

    def test_clean_mapping_has_no_ra6(self):
        report = analyze(bundle("S(x, y) -> T(x, y)", "S(x, y) -> U(x, y)"))
        assert not [d for d in report if d.code.startswith("RA6")]

    def test_single_tgd_skips_silently(self):
        report = analyze(bundle("S(x, y) -> T(x, y)"))
        assert not [d for d in report if d.code.startswith("RA6")]

    def test_undecidable_fragment_is_ra602(self):
        grow = target_dependency_from_rule(
            parse_rule("T(u, v) -> exists w . T(v, w)")
        )
        report = analyze(
            bundle("S(x, y) -> T(x, y)", "S(p, q) -> T(p, q)", deps=[grow])
        )
        (ra602,) = [d for d in report if d.code == "RA602"]
        assert ra602.severity is Severity.INFO
        assert ra602.data["reason"] == "not-weakly-acyclic"
        assert "witness" in ra602.data

    def test_oversized_mapping_is_ra602(self):
        texts = [
            f'S(x, y) -> T(x, "{i}")' for i in range(REDUNDANCY_TGD_LIMIT + 1)
        ]
        report = analyze(bundle(*texts))
        (ra602,) = [d for d in report if d.code == "RA602"]
        assert ra602.data["reason"] == "too-many-tgds"


class TestContainmentDiagnostics:
    def test_equivalent_mappings_are_ra610(self):
        (d,) = containment_diagnostics(
            mapping("S(x, y) -> T(x, y)"), mapping("S(p, q) -> T(p, q)")
        )
        assert d.code == "RA610" and d.severity is Severity.WARNING

    def test_one_way_containment_is_ra611(self):
        (d,) = containment_diagnostics(
            mapping("S(x, y) -> T(x, y)"),
            mapping("S(x, y) -> exists z . T(x, z)"),
        )
        assert d.code == "RA611" and d.data["direction"] == "forward"

    def test_incomparable_mappings_are_silent(self):
        assert (
            containment_diagnostics(
                mapping("S(x, y) -> T(x, y)"), mapping("S(x, y) -> U(x, y)")
            )
            == []
        )

    def test_schema_mismatch_is_silent(self):
        other = SchemaMapping(
            schema(relation("R", "a")), T, [StTgd.parse("R(x) -> T(x, x)")]
        )
        assert containment_diagnostics(mapping("S(x, y) -> T(x, y)"), other) == []


class TestPipelineDiagnostics:
    A = schema(relation("S", "a", "b"))
    B = schema(relation("T", "a", "b"))
    C = schema(relation("U", "a", "b"))

    def test_collapsible_pair_is_ra612(self):
        m1 = SchemaMapping.parse(self.A, self.B, "S(x, y) -> T(x, y)")
        m2 = SchemaMapping.parse(self.B, self.C, "T(x, y) -> U(x, y)")
        findings = pipeline_diagnostics([m1, m2])
        assert [d.code for d in findings] == ["RA612"]
        assert findings[0].data["stages"] == [0, 1]

    def test_obstructed_pair_is_ra613_with_structured_obstruction(self):
        B2 = schema(relation("Manager", "emp", "mgr"))
        C2 = schema(relation("SelfMngr", "emp"))
        m1 = SchemaMapping.parse(
            schema(relation("Emp", "name")),
            B2,
            "Emp(x) -> exists y . Manager(x, y)",
        )
        m2 = SchemaMapping.parse(B2, C2, "Manager(x, x) -> SelfMngr(x)")
        findings = pipeline_diagnostics([m1, m2])
        (ra613,) = [d for d in findings if d.code == "RA613"]
        assert ra613.severity is Severity.WARNING
        assert ra613.data["obstruction"]["kind"] == "premise-function"

    def test_non_chaining_stages_are_ra613(self):
        m1 = SchemaMapping.parse(self.A, self.B, "S(x, y) -> T(x, y)")
        m2 = SchemaMapping.parse(self.C, self.B, "U(x, y) -> T(x, y)")
        findings = pipeline_diagnostics([m1, m2])
        (ra613,) = [d for d in findings if d.code == "RA613"]
        assert "do not chain" in ra613.message

    def test_same_schema_stages_get_containment_findings(self):
        m1 = SchemaMapping.parse(self.A, self.B, "S(x, y) -> T(x, y)")
        m2 = SchemaMapping.parse(self.B, self.A, "T(x, y) -> S(x, y)")
        m3 = SchemaMapping.parse(self.A, self.B, "S(p, q) -> T(p, q)")
        findings = pipeline_diagnostics([m1, m2, m3])
        ra610 = [d for d in findings if d.code == "RA610"]
        assert len(ra610) == 1
        assert ra610[0].data["stages"] == [0, 2]
        assert ra610[0].message.startswith("stages 0 and 2:")


class TestEvolutionDiagnostics:
    def test_pure_rename_is_ra614(self):
        evolved = schema(relation("S2", "a", "b"))
        evolution = SchemaMapping.parse(S, evolved, "S(x, y) -> S2(x, y)")
        (d,) = evolution_diagnostics(mapping("S(x, y) -> T(x, y)"), evolution)
        assert d.code == "RA614"
        assert d.data["renames"] == {"S": "S2"}

    def test_projection_is_not_a_pure_rename(self):
        evolved = schema(relation("S2", "a"))
        evolution = SchemaMapping.parse(S, evolved, "S(x, y) -> S2(x)")
        assert (
            evolution_diagnostics(mapping("S(x, y) -> T(x, y)"), evolution) == []
        )

    def test_swap_is_not_a_pure_rename(self):
        evolved = schema(relation("S2", "a", "b"))
        evolution = SchemaMapping.parse(S, evolved, "S(x, y) -> S2(y, x)")
        assert (
            evolution_diagnostics(mapping("S(x, y) -> T(x, y)"), evolution) == []
        )


class TestCodeFilters:
    def test_normalize_accepts_codes_and_prefixes(self):
        assert normalize_code_filters(["RA601", "ra6"]) == ("RA601", "RA6")
        assert normalize_code_filters(["RA1,RA201"]) == ("RA1", "RA201")

    def test_normalize_rejects_garbage(self):
        with pytest.raises(ValueError):
            normalize_code_filters(["bogus"])
        with pytest.raises(ValueError):
            normalize_code_filters(["RA6x"])

    def test_code_matches_prefix_semantics(self):
        assert code_matches("RA601", ("RA6",), ())
        assert not code_matches("RA601", ("RA1",), ())
        assert not code_matches("RA601", (), ("RA6",))
        assert not code_matches("RA601", ("RA6",), ("RA601",))

    def test_analyze_select_restricts_to_matching_passes(self):
        b = bundle("S(x, y) -> T(x, y)", "S(p, q) -> T(p, q)")
        report = analyze(b, select=("RA601",))
        assert codes(report) and set(codes(report)) == {"RA601"}

    def test_analyze_ignore_skips_the_algebra_pass(self):
        b = bundle("S(x, y) -> T(x, y)", "S(p, q) -> T(p, q)")
        report = analyze(b, ignore=("RA6",))
        assert "RA601" not in codes(report)
