"""Tests for the safety pass (RA001–RA006)."""

import pytest

from repro.analysis import AnalysisBundle, analyze
from repro.logic.formulas import ConstantPredicate, Equality, Inequality, atom, conj
from repro.logic.terms import Const, Var
from repro.mapping.dependencies import Egd, TargetTgd
from repro.mapping.sttgd import StTgd
from repro.relational import relation, schema


SRC = schema(relation("A", "x", "y"))
TGT = schema(relation("B", "x", "y"))


def bundle(*tgds, target_dependencies=()):
    return AnalysisBundle(SRC, TGT, tgds, target_dependencies=target_dependencies)


def codes(report):
    return [d.code for d in report]


class TestUnsafeVariables:
    def test_side_condition_only_variable_is_ra001(self):
        tgd = StTgd(
            conj(atom("A", "x", "y"), Equality(Var("w"), Var("x"))),
            conj(atom("B", "x", "y")),
        )
        report = analyze(bundle(tgd), passes=["safety"])
        assert "RA001" in codes(report)
        assert report.exit_code() == 2
        assert "w" in report.with_code("RA001")[0].message

    def test_bound_variables_are_fine(self):
        tgd = StTgd(
            conj(atom("A", "x", "y"), Equality(Var("x"), Var("y"))),
            conj(atom("B", "x", "y")),
        )
        report = analyze(bundle(tgd), passes=["safety"])
        assert "RA001" not in codes(report)


class TestImplicitExistentials:
    def test_existential_reported_as_info(self):
        tgd = StTgd.parse("A(x, y) -> exists z . B(x, z)")
        report = analyze(bundle(tgd), passes=["safety"])
        infos = report.with_code("RA002")
        assert len(infos) == 1
        assert infos[0].severity.value == "info"
        assert infos[0].data["existentials"] == ["z"]

    def test_full_tgd_is_silent(self):
        tgd = StTgd.parse("A(x, y) -> B(x, y)")
        report = analyze(bundle(tgd), passes=["safety"])
        assert "RA002" not in codes(report)


class TestConstantMisuse:
    def test_contradictory_constants_are_dead_rule_errors(self):
        tgd = StTgd(
            conj(atom("A", "x", "y"), Equality(Const("a"), Const("b"))),
            conj(atom("B", "x", "y")),
        )
        report = analyze(bundle(tgd), passes=["safety"])
        found = report.with_code("RA003")
        assert len(found) == 1
        assert found[0].severity.value == "error"
        assert "never" in found[0].message

    def test_trivial_equality_is_warning(self):
        tgd = StTgd(
            conj(atom("A", "x", "y"), Equality(Var("x"), Var("x"))),
            conj(atom("B", "x", "y")),
        )
        report = analyze(bundle(tgd), passes=["safety"])
        found = report.with_code("RA003")
        assert len(found) == 1
        assert found[0].severity.value == "warning"

    def test_inequality_of_same_variable_is_dead(self):
        tgd = StTgd(
            conj(atom("A", "x", "y"), Inequality(Var("x"), Var("x"))),
            conj(atom("B", "x", "y")),
        )
        report = analyze(bundle(tgd), passes=["safety"])
        assert report.with_code("RA003")[0].severity.value == "error"

    def test_constant_predicate_on_constant_is_trivial(self):
        tgd = StTgd(
            conj(atom("A", "x", "y"), ConstantPredicate(Const("a"))),
            conj(atom("B", "x", "y")),
        )
        report = analyze(bundle(tgd), passes=["safety"])
        assert report.with_code("RA003")[0].severity.value == "warning"


class TestDuplicates:
    def test_duplicate_tgd_is_ra005(self):
        tgd = StTgd.parse("A(x, y) -> B(x, y)")
        twin = StTgd.parse("A(x, y) -> B(x, y)")
        report = analyze(bundle(tgd, twin), passes=["safety"])
        found = report.with_code("RA005")
        assert len(found) == 1
        assert found[0].data["duplicate_of"] == 0


class TestConformance:
    def test_unknown_relation_is_ra006(self):
        tgd = StTgd(conj(atom("Nope", "x")), conj(atom("B", "x", "x")))
        report = analyze(bundle(tgd), passes=["safety"])
        found = report.with_code("RA006")
        assert len(found) == 1
        assert found[0].data == {"relation": "Nope", "role": "source"}

    def test_arity_mismatch_is_ra006(self):
        tgd = StTgd(conj(atom("A", "x", "y", "z")), conj(atom("B", "x", "y")))
        report = analyze(bundle(tgd), passes=["safety"])
        assert "arity 3" in report.with_code("RA006")[0].message

    def test_target_dependency_atoms_checked_against_target(self):
        dep = TargetTgd(conj(atom("B", "x", "y")), conj(atom("Ghost", "y")))
        report = analyze(
            bundle(target_dependencies=[dep]), passes=["safety"]
        )
        found = report.with_code("RA006")
        assert len(found) == 1
        assert found[0].data["relation"] == "Ghost"

    def test_egd_premise_checked_against_target(self):
        egd = Egd(
            conj(atom("Ghost", "x", "y"), atom("Ghost", "x", "z")),
            Var("y"),
            Var("z"),
        )
        report = analyze(bundle(target_dependencies=[egd]), passes=["safety"])
        assert report.with_code("RA006")


class TestCleanMapping:
    def test_clean_full_mapping_has_no_findings(self):
        tgd = StTgd.parse("A(x, y) -> B(y, x)")
        report = analyze(bundle(tgd), passes=["safety"])
        assert len(report) == 0
        assert report.exit_code() == 0
