"""Tests for the composability pass (RA201) and pairwise diagnosis (RA202–204)."""

from repro.analysis import AnalysisBundle, analyze, composition_obstructions
from repro.mapping.sttgd import SchemaMapping, StTgd
from repro.relational import relation, schema


class TestBundlePass:
    def test_full_mapping_is_silent(self):
        src = schema(relation("A", "x"))
        tgt = schema(relation("B", "x"))
        bundle = AnalysisBundle(src, tgt, [StTgd.parse("A(x) -> B(x)")])
        report = analyze(bundle, passes=["composability"])
        assert len(report) == 0

    def test_existentials_reported_as_info(self):
        src = schema(relation("A", "x"))
        tgt = schema(relation("B", "x", "y"))
        bundle = AnalysisBundle(
            src, tgt, [StTgd.parse("A(x) -> exists y . B(x, y)")]
        )
        report = analyze(bundle, passes=["composability"])
        found = report.with_code("RA201")
        assert len(found) == 1
        assert found[0].severity.value == "info"
        assert found[0].data["non_full_tgds"] == [0]


class TestCompositionObstructions:
    def _example2(self):
        """The paper's Example 2: Emp → Boss(∃) then self-manager test."""
        a = schema(relation("Emp", "e"))
        b = schema(relation("Boss", "e", "m"))
        c = schema(relation("SelfMngr", "e"))
        first = SchemaMapping(
            a, b, [StTgd.parse("Emp(x) -> exists m . Boss(x, m)")]
        )
        second = SchemaMapping(b, c, [StTgd.parse("Boss(x, x) -> SelfMngr(x)")])
        return first, second

    def test_schema_mismatch_is_ra203_error(self):
        a = schema(relation("Emp", "e"))
        b = schema(relation("Boss", "e", "m"))
        c = schema(relation("Other", "o"))
        first = SchemaMapping(a, b, [StTgd.parse("Emp(x) -> exists m . Boss(x, m)")])
        second = SchemaMapping(c, a, [StTgd.parse("Other(x) -> Emp(x)")])
        found = composition_obstructions(first, second)
        assert [d.code for d in found] == ["RA203"]
        assert found[0].severity.value == "error"

    def test_example2_requires_sotgds(self):
        first, second = self._example2()
        found = composition_obstructions(first, second)
        assert [d.code for d in found] == ["RA202"]
        assert found[0].severity.value == "warning"
        assert "SO-tgd" in found[0].message

    def test_full_first_mapping_stays_first_order(self):
        a = schema(relation("Emp", "e"))
        b = schema(relation("Person", "p"))
        c = schema(relation("Human", "h"))
        first = SchemaMapping(a, b, [StTgd.parse("Emp(x) -> Person(x)")])
        second = SchemaMapping(b, c, [StTgd.parse("Person(x) -> Human(x)")])
        found = composition_obstructions(first, second)
        assert [d.code for d in found] == ["RA204"]
        assert found[0].severity.value == "info"
