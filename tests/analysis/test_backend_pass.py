"""Tests for the SQL-backend compilability pass (RA510–RA512)."""

from repro.analysis import AnalysisBundle, analyze
from repro.logic.formulas import Atom, Conjunction, atom
from repro.logic.parser import parse_conjunction
from repro.logic.terms import FuncTerm, Var
from repro.mapping.dependencies import Egd
from repro.mapping.sttgd import StTgd
from repro.relational import relation, schema


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(
    relation("Office", "name", "head", "room"),
    relation("Badge", "name", "bid"),
)
JOIN = StTgd.parse("Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)")
LINKED = StTgd.parse(
    "Emp(n, d) -> exists m, h . Office(n, h, m), Badge(n, m)"
)


def run(tgds, deps=()):
    bundle = AnalysisBundle(SRC, TGT, tgds, target_dependencies=list(deps))
    return analyze(bundle, passes=["backend"])


class TestRa510:
    def test_laconic_mapping(self):
        report = run([JOIN])
        (found,) = report.with_code("RA510")
        assert found.severity.value == "info"
        assert "laconic" in found.message
        assert "core" in found.message
        assert found.data["laconic"] is True
        assert report.exit_code() == 0

    def test_canonical_mapping_names_multi_atom_tgds(self):
        report = run([JOIN, LINKED])
        (found,) = report.with_code("RA510")
        assert "canonical lowering" in found.message
        assert found.data["laconic"] is False
        assert found.data["multi_atom_tgds"] == [1]

    def test_empty_mapping_reports_nothing(self):
        report = run([])
        assert not report.with_code("RA510")


class TestRa511:
    def test_function_terms_flagged_with_reasons(self):
        f = FuncTerm("f", (Var("n"),))
        tgd = StTgd(
            Conjunction([atom("Emp", "n", "d")]),
            Conjunction([Atom("Badge", (Var("n"), f))]),
        )
        report = run([JOIN, tgd])
        (found,) = report.with_code("RA511")
        assert found.data["tgd"] == 1
        assert "function-terms" in found.data["reasons"]
        # One bad tgd suppresses the mapping-level RA510 verdict.
        assert not report.with_code("RA510")


class TestRa512:
    def test_target_dependencies_reported_and_suppress_ra510(self):
        egd = Egd(
            parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
            Var("h"),
            Var("h2"),
        )
        report = run([JOIN], deps=[egd])
        (found,) = report.with_code("RA512")
        assert "egd" in found.message
        assert found.data["reason"] == "target-dependencies"
        assert not report.with_code("RA510")
