"""Tests for the termination pass (RA101–RA102)."""

from repro.analysis import AnalysisBundle, analyze
from repro.logic.parser import Span, parse_rule
from repro.mapping.dependencies import TargetTgd
from repro.mapping.sttgd import StTgd
from repro.relational import relation, schema


SRC = schema(relation("A", "x"))
TGT = schema(relation("E", "a", "b"))


def target_tgd(text):
    rule = parse_rule(text)
    return TargetTgd(rule.lhs, rule.branches[0][1])


class TestTermination:
    def test_no_target_tgds_no_findings(self):
        bundle = AnalysisBundle(SRC, TGT, [StTgd.parse("A(x) -> E(x, x)")])
        report = analyze(bundle, passes=["termination"])
        assert len(report) == 0

    def test_weakly_acyclic_reports_guarantee(self):
        bundle = AnalysisBundle(
            SRC,
            TGT,
            target_dependencies=[target_tgd("E(x, y) -> E(y, x)")],
        )
        report = analyze(bundle, passes=["termination"])
        found = report.with_code("RA102")
        assert len(found) == 1
        assert found[0].severity.value == "info"
        assert report.exit_code() == 0

    def test_cycle_reports_ra101_with_witness(self):
        bundle = AnalysisBundle(
            SRC,
            TGT,
            target_dependencies=[target_tgd("E(x, y) -> exists z . E(y, z)")],
        )
        report = analyze(bundle, passes=["termination"])
        found = report.with_code("RA101")
        assert len(found) == 1
        diagnostic = found[0]
        assert diagnostic.severity.value == "error"
        # The witness names the (relation, position) cycle in the text...
        assert "(E, 1) --∃--> (E, 1)" in diagnostic.message
        # ...and carries it structurally for --json consumers.
        assert diagnostic.data["cycle"]["positions"] == [["E", 1]]
        assert diagnostic.data["cycle"]["existential"] == "z"
        assert report.exit_code() == 2

    def test_cycle_span_points_at_offending_dependency(self):
        innocuous = target_tgd("E(x, y) -> E(y, x)")
        cyclic = target_tgd("E(x, y) -> exists z . E(y, z)")
        spans = (
            Span(line=1, column=1, source="deps.tgd", text="E(x, y) -> E(y, x)"),
            Span(
                line=2,
                column=1,
                source="deps.tgd",
                text="E(x, y) -> exists z . E(y, z)",
            ),
        )
        bundle = AnalysisBundle(
            SRC,
            TGT,
            target_dependencies=[innocuous, cyclic],
            dependency_spans=spans,
        )
        report = analyze(bundle, passes=["termination"])
        diagnostic = report.with_code("RA101")[0]
        assert diagnostic.span is not None
        assert diagnostic.span.line == 2
