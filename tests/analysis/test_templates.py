"""Tests for the template/policy consistency pass (RA401–RA406)."""

from repro.analysis import AnalysisBundle, TemplateCheck, analyze
from repro.compiler import Hints
from repro.relational import (
    FunctionalDependency,
    KeyConstraint,
    relation,
    schema,
)
from repro.relational.constraints import ConstraintSet
from repro.rlens.policies import EnvironmentPolicy, FdPolicy
from repro.rlens.template import JoinTemplate, ProjectionTemplate, UnionTemplate


PERSON = relation("Person", "id", "name", "city", "zip")
SRC = schema(PERSON)
TGT = schema(relation("Out", "id"))


def bundle(*checks, constraints=None, hints=None):
    return AnalysisBundle(
        SRC, TGT, templates=checks, constraints=constraints, hints=hints
    )


def run(*checks, constraints=None, hints=None):
    return analyze(
        bundle(*checks, constraints=constraints, hints=hints),
        passes=["templates"],
    )


def projection(kept=("id", "name", "city")):
    return ProjectionTemplate(PERSON, tuple(kept), "V")


class TestAnswerSlots:
    def test_unknown_slot_is_ra401(self):
        report = run(TemplateCheck(projection(), {"column:ghost": "null"}))
        found = report.with_code("RA401")
        assert len(found) == 1
        assert found[0].severity.value == "error"
        assert "column:ghost" in found[0].message

    def test_invalid_option_is_ra401(self):
        report = run(
            TemplateCheck(
                JoinTemplate(PERSON, relation("CityZip", "city", "zip"), "J"),
                {"delete_propagation": "sideways"},
            )
        )
        found = report.with_code("RA401")
        assert len(found) == 1
        assert "sideways" in found[0].message

    def test_constant_spelling_is_accepted(self):
        report = run(TemplateCheck(projection(), {"column:zip": "constant:00000"}))
        assert "RA401" not in [d.code for d in report]


class TestFdPolicies:
    def test_fd_must_determine_the_dropped_column(self):
        policy = FdPolicy(FunctionalDependency("Person", ("city",), ("name",)))
        report = run(TemplateCheck(projection(), {"column:zip": policy}))
        found = report.with_code("RA402")
        assert len(found) == 1
        assert found[0].severity.value == "error"

    def test_determinant_must_be_retained(self):
        policy = FdPolicy(FunctionalDependency("Person", ("zip",), ("zip",)))
        # zip is dropped, so a determinant of {zip} can never be formed.
        report = run(TemplateCheck(projection(), {"column:zip": policy}))
        assert report.with_code("RA402")

    def test_wrong_relation_is_ra402(self):
        policy = FdPolicy(FunctionalDependency("Other", ("city",), ("zip",)))
        report = run(TemplateCheck(projection(), {"column:zip": policy}))
        assert report.with_code("RA402")

    def test_unimplied_fd_is_ra403_warning(self):
        policy = FdPolicy(FunctionalDependency("Person", ("city",), ("zip",)))
        constraints = ConstraintSet([KeyConstraint("Person", ("id",))])
        report = run(
            TemplateCheck(projection(), {"column:zip": policy}),
            constraints=constraints,
        )
        found = report.with_code("RA403")
        assert len(found) == 1
        assert found[0].severity.value == "warning"
        assert report.exit_code() == 1

    def test_implied_fd_is_clean(self):
        fd = FunctionalDependency("Person", ("city",), ("zip",))
        report = run(
            TemplateCheck(projection(), {"column:zip": FdPolicy(fd)}),
            constraints=ConstraintSet([fd]),
        )
        assert "RA403" not in [d.code for d in report]

    def test_no_constraints_downgrades_to_info(self):
        policy = FdPolicy(FunctionalDependency("Person", ("city",), ("zip",)))
        report = run(TemplateCheck(projection(), {"column:zip": policy}))
        found = report.with_code("RA403")
        assert len(found) == 1
        assert found[0].severity.value == "info"


class TestJoinDeleteSafety:
    LEFT = relation("Person", "id", "name", "city")
    RIGHT = relation("CityZip", "city", "zip")

    def _join(self):
        return JoinTemplate(self.LEFT, self.RIGHT, "J")

    def test_no_constraints_is_info(self):
        report = run(TemplateCheck(self._join(), {"delete_propagation": "left"}))
        found = report.with_code("RA404")
        assert len(found) == 1
        assert found[0].severity.value == "info"

    def test_left_delete_safe_when_join_columns_key_the_right(self):
        constraints = ConstraintSet([KeyConstraint("CityZip", ("city",))])
        report = run(
            TemplateCheck(self._join(), {"delete_propagation": "left"}),
            constraints=constraints,
        )
        assert "RA404" not in [d.code for d in report]

    def test_left_delete_unsafe_without_right_key(self):
        constraints = ConstraintSet([KeyConstraint("Person", ("id",))])
        report = run(
            TemplateCheck(self._join(), {"delete_propagation": "left"}),
            constraints=constraints,
        )
        found = report.with_code("RA404")
        assert len(found) == 1
        assert found[0].severity.value == "warning"
        assert found[0].data["not_key_of"] == "CityZip"
        assert "PutGet" in found[0].message

    def test_both_needs_keys_on_both_sides(self):
        constraints = ConstraintSet([KeyConstraint("CityZip", ("city",))])
        report = run(
            TemplateCheck(self._join(), {"delete_propagation": "both"}),
            constraints=constraints,
        )
        found = report.with_code("RA404")
        # The right side is keyed by the join columns; the left is not.
        assert len(found) == 1
        assert found[0].data["not_key_of"] == "Person"

    def test_default_answer_is_checked_too(self):
        constraints = ConstraintSet([KeyConstraint("Person", ("id",))])
        report = run(TemplateCheck(self._join()), constraints=constraints)
        assert report.with_code("RA404")


class TestUnionSchemas:
    def test_mismatched_columns_are_ra405(self):
        left = relation("L", "a", "b")
        right = relation("R", "a", "c")
        report = run(TemplateCheck(UnionTemplate(left, right, "U")))
        found = report.with_code("RA405")
        assert len(found) == 1
        assert found[0].severity.value == "error"

    def test_matching_columns_are_fine(self):
        left = relation("L", "a", "b")
        right = relation("R", "a", "b")
        report = run(TemplateCheck(UnionTemplate(left, right, "U")))
        assert "RA405" not in [d.code for d in report]


class TestEnvironmentPolicies:
    def test_missing_key_is_ra406(self):
        policy = EnvironmentPolicy("current_user")
        report = run(TemplateCheck(projection(), {"column:zip": policy}))
        found = report.with_code("RA406")
        assert len(found) == 1
        assert found[0].severity.value == "warning"

    def test_key_supplied_by_hints_environment(self):
        policy = EnvironmentPolicy("current_user")
        hints = Hints(environment={"current_user": "alice"})
        report = run(
            TemplateCheck(projection(), {"column:zip": policy}), hints=hints
        )
        assert "RA406" not in [d.code for d in report]


class TestHintValidation:
    def test_unknown_relation_in_hints_is_ra401(self):
        hints = Hints()
        hints.set_column_policy("Ghost", "x", EnvironmentPolicy("k"))
        report = run(hints=hints)
        found = report.with_code("RA401")
        assert len(found) == 1
        assert "Ghost" in found[0].message

    def test_unknown_column_in_hints_is_ra401(self):
        hints = Hints()
        hints.set_column_policy("Person", "ghost", EnvironmentPolicy("k"))
        report = run(hints=hints)
        assert report.with_code("RA401")

    def test_hint_fd_policy_checked(self):
        hints = Hints()
        hints.set_column_policy(
            "Person",
            "zip",
            FdPolicy(FunctionalDependency("Person", ("city",), ("zip",))),
        )
        constraints = ConstraintSet([KeyConstraint("Person", ("id",))])
        report = run(constraints=constraints, hints=hints)
        assert report.with_code("RA403")

    def test_hint_environment_policy_missing_key(self):
        hints = Hints()
        hints.set_column_policy("Person", "zip", EnvironmentPolicy("now"))
        report = run(hints=hints)
        assert report.with_code("RA406")
