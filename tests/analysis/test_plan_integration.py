"""The compiler surfaces analyzer diagnostics in plan.explain()."""

from repro.compiler import ExchangeEngine
from repro.mapping import SchemaMapping
from repro.relational import relation, schema


def test_explain_reports_diagnostics_for_existential_mapping():
    source = schema(relation("Emp", "name"))
    target = schema(relation("Badge", "name", "bid"))
    mapping = SchemaMapping.parse(
        source, target, "Emp(n) -> exists b . Badge(n, b)"
    )
    text = ExchangeEngine.compile(mapping).plan.explain()
    assert "── analyzer diagnostics:" in text
    assert "RA002" in text  # existential quantifier noted


def test_explain_reports_only_parallelism_info_for_full_lossless_mapping():
    source = schema(relation("Emp", "name"))
    target = schema(relation("Person", "name"))
    mapping = SchemaMapping.parse(source, target, "Emp(n) -> Person(n)")
    text = ExchangeEngine.compile(mapping).plan.explain()
    assert "── analyzer diagnostics:" in text
    # A full lossless mapping triggers nothing but the informational
    # shard-parallelizability and SQL-compilability notes.
    assert "RA501" in text
    assert "RA510" in text
    assert "0 error(s), 0 warning(s), 2 info(s)" in text


def test_verbose_explain_also_carries_the_section():
    source = schema(relation("Emp", "name"))
    target = schema(relation("Person", "name"))
    mapping = SchemaMapping.parse(source, target, "Emp(n) -> Person(n)")
    text = ExchangeEngine.compile(mapping).plan.explain(verbose=True)
    assert "── analyzer diagnostics:" in text
