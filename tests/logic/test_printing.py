"""Tests for the concrete-syntax printer (parse ∘ print round trips)."""

import pytest

from repro.logic.formulas import Conjunction
from repro.logic.parser import parse_conjunction, parse_rule
from repro.logic.printing import (
    UnprintableError,
    conjunction_to_text,
    literal_to_text,
    term_to_text,
)
from repro.logic.terms import Const, FuncTerm, Var, const
from repro.mapping import SchemaMapping, StTgd
from repro.relational import constant, relation, schema


class TestTermPrinting:
    def test_variable(self):
        assert term_to_text(Var("x")) == "x"

    def test_int_and_float(self):
        assert term_to_text(const(5)) == "5"
        assert term_to_text(const(-2.5)) == "-2.5"

    def test_string_quoting(self):
        assert term_to_text(const("NYC")) == "'NYC'"
        assert term_to_text(const("it's")) == '"it\'s"'

    def test_mixed_quotes_unprintable(self):
        with pytest.raises(UnprintableError):
            term_to_text(const("a'b\"c"))

    def test_boolean_unprintable(self):
        with pytest.raises(UnprintableError):
            term_to_text(const(True))

    def test_function_term(self):
        term = FuncTerm("f", (Var("x"), const(1)))
        assert term_to_text(term) == "f(x, 1)"


class TestConjunctionRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "Emp(x)",
            "Emp(x), Dept(x, y)",
            "R(x, 5), x = y",
            "R(x, y), x != y",
            "Parent(x, y), C(x), C(y)",
            "R('NYC', x)",
            "Manager(x, y), y = f(x)",
        ],
    )
    def test_round_trip(self, text):
        parsed = parse_conjunction(text)
        reprinted = parse_conjunction(conjunction_to_text(parsed))
        assert reprinted == parsed

    def test_empty_conjunction_unprintable(self):
        with pytest.raises(UnprintableError):
            conjunction_to_text(Conjunction([]))


class TestTgdRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "Emp(x) -> exists y . Manager(x, y)",
            "Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)",
            "Student(x, y), Assgn(y, z) -> Enrollment(x, z)",
            "Manager(x, x) -> SelfMngr(x)",
            "P(x, 'fixed') -> Q(x)",
        ],
    )
    def test_tgd_round_trip(self, text):
        tgd = StTgd.parse(text)
        assert StTgd.parse(tgd.to_text()) == tgd

    def test_mapping_round_trip(self):
        source = schema(relation("F", "a", "b"), relation("M", "a", "b"))
        target = schema(relation("P", "a", "b"))
        mapping = SchemaMapping.parse(
            source, target, "F(x, y) -> P(x, y); M(x, y) -> P(x, y)"
        )
        reparsed = SchemaMapping.parse(source, target, mapping.to_text())
        assert reparsed.tgds == mapping.tgds

    def test_target_dependencies_rejected(self):
        from repro.logic.parser import parse_conjunction
        from repro.logic.terms import Var
        from repro.mapping.dependencies import Egd

        source = schema(relation("A", "x"))
        target = schema(relation("B", "x", "y"))
        egd = Egd(parse_conjunction("B(x, y), B(x, z)"), Var("y"), Var("z"))
        mapping = SchemaMapping(
            source, target, [StTgd.parse("A(x) -> exists y . B(x, y)")], [egd]
        )
        with pytest.raises(ValueError, match="target dependencies"):
            mapping.to_text()

    def test_scenario_mappings_round_trip(self):
        from repro.workloads import all_scenarios

        for scenario in all_scenarios():
            text = scenario.mapping.to_text()
            reparsed = SchemaMapping.parse(
                scenario.source, scenario.target, text
            )
            assert reparsed.tgds == scenario.mapping.tgds, scenario.name
