"""Single-atom premises scan on first probe instead of building an index.

Building a hash index is a full scan *plus* dict construction; for a
premise that issues exactly one probe, one scan is strictly cheaper.
The e1 workload in ``BENCH_chase.json`` (single-atom copy tgds) showed
indexed evaluation *slower* than plain scanning for exactly this reason.
"""

from repro.logic.evaluation import evaluate
from repro.logic.parser import parse_conjunction
from repro.obs import collecting
from repro.relational import instance, relation, schema


def make_instance():
    s = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
    return instance(
        s,
        {
            "Emp": [["ann", "d1"], ["bob", "d2"], ["cyd", "d1"]],
            "Dept": [["d1", "hana"], ["d2", "hugo"]],
        },
    )


def run(text, inst, seed=None):
    conjunction = parse_conjunction(text)
    with collecting() as registry:
        bindings = list(evaluate(conjunction, inst, seed, use_indexes=True))
        counters = registry.snapshot()["counters"]
    return bindings, counters


class TestSingleAtomDefer:
    def test_first_bound_probe_scans(self):
        inst = make_instance()
        # The constant binds a column, which would normally trigger an
        # index build — deferred because this is the first lone probe.
        bindings, counters = run('Emp(n, "d1")', inst)
        assert len(bindings) == 2
        assert counters.get("evaluate.index_skips", 0) == 1
        assert counters.get("evaluate.index_builds", 0) == 0
        assert not inst.has_index("Emp", (1,))

    def test_second_probe_builds_the_index(self):
        inst = make_instance()
        run('Emp(n, "d1")', inst)
        bindings, counters = run('Emp(n, "d2")', inst)
        assert len(bindings) == 1
        assert counters.get("evaluate.index_builds", 0) == 1
        assert counters.get("evaluate.index_skips", 0) == 0
        assert inst.has_index("Emp", (1,))

    def test_existing_index_is_probed_not_skipped(self):
        inst = make_instance()
        run('Emp(n, "d1")', inst)  # skip
        run('Emp(n, "d1")', inst)  # build
        _, counters = run('Emp(n, "d1")', inst)
        assert counters.get("evaluate.index_builds", 0) == 0
        assert counters.get("evaluate.index_probes", 0) == 1

    def test_multi_atom_joins_build_immediately(self):
        inst = make_instance()
        _, counters = run("Emp(n, d), Dept(d, h)", inst)
        assert counters.get("evaluate.index_skips", 0) == 0
        assert counters.get("evaluate.index_builds", 0) >= 1

    def test_unbound_single_atom_never_skips(self):
        inst = make_instance()
        # No bound column: a scan is the plan anyway, nothing to defer.
        _, counters = run("Emp(n, d)", inst)
        assert counters.get("evaluate.index_skips", 0) == 0

    def test_deferred_scan_results_match_indexed(self):
        first = run('Emp(n, "d1")', make_instance())[0]
        warmed = make_instance()
        run('Emp(n, "d1")', warmed)
        run('Emp(n, "d1")', warmed)
        third = run('Emp(n, "d1")', warmed)[0]
        key = lambda bs: {tuple(sorted((v.name, x) for v, x in b.items())) for b in bs}
        assert key(first) == key(third)


class TestDeferSemantics:
    def test_first_request_true_then_false(self):
        inst = make_instance()
        assert inst.defer_single_probe("Emp", (1,)) is True
        assert inst.defer_single_probe("Emp", (1,)) is False
        assert inst.defer_single_probe("Emp", (1,)) is False

    def test_keys_are_independent(self):
        inst = make_instance()
        assert inst.defer_single_probe("Emp", (1,)) is True
        assert inst.defer_single_probe("Emp", (0,)) is True
        assert inst.defer_single_probe("Dept", (1,)) is True

    def test_built_index_is_never_deferred(self):
        inst = make_instance()
        inst.index("Emp", (1,))
        assert inst.defer_single_probe("Emp", (1,)) is False

    def test_derived_instance_defers_afresh(self):
        from repro.relational import Fact, constant

        inst = make_instance()
        inst.defer_single_probe("Emp", (1,))
        derived = inst.with_facts(
            [Fact("Emp", (constant("eve"), constant("d9")))]
        )
        assert derived.defer_single_probe("Emp", (1,)) is True
