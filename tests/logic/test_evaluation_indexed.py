"""Indexed evaluation vs the seed scan evaluator: they must agree exactly.

The indexed engine (:func:`repro.logic.evaluation.evaluate`) plans a join
order once and probes hash indexes; the seed engine
(:func:`~repro.logic.evaluation.evaluate_scan`) re-picks the most-bound
atom per recursion step and scans.  Every test here asserts the two
return *identical binding sets* — the property the chase relies on for
byte-identical universal solutions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.evaluation import (
    evaluate,
    evaluate_delta,
    evaluate_scan,
    set_indexes_enabled,
)
from repro.logic.formulas import Conjunction, ConstantPredicate, Equality, atom, conj
from repro.logic.parser import parse_conjunction
from repro.logic.terms import FuncTerm, Var, const
from repro.obs import MetricsRegistry, collecting
from repro.relational import Fact, Instance, LabeledNull, constant, instance, relation, schema
from repro.relational.values import SkolemValue


def binding_set(bindings):
    """Bindings as a canonical, comparable set."""
    return {tuple(sorted((v.name, value) for v, value in b.items())) for b in bindings}


def assert_same(conjunction, inst, seed=None):
    indexed = binding_set(evaluate(conjunction, inst, seed, use_indexes=True))
    planned_scan = binding_set(evaluate(conjunction, inst, seed, use_indexes=False))
    reference = binding_set(evaluate_scan(conjunction, inst, seed))
    assert indexed == reference
    assert planned_scan == reference
    return indexed


@pytest.fixture
def joined():
    s = schema(
        relation("Emp", "name", "dept"),
        relation("Dept", "dept", "head"),
        relation("Likes", "a", "b"),
    )
    return instance(
        s,
        {
            "Emp": [["ann", "d1"], ["bob", "d2"], ["cyd", "d1"], ["dee", "d3"]],
            "Dept": [["d1", "hana"], ["d2", "hugo"], ["d3", "hana"]],
            "Likes": [["ann", "bob"], ["bob", "bob"], ["cyd", "ann"]],
        },
    )


class TestCrossCheck:
    def test_two_atom_join(self, joined):
        out = assert_same(parse_conjunction("Emp(n, d), Dept(d, h)"), joined)
        assert len(out) == 4

    def test_three_atom_join(self, joined):
        assert_same(parse_conjunction("Emp(n, d), Dept(d, h), Likes(n, m)"), joined)

    def test_seeded_bindings(self, joined):
        c = parse_conjunction("Emp(n, d), Dept(d, h)")
        seed = {Var("d"): constant("d1")}
        out = assert_same(c, joined, seed)
        assert len(out) == 2

    def test_seed_variable_not_in_conjunction(self, joined):
        c = parse_conjunction("Dept(d, h)")
        seed = {Var("zzz"): constant("ghost")}
        out = assert_same(c, joined, seed)
        # The unrelated seed variable rides along in every binding.
        assert all(("zzz", constant("ghost")) in b for b in out)

    def test_repeated_variable_across_atoms(self, joined):
        # x must be a self-liker and an employee.
        out = assert_same(parse_conjunction("Likes(x, x), Emp(x, d)"), joined)
        assert len(out) == 1

    def test_repeated_variable_within_atom(self, joined):
        out = assert_same(parse_conjunction("Likes(x, x)"), joined)
        assert len(out) == 1

    def test_constants_prune(self, joined):
        c = conj(atom("Emp", "n", const("d1")), atom("Dept", const("d1"), "h"))
        out = assert_same(c, joined)
        assert len(out) == 2

    def test_absent_relation(self, joined):
        assert_same(parse_conjunction("Emp(n, d), Ghost(d)"), joined) == set()

    def test_empty_conjunction_with_seed(self, joined):
        out = assert_same(Conjunction(()), joined, {Var("x"): constant(1)})
        assert len(out) == 1

    def test_funcparam_unbound_at_match_time(self):
        # f(y)'s argument is never bound when the R atom is matched: both
        # engines greedily pick R first (FuncTerm scores above nothing),
        # the term evaluation raises KeyError internally, and the match
        # fails — identically in both engines.
        s = schema(relation("R", "a", "b"), relation("S", "c"))
        sk = SkolemValue("f", (constant(7),))
        inst = Instance(
            s, [Fact("R", (constant(1), sk)), Fact("S", (constant(7),))]
        )
        c = conj(atom("R", "x", FuncTerm("f", (Var("y"),))), atom("S", "y"))
        assert_same(c, inst)

    def test_funcparam_bound_by_seed(self):
        s = schema(relation("R", "a", "b"))
        sk = SkolemValue("f", (constant(7),))
        inst = Instance(s, [Fact("R", (constant(1), sk))])
        c = conj(atom("R", "x", FuncTerm("f", (Var("y"),))))
        out = assert_same(c, inst, seed={Var("y"): constant(7)})
        assert len(out) == 1

    def test_side_conditions(self, joined):
        c = conj(
            atom("Emp", "n", "d"),
            atom("Dept", "d", "h"),
            Equality(Var("h"), const("hana")),
            ConstantPredicate(Var("n")),
        )
        out = assert_same(c, joined)
        assert len(out) == 3

    def test_nulls_in_index_keys(self):
        s = schema(relation("A", "x"), relation("B", "x"))
        inst = Instance(
            s,
            [
                Fact("A", (LabeledNull(0),)),
                Fact("B", (LabeledNull(0),)),
                Fact("B", (LabeledNull(1),)),
            ],
        )
        out = assert_same(parse_conjunction("A(x), B(x)"), inst)
        assert len(out) == 1


class TestDelta:
    def test_delta_union_equals_full(self, joined):
        """evaluate(old) ∪ evaluate_delta(new, delta) == evaluate(new)."""
        c = parse_conjunction("Emp(n, d), Dept(d, h)")
        old = joined.without_facts([Fact("Emp", (constant("cyd"), constant("d1")))])
        grown = old.with_facts([Fact("Emp", (constant("cyd"), constant("d1")))])
        delta = {"Emp": {(constant("cyd"), constant("d1"))}}
        full = binding_set(evaluate(c, grown))
        stale = binding_set(evaluate(c, old))
        fresh = binding_set(evaluate_delta(c, grown, delta))
        assert stale | fresh == full
        # The delta pass enumerates only the new employee's bindings.
        assert all(("n", constant("cyd")) in b for b in fresh)

    def test_delta_dedupes_across_atoms(self):
        s = schema(relation("R", "a", "b"))
        inst = instance(s, {"R": [[1, 2], [2, 3]]})
        c = parse_conjunction("R(x, y), R(y, z)")
        # Both atoms read R, so a binding touching two delta rows is
        # discoverable twice — it must come out once.
        delta = {"R": set(inst.rows("R"))}
        fresh = list(evaluate_delta(c, inst, delta))
        assert len(fresh) == len(binding_set(fresh)) == 1


class TestMetrics:
    def test_index_counters_recorded(self, joined):
        with collecting() as registry:
            list(evaluate(parse_conjunction("Emp(n, d), Dept(d, h)"), joined))
            counters = registry.snapshot()["counters"]
        assert counters["evaluate.calls"] == 1
        assert counters["evaluate.index_builds"] >= 1
        assert counters["evaluate.index_probes"] >= 3
        assert counters["evaluate.index_hits"] >= 1

    def test_scan_mode_records_no_probes(self, joined):
        with collecting() as registry:
            list(
                evaluate(
                    parse_conjunction("Emp(n, d), Dept(d, h)"),
                    joined,
                    use_indexes=False,
                )
            )
            counters = registry.snapshot()["counters"]
        assert "evaluate.index_probes" not in counters
        assert counters["evaluate.rows_scanned"] >= 4

    def test_set_indexes_enabled_toggle(self, joined):
        try:
            set_indexes_enabled(False)
            with collecting() as registry:
                list(evaluate(parse_conjunction("Emp(n, d), Dept(d, h)"), joined))
                assert "evaluate.index_probes" not in registry.snapshot()["counters"]
        finally:
            set_indexes_enabled(None)


# -- property-style cross-check ---------------------------------------------

_VALUES = st.one_of(
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["a", "b", "c"]),
    st.builds(LabeledNull, st.integers(min_value=0, max_value=2)),
)
_ROWS2 = st.lists(st.tuples(_VALUES, _VALUES), max_size=8)
_ROWS1 = st.lists(st.tuples(_VALUES), max_size=6)
_VARS = st.sampled_from(["x", "y", "z", "w"])


@st.composite
def _random_case(draw):
    s = schema(relation("R", "a", "b"), relation("S", "c", "d"), relation("T", "e"))
    facts = []
    for name, rows in (("R", draw(_ROWS2)), ("S", draw(_ROWS2)), ("T", draw(_ROWS1))):
        for row in rows:
            facts.append(
                Fact(
                    name,
                    tuple(v if isinstance(v, LabeledNull) else constant(v) for v in row),
                )
            )
    inst = Instance(s, facts)
    atoms = []
    for rel, arity in draw(
        st.lists(
            st.sampled_from([("R", 2), ("S", 2), ("T", 1)]), min_size=1, max_size=3
        )
    ):
        names = [draw(_VARS) for _ in range(arity)]
        atoms.append(atom(rel, *names))
    return inst, conj(*atoms)


@settings(max_examples=60, deadline=None)
@given(_random_case())
def test_property_indexed_equals_scan(case):
    inst, conjunction = case
    assert_same(conjunction, inst)
