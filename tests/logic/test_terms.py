"""Tests for terms: variables, constants, function terms."""

import pytest

from repro.logic.terms import (
    Const,
    FuncTerm,
    Var,
    const,
    evaluate_term,
    functions_of,
    is_ground,
    substitute_term,
    var,
    variables_of,
)
from repro.relational.values import Constant, SkolemValue, constant


class TestConstruction:
    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const_helper(self):
        assert const(5) == Const(Constant(5))

    def test_var_helper(self):
        assert var("x") == Var("x")

    def test_func_term_repr(self):
        assert repr(FuncTerm("f", (Var("x"), const(1)))) == "f(x, 1)"


class TestVariables:
    def test_variables_of_var(self):
        assert list(variables_of(Var("x"))) == [Var("x")]

    def test_variables_of_const_empty(self):
        assert list(variables_of(const(1))) == []

    def test_variables_of_nested_func(self):
        term = FuncTerm("f", (Var("x"), FuncTerm("g", (Var("y"),))))
        assert list(variables_of(term)) == [Var("x"), Var("y")]

    def test_functions_of_nested(self):
        term = FuncTerm("f", (FuncTerm("g", ()),))
        assert list(functions_of(term)) == ["f", "g"]

    def test_is_ground(self):
        assert is_ground(const(1))
        assert is_ground(FuncTerm("f", (const(1),)))
        assert not is_ground(FuncTerm("f", (Var("x"),)))


class TestSubstitution:
    def test_substitute_var(self):
        assert substitute_term(Var("x"), {Var("x"): const(1)}) == const(1)

    def test_substitute_missing_is_identity(self):
        assert substitute_term(Var("x"), {}) == Var("x")

    def test_substitute_inside_function(self):
        term = FuncTerm("f", (Var("x"),))
        out = substitute_term(term, {Var("x"): Var("y")})
        assert out == FuncTerm("f", (Var("y"),))


class TestEvaluation:
    def test_variable_lookup(self):
        assert evaluate_term(Var("x"), {Var("x"): constant(3)}) == constant(3)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate_term(Var("x"), {})

    def test_constant_term(self):
        assert evaluate_term(const("a"), {}) == constant("a")

    def test_function_term_becomes_skolem(self):
        term = FuncTerm("f", (Var("x"),))
        value = evaluate_term(term, {Var("x"): constant(1)})
        assert value == SkolemValue("f", (constant(1),))

    def test_nested_function_terms(self):
        term = FuncTerm("f", (FuncTerm("g", (Var("x"),)),))
        value = evaluate_term(term, {Var("x"): constant(1)})
        assert value == SkolemValue("f", (SkolemValue("g", (constant(1),)),))
