"""Tests for atoms, conjunctions, disjunctions and literal helpers."""

import pytest

from repro.logic.formulas import (
    Atom,
    Conjunction,
    ConstantPredicate,
    Disjunction,
    Equality,
    Inequality,
    atom,
    conj,
)
from repro.logic.terms import Const, FuncTerm, Var, const


class TestAtomHelper:
    def test_strings_become_variables(self):
        a = atom("R", "x", "y")
        assert a.terms == (Var("x"), Var("y"))

    def test_ints_become_constants(self):
        a = atom("R", "x", 5)
        assert a.terms[1] == const(5)

    def test_explicit_terms_pass_through(self):
        f = FuncTerm("f", (Var("x"),))
        assert atom("R", f).terms == (f,)


class TestAtom:
    def test_variables_in_first_occurrence_order(self):
        a = atom("R", "y", "x", "y")
        assert a.variables() == [Var("y"), Var("x")]

    def test_variables_inside_function_terms(self):
        a = Atom("R", (FuncTerm("f", (Var("z"),)),))
        assert a.variables() == [Var("z")]

    def test_substitute(self):
        a = atom("R", "x").substitute({Var("x"): const(1)})
        assert a.terms == (const(1),)

    def test_is_first_order(self):
        assert atom("R", "x").is_first_order()
        assert not Atom("R", (FuncTerm("f", ()),)).is_first_order()

    def test_arity(self):
        assert atom("R", "x", "y").arity == 2


class TestConjunction:
    def test_partition_accessors(self):
        c = conj(
            atom("R", "x"),
            Equality(Var("x"), const(1)),
            Inequality(Var("x"), const(2)),
            ConstantPredicate(Var("x")),
        )
        assert len(c.atoms()) == 1
        assert len(c.equalities()) == 1
        assert len(c.inequalities()) == 1
        assert len(c.constant_predicates()) == 1

    def test_variables_ordered_and_unique(self):
        c = conj(atom("R", "b", "a"), atom("S", "a", "c"))
        assert c.variables() == [Var("b"), Var("a"), Var("c")]

    def test_relations(self):
        c = conj(atom("R", "x"), atom("S", "x"))
        assert c.relations() == {"R", "S"}

    def test_and_also_concatenates(self):
        combined = conj(atom("R", "x")).and_also(conj(atom("S", "y")))
        assert len(combined) == 2

    def test_substitute_all_literals(self):
        c = conj(atom("R", "x"), Equality(Var("x"), Var("y")))
        out = c.substitute({Var("x"): const(7)})
        assert out.atoms()[0].terms == (const(7),)
        assert out.equalities()[0].left == const(7)

    def test_is_first_order(self):
        assert conj(atom("R", "x")).is_first_order()
        assert not conj(Equality(Var("x"), FuncTerm("f", (Var("x"),)))).is_first_order()

    def test_empty_repr(self):
        assert repr(Conjunction([])) == "⊤"

    def test_iteration(self):
        c = conj(atom("R", "x"), atom("S", "y"))
        assert len(list(c)) == 2


class TestDisjunction:
    def test_requires_branch(self):
        with pytest.raises(ValueError):
            Disjunction([])

    def test_variables_across_branches(self):
        d = Disjunction([conj(atom("R", "x")), conj(atom("S", "y"))])
        assert d.variables() == [Var("x"), Var("y")]

    def test_substitute(self):
        d = Disjunction([conj(atom("R", "x"))]).substitute({Var("x"): const(1)})
        assert list(d)[0].atoms()[0].terms == (const(1),)

    def test_repr_joins_with_or(self):
        d = Disjunction([conj(atom("R", "x")), conj(atom("S", "x"))])
        assert "∨" in repr(d)


class TestLiteralVariables:
    def test_equality_variables(self):
        e = Equality(Var("a"), FuncTerm("f", (Var("b"),)))
        assert e.variables() == [Var("a"), Var("b")]

    def test_constant_predicate_variables(self):
        assert ConstantPredicate(Var("z")).variables() == [Var("z")]
