"""Tests for conjunctive-formula evaluation over instances."""

import pytest

from repro.logic.evaluation import answers, evaluate, ground_atoms, satisfiable
from repro.logic.formulas import ConstantPredicate, Equality, Inequality, atom, conj
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var, const
from repro.relational import (
    Fact,
    Instance,
    LabeledNull,
    constant,
    instance,
    relation,
    schema,
)


@pytest.fixture
def db(emp_dept_schema, emp_dept_instance):
    return emp_dept_instance


class TestSingleAtom:
    def test_all_bindings(self, db):
        bindings = list(evaluate(conj(atom("Emp", "n", "d")), db))
        assert len(bindings) == 3

    def test_constant_filters(self, db):
        c = conj(atom("Emp", "n", const("d1")))
        names = {b[Var("n")] for b in evaluate(c, db)}
        assert names == {constant("ann"), constant("cyd")}

    def test_repeated_variable_requires_equal_values(self):
        s = schema(relation("R", "a", "b"))
        inst = instance(s, {"R": [[1, 1], [1, 2]]})
        bindings = list(evaluate(conj(atom("R", "x", "x")), inst))
        assert len(bindings) == 1

    def test_missing_relation_yields_nothing(self, db):
        assert list(evaluate(conj(atom("Nope", "x")), db)) == []

    def test_arity_mismatch_raises(self, db):
        from repro.logic.evaluation import ArityMismatchError, evaluate_scan

        bad = conj(atom("Emp", "n", "d", "extra"))
        with pytest.raises(ArityMismatchError, match="arity 3.*arity 2"):
            list(evaluate(bad, db))
        with pytest.raises(ArityMismatchError):
            list(evaluate_scan(bad, db))

    def test_seed_restricts(self, db):
        c = conj(atom("Emp", "n", "d"))
        bindings = list(evaluate(c, db, seed={Var("d"): constant("d2")}))
        assert len(bindings) == 1


class TestJoins:
    def test_two_atom_join(self, db):
        c = parse_conjunction("Emp(n, d), Dept(d, h)")
        bindings = list(evaluate(c, db))
        assert len(bindings) == 3
        heads = {b[Var("h")] for b in bindings}
        assert heads == {constant("hana"), constant("hugo")}

    def test_answers_projection(self, db):
        c = parse_conjunction("Emp(n, d), Dept(d, h)")
        result = answers(c, [Var("n"), Var("h")], db)
        assert (constant("ann"), constant("hana")) in result

    def test_empty_join(self):
        s = schema(relation("A", "x"), relation("B", "x"))
        inst = instance(s, {"A": [[1]], "B": [[2]]})
        assert not satisfiable(parse_conjunction("A(x), B(x)"), inst)


class TestSideConditions:
    def test_equality_filter(self, db):
        c = conj(atom("Emp", "n", "d"), Equality(Var("d"), const("d1")))
        assert len(list(evaluate(c, db))) == 2

    def test_inequality_filter(self, db):
        c = conj(atom("Emp", "n", "d"), Inequality(Var("d"), const("d1")))
        assert len(list(evaluate(c, db))) == 1

    def test_constant_predicate_filters_nulls(self):
        s = schema(relation("R", "a"))
        inst = Instance(s, [Fact("R", (LabeledNull(0),)), Fact("R", (constant(1),))])
        c = conj(atom("R", "x"), ConstantPredicate(Var("x")))
        bindings = list(evaluate(c, inst))
        assert [b[Var("x")] for b in bindings] == [constant(1)]

    def test_function_equality_free_interpretation(self):
        from repro.logic.terms import FuncTerm
        from repro.relational.values import SkolemValue

        s = schema(relation("R", "a", "b"))
        sk = SkolemValue("f", (constant(1),))
        inst = Instance(s, [Fact("R", (constant(1), sk))])
        c = conj(
            atom("R", "x", "y"),
            Equality(Var("y"), FuncTerm("f", (Var("x"),))),
        )
        assert satisfiable(c, inst)


class TestNaiveNullSemantics:
    def test_nulls_are_matched_like_values(self):
        s = schema(relation("R", "a"))
        inst = Instance(s, [Fact("R", (LabeledNull(0),))])
        bindings = list(evaluate(conj(atom("R", "x")), inst))
        assert bindings[0][Var("x")] == LabeledNull(0)

    def test_distinct_nulls_do_not_join(self):
        s = schema(relation("A", "x"), relation("B", "x"))
        inst = Instance(
            s, [Fact("A", (LabeledNull(0),)), Fact("B", (LabeledNull(1),))]
        )
        assert not satisfiable(parse_conjunction("A(x), B(x)"), inst)


class TestGroundAtoms:
    def test_grounding(self):
        binding = {Var("x"): constant(1)}
        out = ground_atoms([atom("R", "x", 5)], binding)
        assert out == [("R", (constant(1), constant(5)))]

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            ground_atoms([atom("R", "x")], {})
