"""Tests for the dependency text parser."""

import pytest

from repro.logic.formulas import ConstantPredicate, Equality, Inequality
from repro.logic.parser import (
    ParseError,
    parse_conjunction,
    parse_rule,
    parse_rules,
    parse_rules_spanned,
)
from repro.logic.terms import Const, FuncTerm, Var, const


class TestBasicRules:
    def test_example_one(self):
        rule = parse_rule("Emp(x) -> exists y . Manager(x, y)")
        assert rule.lhs.atoms()[0].relation == "Emp"
        existentials, rhs = rule.single_rhs()
        assert existentials == (Var("y"),)
        assert rhs.atoms()[0].relation == "Manager"

    def test_implicit_existentials(self):
        rule = parse_rule("Emp(x) -> Manager(x, y)")
        existentials, _ = rule.single_rhs()
        assert existentials == ()  # inferred later by StTgd

    def test_multi_atom_sides(self):
        rule = parse_rule("Student(x, y), Assgn(y, z) -> Enrollment(x, z)")
        assert len(rule.lhs.atoms()) == 2

    def test_multiple_existentials(self):
        rule = parse_rule("R(x) -> exists y, z . S(x, y, z)")
        existentials, _ = rule.single_rhs()
        assert existentials == (Var("y"), Var("z"))


class TestConstantsAndTerms:
    def test_integer_constant(self):
        rule = parse_rule("R(x, 5) -> S(x)")
        assert rule.lhs.atoms()[0].terms[1] == const(5)

    def test_float_constant(self):
        rule = parse_rule("R(1.5) -> S(1.5)")
        assert rule.lhs.atoms()[0].terms[0] == const(1.5)

    def test_negative_number(self):
        rule = parse_rule("R(-3) -> S(-3)")
        assert rule.lhs.atoms()[0].terms[0] == const(-3)

    def test_quoted_string_constant(self):
        rule = parse_rule("R(x, 'NYC') -> S(x)")
        assert rule.lhs.atoms()[0].terms[1] == const("NYC")

    def test_double_quoted_string(self):
        rule = parse_rule('R("a b") -> S(x)')
        assert rule.lhs.atoms()[0].terms[0] == const("a b")

    def test_function_term(self):
        rule = parse_rule("Manager(x, y), x = f(x) -> SelfMngr(x)")
        equality = rule.lhs.equalities()[0]
        assert equality.right == FuncTerm("f", (Var("x"),))

    def test_uppercase_bare_term_rejected(self):
        with pytest.raises(ParseError, match="quote"):
            parse_rule("R(Alice) -> S(x)")


class TestSideConditions:
    def test_equality(self):
        rule = parse_rule("R(x, y), x = y -> S(x)")
        assert isinstance(rule.lhs.equalities()[0], Equality)

    def test_inequality(self):
        rule = parse_rule("R(x, y), x != y -> S(x)")
        assert isinstance(rule.lhs.inequalities()[0], Inequality)

    def test_constant_predicate(self):
        rule = parse_rule("Parent(x, y), C(x) -> Father(x, y)")
        assert isinstance(rule.lhs.constant_predicates()[0], ConstantPredicate)

    def test_constant_predicate_arity_enforced(self):
        with pytest.raises(ParseError, match="exactly one"):
            parse_rule("R(x), C(x, y) -> S(x)")


class TestDisjunction:
    def test_example_three_recovery(self):
        rule = parse_rule("Parent(x, y) -> Father(x, y) | Mother(x, y)")
        assert rule.is_disjunctive
        assert len(rule.branches) == 2

    def test_single_rhs_raises_on_disjunction(self):
        rule = parse_rule("P(x) -> A(x) | B(x)")
        with pytest.raises(ParseError):
            rule.single_rhs()

    def test_per_branch_existentials(self):
        rule = parse_rule("P(x) -> exists y . A(x, y) | B(x)")
        assert rule.branches[0][0] == (Var("y"),)
        assert rule.branches[1][0] == ()


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",                       # empty
            "R(x)",                   # no arrow
            "R(x) -> ",               # missing rhs
            "R(x -> S(x)",            # unbalanced parens
            "R(x) -> S(x) garbage",   # trailing tokens
            "R(x) @ S(x)",            # bad character
        ],
    )
    def test_malformed_rules(self, text):
        with pytest.raises(ParseError):
            parse_rule(text)


class TestBlocks:
    def test_parse_rules_skips_comments_and_blanks(self):
        rules = parse_rules(
            """
            # Example 1
            Emp(x) -> exists y . Manager(x, y)

            Manager(x, x) -> SelfMngr(x)
            """
        )
        assert len(rules) == 2

    def test_semicolon_separated(self):
        rules = parse_rules("A(x) -> B(x); B(x) -> A(x)")
        assert len(rules) == 2


class TestConjunctionEntry:
    def test_parse_conjunction(self):
        c = parse_conjunction("R(x, y), S(y)")
        assert len(c.atoms()) == 2

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_conjunction("R(x) ->")


class TestErrorLocations:
    def test_error_carries_line_and_column(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("R(x @ y) -> S(x)")
        err = excinfo.value
        assert err.line == 1
        assert err.column == 5
        assert "line 1, column 5" in str(err)

    def test_error_in_multiline_block_points_at_its_line(self):
        text = "# header comment\nA(x) -> B(x)\nB(x ->\n"
        with pytest.raises(ParseError) as excinfo:
            parse_rules(text)
        err = excinfo.value
        assert err.line == 3
        assert err.column > 1

    def test_source_name_appears_in_message_and_span(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("R(x @ y) -> S(x)", source="mapping.tgd")
        err = excinfo.value
        assert err.source == "mapping.tgd"
        assert "mapping.tgd" in str(err)
        span = err.span
        assert span.location() == "mapping.tgd:1:5"

    def test_span_as_dict_round_trips_through_json(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("R(x @ y) -> S(x)", source="m.tgd")
        payload = excinfo.value.span.as_dict()
        assert payload["line"] == 1
        assert payload["column"] == 5
        assert payload["source"] == "m.tgd"


class TestSpannedRules:
    def test_spans_cover_each_rule(self):
        text = "# Example 1\nEmp(x) -> exists y . Manager(x, y)\n\nManager(x, x) -> SelfMngr(x)\n"
        spanned = parse_rules_spanned(text, source="rules.tgd")
        assert [s.span.line for s in spanned] == [2, 4]
        assert all(s.span.column == 1 for s in spanned)
        assert spanned[0].span.location() == "rules.tgd:2:1"
        assert spanned[0].rule.lhs.atoms()[0].relation == "Emp"

    def test_span_text_holds_the_rule_source(self):
        spanned = parse_rules_spanned("A(x) -> B(x)")
        assert spanned[0].span.text == "A(x) -> B(x)"

    def test_semicolon_rules_share_a_line_with_distinct_columns(self):
        spanned = parse_rules_spanned("A(x) -> B(x); B(x) -> A(x)")
        assert [s.span.line for s in spanned] == [1, 1]
        assert spanned[0].span.column < spanned[1].span.column
