"""Tests for statistics gathering and estimation."""

import pytest

from repro.relational import instance, relation, schema
from repro.stats import RelationStatistics, Statistics


@pytest.fixture
def db():
    s = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
    inst = instance(
        s,
        {
            "Emp": [["a", "d1"], ["b", "d1"], ["c", "d2"], ["d", "d2"]],
            "Dept": [["d1", "h1"], ["d2", "h2"]],
        },
    )
    return s, inst


class TestGather:
    def test_cardinalities(self, db):
        _, inst = db
        stats = Statistics.gather(inst)
        assert stats.cardinality("Emp") == 4
        assert stats.cardinality("Dept") == 2

    def test_distinct_counts(self, db):
        _, inst = db
        stats = Statistics.gather(inst)
        assert stats.for_relation("Emp").distinct_of("name") == 4
        assert stats.for_relation("Emp").distinct_of("dept") == 2

    def test_unknown_relation_defaults_to_zero(self, db):
        _, inst = db
        stats = Statistics.gather(inst)
        assert stats.cardinality("Nope") == 0


class TestEstimates:
    def test_equality_selectivity(self, db):
        _, inst = db
        stats = Statistics.gather(inst)
        assert stats.for_relation("Emp").equality_selectivity("dept") == 0.5

    def test_selectivity_on_empty_relation(self):
        stats = RelationStatistics("R", 0)
        assert stats.equality_selectivity("a") == 0.0

    def test_join_size_estimate(self, db):
        _, inst = db
        stats = Statistics.gather(inst)
        estimate = stats.estimate_join_size("Emp", "Dept", ("dept",), ("dept",))
        # |Emp| * |Dept| / max(distinct) = 4*2/2 = 4 — the true join size.
        assert estimate == 4.0

    def test_assumed_statistics(self, db):
        s, _ = db
        stats = Statistics.assumed(s, default_cardinality=100)
        assert stats.cardinality("Emp") == 100
        assert stats.for_relation("Emp").distinct_of("name") == 10

    def test_merge_prefers_right(self, db):
        _, inst = db
        gathered = Statistics.gather(inst)
        override = Statistics({"Emp": RelationStatistics("Emp", 999)})
        merged = gathered.merge(override)
        assert merged.cardinality("Emp") == 999
        assert merged.cardinality("Dept") == 2

    def test_distinct_defaults_to_cardinality(self):
        stats = RelationStatistics("R", 7)
        assert stats.distinct_of("missing") == 7
