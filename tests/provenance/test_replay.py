"""Replay verification: recorded lineage re-derives the solution.

The acceptance property of the provenance subsystem: for every executor
path — serial chase, shard-parallel workers, cache hit, budget-interrupted
service resume — :func:`repro.provenance.replay` re-fires every recorded
rule on its recorded justifying facts and confirms each solution fact
comes back, through every null relabeling and egd rewrite in between.
"""

import dataclasses

import pytest

from repro import ExchangeOptions, ExchangeService, PartialSolution, SchemaMapping
from repro.exec import ParallelExchange
from repro.logic.parser import parse_rule
from repro.mapping import chase
from repro.mapping.dependencies import target_dependency_from_rule
from repro.provenance import ProvenanceLog, Solution, replay
from repro.relational import constant, instance, relation, schema


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))
JOIN_TEXT = "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"


def join_mapping():
    return SchemaMapping.parse(SRC, TGT, JOIN_TEXT)


def clustered_source(employees=12, depts=4):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


def target_rule(text):
    return target_dependency_from_rule(parse_rule(text))


def assert_replay_ok(solution, provenance, mapping, source):
    report = replay(solution, provenance, mapping, source=source)
    assert report.ok, report.render()
    size = solution.instance.size() if isinstance(solution, Solution) else solution.size()
    assert report.checked == size
    return report


class TestSerialReplay:
    def test_st_tgd_chase_replays(self):
        mapping = join_mapping()
        source = clustered_source()
        result = chase(mapping, source, provenance=True)
        report = assert_replay_ok(result.solution, result.provenance, mapping, source)
        assert report.verified == report.checked > 0

    def test_target_dependencies_and_egds_replay(self):
        source_schema = schema(relation("E", "n", "d"))
        target = schema(relation("Emp", "n", "d"), relation("Dept", "d", "h"))
        mapping = SchemaMapping.parse(
            source_schema,
            target,
            "E(n, d) -> Emp(n, d)",
            [
                target_rule("Emp(n, d) -> exists h . Dept(d, h)"),
                target_rule("Dept(d, h), Dept(d, h2) -> h = h2"),
            ],
        )
        source = instance(
            source_schema, {"E": [[f"e{i}", f"d{i % 3}"] for i in range(9)]}
        )
        result = chase(mapping, source, provenance=True)
        report = assert_replay_ok(result.solution, result.provenance, mapping, source)
        assert report.rewrites_checked >= 0  # egds may or may not fire

    def test_egd_rewrites_replay(self):
        source_schema = schema(relation("Emp", "name"))
        target = schema(relation("Manager", "emp", "mgr"))
        mapping = SchemaMapping.parse(
            source_schema,
            target,
            "Emp(n) -> exists w . Manager(n, w)\n"
            "Emp(n) -> exists v . Manager(n, v)",
            [target_rule("Manager(n, m), Manager(n, m2) -> m = m2")],
        )
        source = instance(source_schema, {"Emp": [["ava"], ["bo"]]})
        result = chase(mapping, source, provenance=True)
        report = assert_replay_ok(result.solution, result.provenance, mapping, source)
        assert report.rewrites_checked > 0


class TestParallelReplay:
    def test_sharded_exchange_replays_after_null_relabeling(self):
        mapping = join_mapping()
        source = clustered_source(employees=16, depts=4)
        store = ProvenanceLog()
        with ParallelExchange(mapping, workers=2, min_parallel_facts=0) as executor:
            solution = executor.exchange(source, provenance=store)
        assert len(store) > 0
        assert_replay_ok(solution, store, mapping, source)
        # Every invented null the log mentions exists in the solution.
        log_facts = set(store.facts())
        assert log_facts == set(solution.facts())


class TestCachedReplay:
    def test_cache_hit_returns_replayable_lineage(self):
        mapping = join_mapping()
        source = clustered_source()
        with ParallelExchange(
            mapping, workers=2, cache=4, min_parallel_facts=0
        ) as executor:
            first_store = ProvenanceLog()
            first = executor.exchange(source, provenance=first_store)
            hit_store = ProvenanceLog()
            hit = executor.exchange(source, provenance=hit_store)
        assert first == hit
        assert_replay_ok(first, first_store, mapping, source)
        assert_replay_ok(hit, hit_store, mapping, source)

    def test_provenance_less_entry_upgrades_on_demand(self):
        mapping = join_mapping()
        source = clustered_source()
        with ParallelExchange(
            mapping, workers=2, cache=4, min_parallel_facts=0
        ) as executor:
            executor.exchange(source)  # cached without provenance
            store = ProvenanceLog()
            solution = executor.exchange(source, provenance=store)
        assert len(store) > 0
        assert_replay_ok(solution, store, mapping, source)


class TestBudgetResumedReplay:
    def test_resumed_solution_explains_both_sides(self):
        source_schema = schema(relation("E", "n", "d"))
        target = schema(relation("Emp", "n", "d"), relation("Dept", "d"))
        mapping = SchemaMapping.parse(
            source_schema,
            target,
            "E(x, d) -> Emp(x, d)",
            [target_rule("Emp(x, d) -> Dept(d)")],
        )
        source = instance(
            source_schema, {"E": [[f"e{i}", f"d{i}"] for i in range(10)]}
        )
        options = ExchangeOptions(max_facts=12, provenance=True)
        with ExchangeService(mapping, options) as service:
            partial = service.exchange(source)
            assert isinstance(partial, PartialSolution)
            assert partial.token.phase == "target_dependencies"
            assert partial.provenance is not None
            assert len(partial.provenance) > 0
            resumed = service.resume(
                source, partial.token, options=ExchangeOptions(provenance=True)
            )
        assert isinstance(resumed, Solution)
        assert_replay_ok(resumed, resumed.provenance, mapping, source)
        # Lineage spans the interruption: facts from the st-tgd phase and
        # the resumed target-dependency phase are both justified.
        phases = {d.phase for d in resumed.provenance.derivations}
        assert phases == {"st_tgds", "target_dependencies"}


class TestReplayCatchesTampering:
    def test_forged_binding_is_reported(self):
        mapping = join_mapping()
        source = clustered_source(employees=4, depts=2)
        result = chase(mapping, source, provenance=True)
        log = result.provenance
        # Corrupt the first derivation's binding: point n at a name that
        # never occurs in the source.
        original = log.derivations[0]
        forged_binding = tuple(
            (name, constant("nobody") if name == "n" else value)
            for name, value in original.binding
        )
        log._derivations[0] = dataclasses.replace(original, binding=forged_binding)
        report = replay(result.solution, log, mapping, source=source)
        assert not report.ok
        assert report.issues
        assert any("premise" in issue.reason or "binding" in issue.reason
                   for issue in report.issues)


class TestDisabledMode:
    def test_noop_records_nothing_anywhere(self):
        mapping = join_mapping()
        source = clustered_source(employees=4, depts=2)
        result = chase(mapping, source)  # provenance off
        assert not result.provenance.enabled
        with ParallelExchange(mapping, workers=2, min_parallel_facts=0) as executor:
            solution = executor.exchange(source)
        assert solution.size() == result.solution.size()
