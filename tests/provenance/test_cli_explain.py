"""CLI provenance: ``repro explain``, ``--provenance`` and ``--provenance-json``."""

import json

import pytest

from repro.cli import main
from repro.relational import (
    instance,
    instance_to_json,
    relation,
    schema,
    schema_to_json,
)


@pytest.fixture
def files(tmp_path):
    source = schema(relation("Emp", "name", "dept"), relation("CityZip", "city", "zip"))
    target = schema(relation("Badge", "name", "serial", "dept"))
    schemas_file = tmp_path / "schemas.json"
    schemas_file.write_text(
        json.dumps(
            {"source": schema_to_json(source), "target": schema_to_json(target)}
        )
    )
    mapping_file = tmp_path / "mapping.tgd"
    mapping_file.write_text("Emp(n, d) -> exists s . Badge(n, s, d)\n")
    data_file = tmp_path / "source.json"
    data = instance(
        source,
        {"Emp": [["ava", "eng"], ["bo", "ops"]], "CityZip": []},
    )
    data_file.write_text(json.dumps(instance_to_json(data)))
    return tmp_path, schemas_file, mapping_file, data_file


def run(argv):
    return main([str(a) for a in argv])


class TestExplain:
    def test_prints_why_trees_with_source_facts(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            ["explain", "--schemas", schemas, "--mapping", mapping, "--data", data]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tgd_0" in out
        assert "Emp('ava', 'eng')  (source fact)" in out
        assert "invented: s=" in out

    def test_fact_pattern_filters(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            ["explain", "--schemas", schemas, "--mapping", mapping,
             "--data", data, "--fact", 'Badge("bo", _, _)']
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "'bo'" in out and "'ava'" not in out

    def test_unmatched_pattern_exits_one(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            ["explain", "--schemas", schemas, "--mapping", mapping,
             "--data", data, "--fact", 'Badge("nobody", _, _)']
        )
        assert code == 1
        assert "no solution facts match" in capsys.readouterr().err

    def test_malformed_pattern_is_a_cli_error(self, files):
        _, schemas, mapping, data = files
        with pytest.raises(SystemExit) as excinfo:
            run(["explain", "--schemas", schemas, "--mapping", mapping,
                 "--data", data, "--fact", "not a pattern"])
        assert excinfo.value.code == 2

    def test_json_mode_emits_structured_trees(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            ["explain", "--schemas", schemas, "--mapping", mapping,
             "--data", data, "--json", "--fact", 'Badge("ava", _, _)']
        )
        assert code == 0
        trees = json.loads(capsys.readouterr().out)
        assert len(trees) == 1
        assert trees[0]["kind"] == "derived"
        assert trees[0]["rule_id"] == "tgd_0"
        assert trees[0]["children"][0]["kind"] == "source"

    def test_limit_truncates(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            ["explain", "--schemas", schemas, "--mapping", mapping,
             "--data", data, "--limit", "1"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.out.count("└─ tgd_0 [st_tgds]") == 1
        assert "more facts" in captured.err


class TestProvenanceFlags:
    def test_exchange_writes_provenance_json_lines(self, files, capsys):
        tmp_path, schemas, mapping, data = files
        prov = tmp_path / "prov.jsonl"
        out = tmp_path / "target.json"
        code = run(
            ["exchange", "--schemas", schemas, "--mapping", mapping,
             "--data", data, "--out", out, "--provenance-json", prov]
        )
        assert code == 0
        records = [json.loads(line) for line in prov.read_text().splitlines()]
        assert len(records) == 2
        assert all(r["type"] == "derivation" for r in records)
        assert all(r["rule_id"] == "tgd_0" for r in records)
        # The solution itself still comes out as a plain instance file.
        assert json.loads(out.read_text())["facts"]

    def test_chase_writes_provenance_json_lines(self, files, capsys):
        tmp_path, schemas, mapping, data = files
        prov = tmp_path / "prov.jsonl"
        code = run(
            ["chase", "--schemas", schemas, "--mapping", mapping,
             "--data", data, "--out", tmp_path / "t.json",
             "--provenance-json", prov]
        )
        assert code == 0
        assert len(prov.read_text().splitlines()) == 2

    def test_provenance_flag_alone_changes_nothing_visible(self, files, capsys):
        tmp_path, schemas, mapping, data = files
        baseline = tmp_path / "a.json"
        flagged = tmp_path / "b.json"
        assert run(["exchange", "--schemas", schemas, "--mapping", mapping,
                    "--data", data, "--out", baseline]) == 0
        assert run(["exchange", "--schemas", schemas, "--mapping", mapping,
                    "--data", data, "--out", flagged, "--provenance"]) == 0
        assert json.loads(baseline.read_text()) == json.loads(flagged.read_text())
