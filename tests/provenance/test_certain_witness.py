"""Certain-answer witnesses: ``certain_answers(..., explain=True)``."""

from repro import SchemaMapping, certain_answers
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import chase
from repro.provenance import Solution
from repro.relational import constant, instance, relation, schema


SRC = schema(relation("Emp", "name", "dept"))
TGT = schema(relation("Manager", "name", "mgr"), relation("Dept", "name", "dept"))
TEXT = """
Emp(n, d) -> exists w . Manager(n, w)
Emp(n, d) -> Dept(n, d)
"""


def mapping():
    return SchemaMapping.parse(SRC, TGT, TEXT)


def source():
    return instance(SRC, {"Emp": [["ava", "eng"], ["bo", "ops"]]})


QUERY = parse_conjunction("Dept(n, d)")
HEAD = [Var("n"), Var("d")]


class TestWitnesses:
    def test_explained_answers_match_plain_answers(self):
        plain = certain_answers(mapping(), source(), QUERY, HEAD)
        witnessed = certain_answers(mapping(), source(), QUERY, HEAD, explain=True)
        assert set(witnessed) == plain

    def test_witness_carries_facts_and_why_trees(self):
        witnessed = certain_answers(mapping(), source(), QUERY, HEAD, explain=True)
        answer = (constant("ava"), constant("eng"))
        witness = witnessed[answer]
        assert [f.relation for f in witness.facts] == ["Dept"]
        assert len(witness.why) == 1
        tree = witness.why[0]
        assert tree.kind == "derived"
        assert any(node.kind == "source" for node in tree.walk())
        rendered = witness.render()
        assert "because:" in rendered and "(source fact)" in rendered

    def test_null_valued_answers_are_excluded(self):
        # Manager's mgr position is existential: no certain answer binds it.
        query = parse_conjunction("Manager(n, m)")
        witnessed = certain_answers(
            mapping(), source(), query, [Var("n"), Var("m")], explain=True
        )
        assert witnessed == {}

    def test_precomputed_solution_with_provenance(self):
        src = source()
        result = chase(mapping(), src, provenance=True)
        solution = Solution(result.solution, result.provenance, src)
        witnessed = certain_answers(
            mapping(), src, QUERY, HEAD, solution=solution, explain=True
        )
        assert all(w.why for w in witnessed.values())

    def test_precomputed_plain_instance_has_no_why(self):
        src = source()
        result = chase(mapping(), src)
        witnessed = certain_answers(
            mapping(), src, QUERY, HEAD, solution=result.solution, explain=True
        )
        assert witnessed
        assert all(w.why == () and w.facts for w in witnessed.values())

    def test_solution_accepted_without_explain(self):
        src = source()
        result = chase(mapping(), src, provenance=True)
        solution = Solution(result.solution, result.provenance, src)
        plain = certain_answers(mapping(), src, QUERY, HEAD, solution=solution)
        assert plain == certain_answers(mapping(), src, QUERY, HEAD)
