"""Why-trees: Solution.explain across chase phases, and the disabled mode."""

import pytest

from repro import ExchangeEngine, ExchangeOptions, SchemaMapping
from repro.mapping import chase
from repro.mapping.dependencies import TargetTgd
from repro.logic.parser import parse_rule
from repro.provenance import NOOP, Solution
from repro.relational import constant, instance, relation, schema
from repro.relational.instance import Fact, Instance


SRC = schema(relation("Emp", "name", "dept"))
TGT = schema(relation("Manager", "name", "mgr"), relation("Dept", "name", "dept"))
TEXT = """
Emp(n, d) -> exists w . Manager(n, w)
Emp(n, d) -> Dept(n, d)
"""


def target_rule(text, kind):
    rule = parse_rule(text)
    if kind == "tgd":
        return TargetTgd(rule.lhs, rule.branches[0][1])
    return kind(rule)


def source_instance():
    return instance(SRC, {"Emp": [["ava", "eng"], ["bo", "ops"]]})


def provenance_engine(mapping=None, **options):
    mapping = mapping or SchemaMapping.parse(SRC, TGT, TEXT)
    return ExchangeEngine.compile(
        mapping, options=ExchangeOptions(provenance=True, **options)
    )


class TestSolutionWrapper:
    def test_exchange_returns_solution_with_instance_protocol(self):
        engine = provenance_engine()
        result = engine.exchange(source_instance())
        assert isinstance(result, Solution)
        # Instance delegation: size/facts/schema work unchanged.
        assert result.size() == result.instance.size() == 4
        assert set(result.facts()) == set(result.instance.facts())

    def test_explain_reaches_source_facts(self):
        engine = provenance_engine()
        source = source_instance()
        result = engine.exchange(source)
        target_fact = Fact("Dept", (constant("ava"), constant("eng")))
        tree = result.explain(target_fact)
        assert tree.kind == "derived"
        assert tree.phase == "st_tgds"
        leaves = [node for node in tree.walk() if node.kind == "source"]
        assert [leaf.fact for leaf in leaves] == [
            Fact("Emp", (constant("ava"), constant("eng")))
        ]

    def test_explain_accepts_relation_row_pair(self):
        result = provenance_engine().exchange(source_instance())
        tree = result.explain(("Dept", ("ava", "eng")))
        assert tree.kind == "derived"

    def test_explain_rejects_unknown_fact(self):
        result = provenance_engine().exchange(source_instance())
        with pytest.raises(ValueError, match="not a fact"):
            result.explain(("Dept", ("nobody", "x")))

    def test_explain_all_respects_limit(self):
        result = provenance_engine().exchange(source_instance())
        trees = result.explain_all(limit=2)
        assert len(trees) == 2
        assert all(t.kind == "derived" for t in trees)

    def test_invented_values_recorded(self):
        result = provenance_engine().exchange(source_instance())
        fact = next(f for f in result.facts() if f.relation == "Manager")
        tree = result.explain(fact)
        assert dict(tree.existentials).keys() == {"w"}
        rendered = tree.render()
        assert "invented: w=" in rendered
        assert "(source fact)" in rendered


class TestChasePhases:
    def test_target_dependency_chain_in_tree(self):
        # Dept facts spawn Head facts in the target chase; the tree must
        # chain Head -> Dept -> source Emp.
        target = schema(
            relation("Dept", "name", "dept"), relation("Seen", "dept")
        )
        mapping = SchemaMapping.parse(
            SRC,
            target,
            "Emp(n, d) -> Dept(n, d)",
            [target_rule("Dept(n, d) -> Seen(d)", "tgd")],
        )
        result = chase(mapping, source_instance(), provenance=True)
        assert result.provenance.enabled
        solution = Solution(result.solution, result.provenance, source_instance())
        tree = solution.explain(Fact("Seen", (constant("eng"),)))
        assert tree.phase == "target_dependencies"
        kinds = [node.kind for node in tree.walk()]
        assert kinds == ["derived", "derived", "source"]

    def test_egd_rewrite_shows_in_tree(self):
        from repro.mapping.dependencies import target_dependency_from_rule

        target = schema(relation("Manager", "name", "mgr"))
        egd = target_dependency_from_rule(
            parse_rule("Manager(n, m), Manager(n, m2) -> m = m2")
        )
        mapping = SchemaMapping.parse(
            schema(relation("Emp", "name")),
            target,
            "Emp(n) -> exists w . Manager(n, w)\n"
            "Emp(n) -> exists v . Manager(n, v)",
            [egd],
        )
        source = instance(schema(relation("Emp", "name")), {"Emp": [["ava"]]})
        result = chase(mapping, source, provenance=True)
        solution = Solution(result.solution, result.provenance, source)
        (fact,) = solution.instance.facts()
        tree = solution.explain(fact)
        assert tree.rewrites or tree.alternatives
        rendered = tree.render()
        assert "alternative derivation" in rendered or "rewritten:" in rendered


class TestDisabledMode:
    def test_exchange_returns_plain_instance(self):
        mapping = SchemaMapping.parse(SRC, TGT, TEXT)
        engine = ExchangeEngine.compile(mapping)
        result = engine.exchange(source_instance())
        assert isinstance(result, Instance)
        assert not isinstance(result, Solution)

    def test_chase_result_provenance_is_noop(self):
        mapping = SchemaMapping.parse(SRC, TGT, TEXT)
        result = chase(mapping, source_instance())
        assert result.provenance is NOOP
        assert not result.provenance.enabled
