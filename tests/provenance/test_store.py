"""Unit tests for the provenance log and its disabled no-op twin."""

from repro.provenance import NOOP, ProvenanceLog, ProvenanceStore, resolve_provenance
from repro.provenance.model import fact_in, format_fact, named_values
from repro.relational import constant, instance, relation, schema
from repro.relational.instance import Fact
from repro.relational.values import LabeledNull


def fact(rel, *values):
    return Fact(rel, tuple(constant(v) if not isinstance(v, LabeledNull) else v
                           for v in values))


def record_simple_firing(log, rel="T", rule_id="tgd_0"):
    derived = fact(rel, "a", "b")
    log.record_firing(
        rule_id,
        "S(x, y) -> T(x, y)",
        "st_tgds",
        [fact("S", "a", "b")],
        {"x": constant("a"), "y": constant("b")},
        {},
        [derived],
    )
    return derived


class TestNoopStore:
    def test_disabled_and_records_nothing(self):
        assert NOOP.enabled is False
        # Both record calls are no-ops and return None.
        assert NOOP.record_firing("r", "t", "p", [], {}, {}, []) is None
        assert NOOP.record_rewrite("r", "t", None, None, [], {}) is None
        assert isinstance(NOOP, ProvenanceStore)

    def test_resolve_provenance(self):
        assert resolve_provenance(False) is NOOP
        assert resolve_provenance(None) is NOOP
        log = resolve_provenance(True)
        assert isinstance(log, ProvenanceLog)
        assert resolve_provenance(True) is not log  # fresh per call
        assert resolve_provenance(log) is log  # passthrough


class TestRecording:
    def test_firing_indexes_each_fact(self):
        log = ProvenanceLog()
        derived = record_simple_firing(log)
        assert len(log) == 1
        (derivation,) = log.derivations_for(derived)
        assert derivation.rule_id == "tgd_0"
        assert derivation.premise == (fact("S", "a", "b"),)
        assert dict(derivation.binding) == {
            "x": constant("a"), "y": constant("b"),
        }
        assert set(log.facts()) == {derived}

    def test_rewrite_remaps_current_index(self):
        log = ProvenanceLog()
        null1, null2 = LabeledNull(1), LabeledNull(2)
        f1 = Fact("T", (constant("a"), null1))
        log.record_firing("tgd_0", "r", "st_tgds", [], {}, {"y": null1}, [f1])
        log.record_rewrite("egd_0", "e", null1, null2, [], {})
        current = Fact("T", (constant("a"), null2))
        assert log.derivations_for(current)
        assert not log.derivations_for(f1)
        # The record itself stays immutable.
        assert log.derivations[0].fact == f1
        assert log.current_fact(log.derivations[0]) == current

    def test_merged_facts_concatenate_derivations(self):
        log = ProvenanceLog()
        null1, null2 = LabeledNull(1), LabeledNull(2)
        a = Fact("T", (constant("a"), null1))
        b = Fact("T", (constant("a"), null2))
        log.record_firing("tgd_0", "r", "st_tgds", [], {}, {}, [a])
        log.record_firing("tgd_1", "r2", "st_tgds", [], {}, {}, [b])
        log.record_rewrite("egd_0", "e", null1, null2, [], {})
        merged = Fact("T", (constant("a"), null2))
        derivations = log.derivations_for(merged)
        assert {d.rule_id for d in derivations} == {"tgd_0", "tgd_1"}

    def test_substitution_after_composes_chains(self):
        log = ProvenanceLog()
        n1, n2, n3 = LabeledNull(1), LabeledNull(2), LabeledNull(3)
        log.record_rewrite("e1", "t", n1, n2, [], {})
        log.record_rewrite("e2", "t", n2, n3, [], {})
        assert log.substitution_after(-1) == {n1: n3, n2: n3}
        assert log.substitution_after(0) == {n2: n3}
        assert log.substitution_after(1) == {}


class TestSeams:
    def test_map_values_relabels_everything(self):
        log = ProvenanceLog()
        null = LabeledNull(0)
        derived = Fact("T", (constant("a"), null))
        log.record_firing(
            "tgd_0", "r", "st_tgds", [fact("S", "a")], {"x": constant("a")},
            {"y": null}, [derived],
        )
        fresh = LabeledNull(100)
        mapped = log.map_values({null: fresh})
        relabeled = Fact("T", (constant("a"), fresh))
        (derivation,) = mapped.derivations_for(relabeled)
        assert derivation.fact == relabeled
        assert dict(derivation.existentials) == {"y": fresh}
        # The original log is untouched.
        assert log.derivations_for(derived)

    def test_absorb_renumbers_steps_and_merges_index(self):
        a, b = ProvenanceLog(), ProvenanceLog()
        fa = record_simple_firing(a, rel="A")
        fb = record_simple_firing(b, rel="B", rule_id="tgd_9")
        a.absorb(b)
        assert len(a) == 2
        assert a.derivations_for(fa) and a.derivations_for(fb)
        steps = [d.step for d in a.derivations]
        assert steps == sorted(steps) and len(set(steps)) == 2

    def test_copy_is_independent(self):
        log = ProvenanceLog()
        record_simple_firing(log)
        dup = log.copy()
        record_simple_firing(dup, rel="U")
        assert len(log) == 1 and len(dup) == 2

    def test_json_round_trip(self):
        log = ProvenanceLog()
        null1, null2 = LabeledNull(1), LabeledNull(2)
        f1 = Fact("T", (constant("a"), null1))
        log.record_firing("tgd_0", "r", "st_tgds", [fact("S", "a")],
                          {"x": constant("a")}, {"y": null1}, [f1])
        log.record_rewrite("egd_0", "e", null1, null2, [fact("T", "a", "b")], {})
        restored = ProvenanceLog.from_json_text(log.to_json_text())
        assert restored.derivations == log.derivations
        assert restored.rewrites == log.rewrites
        current = Fact("T", (constant("a"), null2))
        assert restored.derivations_for(current)

    def test_record_dicts_are_typed(self):
        log = ProvenanceLog()
        record_simple_firing(log)
        log.record_rewrite("egd_0", "e", LabeledNull(1), LabeledNull(2), [], {})
        kinds = [record["type"] for record in log.record_dicts()]
        assert kinds == ["derivation", "rewrite"]


class TestModelHelpers:
    def test_named_values_sorts_by_name(self):
        named = named_values({"b": constant(2), "a": constant(1)})
        assert [name for name, _ in named] == ["a", "b"]

    def test_format_fact(self):
        assert format_fact(fact("T", "a", 1)) == "T('a', 1)"

    def test_fact_in_handles_unknown_relation(self):
        inst = instance(schema(relation("S", "x")), {"S": [["a"]]})
        assert fact_in(inst, fact("S", "a"))
        assert not fact_in(inst, fact("S", "zz"))
        assert not fact_in(inst, fact("Nope", "a"))
