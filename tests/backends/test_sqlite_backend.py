"""The SQLite backend: equivalence with the chase, cores, budgets, wiring."""

import pytest

from repro.backends import (
    BackendUnavailableError,
    available_backends,
    compile_mapping,
    plan_backend,
)
from repro.backends.duckdb_backend import DuckdbBackend
from repro.backends.sqlite_backend import SqliteBackend
from repro.budget import Budget, BudgetExceeded
from repro.compiler import ExchangeEngine
from repro.mapping import SchemaMapping, core_universal_solution, universal_solution
from repro.options import ExchangeOptions
from repro.relational import (
    canonically_equal,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)
from repro.relational.homomorphism import is_core
from repro.relational.values import Constant, LabeledNull
from repro.service import ExchangeService, PartialSolution


def exchange_both_ways(mapping, source):
    """(sqlite solution, interpreted solution) for *mapping* on *source*."""
    program, report = compile_mapping(mapping)
    assert report.compilable, report.summary()
    sql = SqliteBackend(mapping, program).exchange(source)
    interpreted = universal_solution(mapping, source)
    return sql, interpreted


@pytest.fixture
def join_setup():
    src = schema(relation("Emp", "n", "d"), relation("Dept", "d", "h"))
    tgt = schema(relation("Office", "n", "h", "o"))
    mapping = SchemaMapping.parse(
        src, tgt, "Emp(n, d), Dept(d, h) -> exists o . Office(n, h, o)"
    )
    source = instance(
        src,
        {
            "Emp": [["alice", "d1"], ["bob", "d1"], ["carol", "d9"]],
            "Dept": [["d1", "hanna"], ["d2", "ivan"]],
        },
    )
    return mapping, source


class TestEquivalence:
    def test_join_mapping_matches_interpreted(self, join_setup):
        mapping, source = join_setup
        sql, interpreted = exchange_both_ways(mapping, source)
        assert homomorphically_equivalent(sql, interpreted)
        assert canonically_equal(sql, interpreted)

    def test_full_tgd_is_exact(self):
        src = schema(relation("Emp", "n"))
        tgt = schema(relation("Person", "n"))
        mapping = SchemaMapping.parse(src, tgt, "Emp(n) -> Person(n)")
        source = instance(src, {"Emp": [["a"], ["b"]]})
        sql, interpreted = exchange_both_ways(mapping, source)
        assert sql.same_facts(interpreted)

    def test_constants_and_side_conditions(self):
        src = schema(relation("Emp", "n", "d"))
        tgt = schema(relation("Sales", "n"), relation("Cross", "a", "b"))
        mapping = SchemaMapping.parse(
            src,
            tgt,
            'Emp(n, "sales") -> Sales(n)\n'
            "Emp(a, d), Emp(b, d), a != b -> Cross(a, b)",
        )
        source = instance(
            src, {"Emp": [["x", "sales"], ["y", "sales"], ["z", "ops"]]}
        )
        sql, interpreted = exchange_both_ways(mapping, source)
        assert sql.same_facts(interpreted)
        assert sql.rows("Sales") == frozenset(
            {(Constant("x"),), (Constant("y"),)}
        )

    def test_constant_predicate_filters_source_nulls(self):
        src = schema(relation("Emp", "n"))
        tgt = schema(relation("Person", "n"))
        mapping = SchemaMapping.parse(src, tgt, "Emp(n), C(n) -> Person(n)")
        source = instance(src, {"Emp": [["a"], [LabeledNull(7)]]})
        sql, interpreted = exchange_both_ways(mapping, source)
        assert sql.same_facts(interpreted)
        assert sql.size() == 1

    def test_source_nulls_flow_through(self):
        src = schema(relation("Emp", "n"))
        tgt = schema(relation("Person", "n"))
        mapping = SchemaMapping.parse(src, tgt, "Emp(n) -> Person(n)")
        source = instance(src, {"Emp": [[LabeledNull(3)], ["a"]]})
        sql, interpreted = exchange_both_ways(mapping, source)
        assert sql.same_facts(interpreted)

    def test_empty_frontier_mints_one_witness(self):
        src = schema(relation("Emp", "n"))
        tgt = schema(relation("NonEmpty", "w"))
        mapping = SchemaMapping.parse(src, tgt, "Emp(n) -> exists w . NonEmpty(w)")
        source = instance(src, {"Emp": [["a"], ["b"], ["c"]]})
        program, _ = compile_mapping(mapping)
        sql = SqliteBackend(mapping, program).exchange(source)
        # The core has exactly one witness fact, not one per Emp row.
        assert sql.size() == 1

    def test_empty_source(self, join_setup):
        mapping, _ = join_setup
        empty = instance(mapping.source, {})
        sql, interpreted = exchange_both_ways(mapping, empty)
        assert sql.size() == 0 and sql.same_facts(interpreted)

    def test_multi_atom_block_canonical_mode(self):
        src = schema(relation("Emp", "n", "d"))
        tgt = schema(relation("Office", "n", "o"), relation("Key", "o", "d"))
        mapping = SchemaMapping.parse(
            src, tgt, "Emp(n, d) -> exists o . Office(n, o), Key(o, d)"
        )
        source = instance(src, {"Emp": [["a", "d1"], ["b", "d2"]]})
        program, report = compile_mapping(mapping)
        assert not report.laconic
        sql = SqliteBackend(mapping, program).exchange(source)
        interpreted = universal_solution(mapping, source)
        assert canonically_equal(sql, interpreted)
        # Both conclusion atoms of one firing share the same fresh null.
        offices = {row[1] for row in sql.rows("Office")}
        keys = {row[0] for row in sql.rows("Key")}
        assert offices == keys


class TestCore:
    def test_subsumed_firings_are_dropped(self):
        # Office(n, h, o) with a known head subsumes the headless variant.
        src = schema(relation("Emp", "n", "d"), relation("Dept", "d", "h"))
        tgt = schema(relation("Office", "n", "h"))
        mapping = SchemaMapping.parse(
            src,
            tgt,
            "Emp(n, d), Dept(d, h) -> Office(n, h)\n"
            "Emp(n, d) -> exists h . Office(n, h)",
        )
        source = instance(
            src, {"Emp": [["a", "d1"], ["b", "d9"]], "Dept": [["d1", "boss"]]}
        )
        program, report = compile_mapping(mapping)
        assert report.laconic
        sql = SqliteBackend(mapping, program).exchange(source)
        assert is_core(sql)
        assert canonically_equal(sql, core_universal_solution(mapping, source))
        # a's firing of the existential tgd is subsumed; b keeps its null.
        assert sql.size() == 2

    def test_core_smaller_than_naive(self, join_setup):
        mapping, source = join_setup
        richer = SchemaMapping(
            mapping.source,
            mapping.target,
            list(mapping.tgds)
            + list(
                SchemaMapping.parse(
                    mapping.source,
                    mapping.target,
                    "Emp(n, d) -> exists h, o . Office(n, h, o)",
                ).tgds
            ),
        )
        program, report = compile_mapping(richer)
        assert report.laconic
        sql = SqliteBackend(richer, program).exchange(source)
        naive = universal_solution(richer, source)
        assert is_core(sql)
        assert homomorphically_equivalent(sql, naive)
        # alice/bob's unconstrained firings fold into the joined ones.
        assert sql.size() < naive.size()
        assert sql.size() == core_universal_solution(richer, source).size()

    def test_equivalent_blocks_keep_one_representative(self):
        src = schema(relation("A", "x"), relation("B", "x"))
        tgt = schema(relation("T", "x", "y"))
        mapping = SchemaMapping.parse(
            src,
            tgt,
            "A(x) -> exists y . T(x, y)\nB(x) -> exists y . T(x, y)",
        )
        source = instance(src, {"A": [["v"]], "B": [["v"]]})
        program, _ = compile_mapping(mapping)
        sql = SqliteBackend(mapping, program).exchange(source)
        assert sql.size() == 1 and is_core(sql)

    def test_run_metadata_records_core(self, join_setup):
        mapping, source = join_setup
        program, _ = compile_mapping(mapping)
        backend = SqliteBackend(mapping, program)
        backend.exchange(source)
        assert backend.last_run["core"] is True
        assert backend.last_run["backend"] == "sqlite"
        assert set(backend.last_phase_timings) == {
            "load",
            "compile",
            "execute",
            "extract",
        }

    def test_source_nulls_revoke_core_claim(self):
        src = schema(relation("Emp", "n"))
        tgt = schema(relation("Person", "n"))
        mapping = SchemaMapping.parse(src, tgt, "Emp(n) -> Person(n)")
        source = instance(src, {"Emp": [[LabeledNull(1)]]})
        program, _ = compile_mapping(mapping)
        backend = SqliteBackend(mapping, program)
        backend.exchange(source)
        assert backend.last_run["core"] is False


class TestBudget:
    def test_fact_budget_exceeded_in_execute_phase(self, join_setup):
        mapping, source = join_setup
        program, _ = compile_mapping(mapping)
        backend = SqliteBackend(mapping, program)
        with pytest.raises(BudgetExceeded) as excinfo:
            backend.exchange(source, Budget(max_facts=1))
        assert excinfo.value.phase == "backend.execute"

    def test_unbudgeted_run_is_unchecked(self, join_setup):
        mapping, source = join_setup
        program, _ = compile_mapping(mapping)
        assert SqliteBackend(mapping, program).exchange(source, None).size() == 2


class TestPlanning:
    def test_interpreted_request_plans_nothing(self, join_setup):
        mapping, _ = join_setup
        assert plan_backend(mapping, ExchangeOptions()) is None

    def test_sqlite_request_is_ready(self, join_setup):
        mapping, _ = join_setup
        plan = plan_backend(mapping, ExchangeOptions(backend="sqlite"))
        assert plan is not None and plan.ready
        assert isinstance(plan.backend, SqliteBackend)
        assert "core" in plan.describe()

    def test_provenance_falls_back_with_reason(self, join_setup):
        mapping, _ = join_setup
        plan = plan_backend(
            mapping, ExchangeOptions(backend="sqlite", provenance=True)
        )
        assert plan is not None and not plan.ready
        assert "provenance-requested" in {r.code for r in plan.fallback}

    def test_duckdb_unavailable_raises(self, join_setup):
        mapping, _ = join_setup
        if DuckdbBackend.available():  # pragma: no cover - duckdb installed
            pytest.skip("duckdb installed in this environment")
        with pytest.raises(BackendUnavailableError):
            plan_backend(mapping, ExchangeOptions(backend="duckdb"))

    def test_available_backends_always_lists_sqlite(self):
        names = available_backends()
        assert "interpreted" in names and "sqlite" in names

    def test_invalid_backend_name_rejected(self):
        with pytest.raises(ValueError):
            ExchangeOptions(backend="postgres")


class TestEngineAndService:
    def test_engine_routes_to_backend(self, join_setup):
        mapping, source = join_setup
        engine = ExchangeEngine.compile(
            mapping, options=ExchangeOptions(backend="sqlite")
        )
        assert engine.backend_plan is not None and engine.backend_plan.ready
        result = engine.exchange(source)
        assert canonically_equal(result, universal_solution(mapping, source))

    def test_engine_exchange_many(self, join_setup):
        mapping, source = join_setup
        engine = ExchangeEngine.compile(
            mapping, options=ExchangeOptions(backend="sqlite")
        )
        results = engine.exchange_many([source, source])
        assert len(results) == 2
        assert results[0].same_facts(results[1])

    def test_interpreted_engine_has_no_backend_plan(self, join_setup):
        mapping, _ = join_setup
        engine = ExchangeEngine.compile(mapping)
        assert engine.backend_plan is None

    def test_service_runs_backend_and_degrades_on_budget(self, join_setup):
        mapping, source = join_setup
        with ExchangeService(
            mapping, ExchangeOptions(backend="sqlite", max_facts=1)
        ) as service:
            result = service.exchange(source)
        assert isinstance(result, PartialSolution)
        assert result.violated == "max_facts"

    def test_service_full_solution_matches_interpreted(self, join_setup):
        mapping, source = join_setup
        with ExchangeService(mapping, ExchangeOptions(backend="sqlite")) as service:
            result = service.exchange(source)
        assert canonically_equal(result, universal_solution(mapping, source))
