"""The SQL compiler: compilability verdicts, laconic rewrite, lowering shape."""

import pytest

from repro.backends import compile_mapping
from repro.backends.sql import (
    classify_subsumption,
    mapping_compilability,
    tgd_compilability,
)
from repro.logic.formulas import Atom, Conjunction, Equality, atom, conj
from repro.logic.terms import Const, FuncTerm, Var, const
from repro.mapping.dependencies import Egd
from repro.mapping.sttgd import SchemaMapping, StTgd
from repro.relational import relation, schema


def make_mapping(text, source_rels, target_rels, target_dependencies=()):
    source = schema(*[relation(n, *[f"a{i}" for i in range(k)]) for n, k in source_rels])
    target = schema(*[relation(n, *[f"a{i}" for i in range(k)]) for n, k in target_rels])
    return SchemaMapping.parse(source, target, text, target_dependencies)


class TestCompilability:
    def test_plain_mapping_is_laconic(self):
        m = make_mapping(
            "Emp(n, d), Dept(d, h) -> exists o . Office(n, h, o)",
            [("Emp", 2), ("Dept", 2)],
            [("Office", 3)],
        )
        program, report = compile_mapping(m)
        assert report.compilable and report.laconic
        assert program is not None and program.laconic
        assert "core" in report.summary()

    def test_multi_atom_block_compiles_canonically(self):
        # Both conclusion atoms share the existential o, so normalize()
        # keeps them in one block: compilable but not laconic.
        m = make_mapping(
            "Emp(n, d) -> exists o . Office(n, o), Key(o, d)",
            [("Emp", 2)],
            [("Office", 2), ("Key", 2)],
        )
        program, report = compile_mapping(m)
        assert report.compilable and not report.laconic
        assert program is not None and not program.laconic
        assert "canonical" in report.summary()

    def test_split_blocks_stay_laconic(self):
        # Two independent existentials: normalize() splits into two
        # single-atom blocks, so the laconic rewrite still applies.
        m = make_mapping(
            "Emp(n, d) -> exists o, k . Office(n, o), Key(n, k)",
            [("Emp", 2)],
            [("Office", 2), ("Key", 2)],
        )
        program, report = compile_mapping(m)
        assert report.laconic
        assert len(program.tgds) == 2
        assert {t.label for t in program.tgds} == {"tgd_0.0", "tgd_0.1"}

    def test_target_dependencies_block_compilation(self):
        egd = Egd(
            conj(atom("Office", "n", "o"), atom("Office", "n", "p")),
            Var("o"),
            Var("p"),
        )
        m = make_mapping(
            "Emp(n, d) -> exists o . Office(n, o)",
            [("Emp", 2)],
            [("Office", 2)],
            target_dependencies=[egd],
        )
        program, report = compile_mapping(m)
        assert program is None and not report.compilable
        assert [r.code for r in report.reasons] == ["target-dependencies"]

    def test_function_terms_blocked_per_tgd(self):
        f = FuncTerm("f", (Var("x"),))
        tgd = StTgd(
            Conjunction([atom("Emp", "x")]),
            Conjunction([Atom("Badge", (Var("x"), f))]),
        )
        verdict = tgd_compilability(tgd, 0)
        assert not verdict.compilable
        assert "function-terms" in {r.code for r in verdict.reasons}

    def test_empty_premise_blocked(self):
        tgd = StTgd(
            Conjunction([Equality(Var("x"), Var("x"))]),
            Conjunction([atom("Badge", "x")]),
        )
        verdict = tgd_compilability(tgd, 3)
        codes = {r.code for r in verdict.reasons}
        assert "empty-premise" in codes
        assert "unanchored-variable" in codes
        assert all(r.tgd == 3 for r in verdict.reasons)

    def test_mapping_compilability_is_static(self):
        m = make_mapping(
            "Emp(n, d) -> exists o . Office(n, o)", [("Emp", 2)], [("Office", 2)]
        )
        report = mapping_compilability(m)
        assert report.compilable and report.laconic
        assert len(report.tgds) == 1 and report.tgds[0].blocks == 1


class TestLoweringShape:
    def test_join_is_cross_join_in_greedy_order(self):
        m = make_mapping(
            "Emp(n, d), Dept(d, h) -> Pair(n, h)",
            [("Emp", 2), ("Dept", 2)],
            [("Pair", 2)],
        )
        program, _ = compile_mapping(m)
        sql = program.tgds[0].bindings_sql
        assert "CROSS JOIN" in sql
        assert "SELECT DISTINCT" in sql
        assert "row_number() OVER ()" in sql
        # The derived table carries an alias (DuckDB requires one).
        assert "AS __rows" in sql

    def test_constants_become_parameters(self):
        m = make_mapping(
            'Emp(n, "sales") -> Pick(n)', [("Emp", 2)], [("Pick", 1)]
        )
        program, _ = compile_mapping(m)
        tgd = program.tgds[0]
        assert "= ?" in tgd.bindings_sql
        assert len(tgd.bindings_params) == 1

    def test_existential_insert_uses_offset_arithmetic(self):
        m = make_mapping(
            "Emp(n, d) -> exists o . Office(n, o)", [("Emp", 2)], [("Office", 2)]
        )
        program, _ = compile_mapping(m)
        insert = program.tgds[0].inserts[0]
        assert "(__bind - 1) * 1 + 0" in insert.sql

    def test_empty_frontier_projects_sentinel_column(self):
        m = make_mapping(
            "Emp(n, d) -> exists w . Witness(w)", [("Emp", 2)], [("Witness", 1)]
        )
        program, _ = compile_mapping(m)
        assert "1 AS v_none" in program.tgds[0].bindings_sql

    def test_index_hints_cover_probed_columns(self):
        m = make_mapping(
            "Emp(n, d), Dept(d, h) -> Pair(n, h)",
            [("Emp", 2), ("Dept", 2)],
            [("Pair", 2)],
        )
        program, _ = compile_mapping(m)
        # The second atom in the greedy order is probed on its join column.
        assert program.index_hints


class TestSubsumptionClassification:
    def exist(self, *names):
        return {Var(n) for n in names}

    def test_rigid_vs_existential_is_incompatible(self):
        a_i = atom("R", "x", "y")
        a_j = atom("R", "x", "z")
        # i's y is rigid, j's z existential: j can never subsume i.
        assert classify_subsumption(a_i, set(), a_j, self.exist("z")) is None

    def test_grounding_null_is_strict(self):
        a_i = atom("R", "x", "y")
        a_j = atom("R", "x", "z")
        verdict = classify_subsumption(a_i, self.exist("y"), a_j, set())
        assert verdict is not None and verdict.kind == "strict"

    def test_isomorphic_patterns_are_equivalent(self):
        a_i = atom("R", "x", "y")
        a_j = atom("R", "u", "v")
        verdict = classify_subsumption(a_i, self.exist("y"), a_j, self.exist("v"))
        assert verdict is not None and verdict.kind == "equivalent"
        assert verdict.link_positions == (0,)

    def test_folding_two_nulls_into_one_is_strict(self):
        a_i = atom("R", "y", "z")
        a_j = atom("R", "w", "w")
        verdict = classify_subsumption(
            a_i, self.exist("y", "z"), a_j, self.exist("w")
        )
        assert verdict is not None and verdict.kind == "strict"

    def test_repeated_null_cannot_map_to_distinct_nulls(self):
        a_i = atom("R", "y", "y")
        a_j = atom("R", "v", "w")
        assert (
            classify_subsumption(a_i, self.exist("y"), a_j, self.exist("v", "w"))
            is None
        )

    def test_repeated_null_to_repeated_rigid_needs_equality(self):
        a_i = atom("R", "y", "y")
        a_j = atom("R", "u", "v")
        verdict = classify_subsumption(a_i, self.exist("y"), a_j, set())
        assert verdict is not None and verdict.kind == "strict"
        assert verdict.extra_equalities == ((0, 1),)

    def test_different_relations_are_incompatible(self):
        assert classify_subsumption(atom("R", "x"), set(), atom("S", "x"), set()) is None
