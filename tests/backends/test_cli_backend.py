"""CLI backend flag: ``--backend sqlite`` through exchange/plan/profile."""

import json

import pytest

from repro.cli import main
from repro.relational import (
    instance,
    instance_to_json,
    loads_instance,
    relation,
    schema,
    schema_to_json,
)


@pytest.fixture
def files(tmp_path):
    source = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
    target = schema(relation("Office", "name", "head", "room"))
    schemas_file = tmp_path / "schemas.json"
    schemas_file.write_text(
        json.dumps(
            {"source": schema_to_json(source), "target": schema_to_json(target)}
        )
    )
    mapping_file = tmp_path / "mapping.tgd"
    mapping_file.write_text(
        "Emp(n, d), Dept(d, h) -> exists o . Office(n, h, o)\n"
    )
    data_file = tmp_path / "source.json"
    data = instance(
        source,
        {
            "Emp": [["Alice", "d1"], ["Bob", "d2"]],
            "Dept": [["d1", "Hana"], ["d2", "Hugo"]],
        },
    )
    data_file.write_text(json.dumps(instance_to_json(data)))
    return tmp_path, schemas_file, mapping_file, data_file


def run(argv):
    return main([str(a) for a in argv])


class TestExchangeBackend:
    def test_sqlite_backend_produces_the_solution(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            [
                "exchange",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--backend", "sqlite",
            ]
        )
        assert code == 0
        restored = loads_instance(capsys.readouterr().out)
        assert len(restored.rows("Office")) == 2

    def test_sqlite_matches_interpreted(self, files, capsys):
        _, schemas, mapping, data = files
        run(["exchange", "--schemas", schemas, "--mapping", mapping, "--data", data])
        interpreted = loads_instance(capsys.readouterr().out)
        run(
            [
                "exchange",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--backend", "sqlite",
            ]
        )
        sql = loads_instance(capsys.readouterr().out)
        from repro.relational import canonically_equal

        assert canonically_equal(sql, interpreted)

    def test_duckdb_without_duckdb_is_a_cli_error(self, files, capsys):
        from repro.backends.duckdb_backend import DuckdbBackend

        if DuckdbBackend.available():  # pragma: no cover - duckdb installed
            pytest.skip("duckdb installed in this environment")
        _, schemas, mapping, data = files
        with pytest.raises(SystemExit) as excinfo:
            run(
                [
                    "exchange",
                    "--schemas", schemas,
                    "--mapping", mapping,
                    "--data", data,
                    "--backend", "duckdb",
                ]
            )
        assert excinfo.value.code == 2

    def test_unknown_backend_rejected_by_argparse(self, files):
        _, schemas, mapping, data = files
        with pytest.raises(SystemExit):
            run(
                [
                    "exchange",
                    "--schemas", schemas,
                    "--mapping", mapping,
                    "--data", data,
                    "--backend", "postgres",
                ]
            )


class TestPlanBackend:
    def test_verbose_plan_reports_laconic_rewrite(self, files, capsys):
        _, schemas, mapping, _ = files
        code = run(
            [
                "plan",
                "--schemas", schemas,
                "--mapping", mapping,
                "--verbose",
                "--backend", "sqlite",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend:" in out
        assert "laconic rewrite" in out
        assert "core" in out

    def test_verbose_plan_without_backend_still_reports_compilability(
        self, files, capsys
    ):
        _, schemas, mapping, _ = files
        code = run(
            ["plan", "--schemas", schemas, "--mapping", mapping, "--verbose"]
        )
        assert code == 0
        assert "backend:" in capsys.readouterr().out


class TestProfileBackend:
    def test_profile_reports_backend_phases(self, files, capsys):
        _, schemas, mapping, data = files
        code = run(
            [
                "profile",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--backend", "sqlite",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend phases (sqlite):" in out
        for phase in ("load", "compile", "execute", "extract"):
            assert phase in out
        assert "backend.execute.seconds" in out
