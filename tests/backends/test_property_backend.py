"""Property-based tests (hypothesis): sqlite backend vs interpreted chase.

For random mappings and ground sources, the SQL-compiled exchange must
be homomorphically equivalent to the interpreted chase — same certain
answers, different null names.  On laconic-eligible mappings (single-atom
conclusion blocks, no target dependencies — exactly what
``random_mapping`` generates) the backend additionally promises the
**core**: no proper endomorphism, and never more facts than the chase.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import compile_mapping
from repro.backends.sqlite_backend import SqliteBackend
from repro.mapping import universal_solution
from repro.relational import canonically_equal, homomorphically_equivalent
from repro.relational.homomorphism import is_core
from repro.workloads.generators import (
    random_instance,
    random_mapping,
    random_schema,
)

seeds = st.integers(min_value=0, max_value=300)


def _workload(seed):
    rng = random.Random(seed)
    source_schema = random_schema(rng, 3, prefix="S")
    target_schema = random_schema(rng, 3, prefix="T")
    mapping = random_mapping(source_schema, target_schema, rng, n_tgds=3)
    source = random_instance(source_schema, rng, rows_per_relation=5)
    return mapping, source


@settings(max_examples=60, deadline=None)
@given(seeds)
def test_sqlite_backend_equivalent_to_interpreted_chase(seed):
    mapping, source = _workload(seed)
    program, report = compile_mapping(mapping)
    # random_mapping emits single-target-atom tgds with no target
    # dependencies, so the laconic rewrite always applies.
    assert report.compilable and report.laconic, report.summary()
    sql = SqliteBackend(mapping, program).exchange(source)
    interpreted = universal_solution(mapping, source)
    assert homomorphically_equivalent(sql, interpreted)


@settings(max_examples=40, deadline=None)
@given(seeds)
def test_sqlite_backend_computes_the_core_on_laconic_mappings(seed):
    mapping, source = _workload(seed)
    program, report = compile_mapping(mapping)
    assert report.laconic
    sql = SqliteBackend(mapping, program).exchange(source)
    interpreted = universal_solution(mapping, source)
    # Core minimality: no proper endomorphism, and the core is never
    # bigger than the naive chase result it is equivalent to.
    assert is_core(sql)
    assert sql.size() <= interpreted.size()
    assert canonically_equal(sql, interpreted) or homomorphically_equivalent(
        sql, interpreted
    )
