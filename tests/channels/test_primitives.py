"""Tests for schema-evolution primitives."""

import pytest

from repro.channels import (
    AddColumn,
    AddTable,
    DropColumn,
    DropTable,
    EvolutionError,
    RenameColumn,
    RenameTable,
    apply_all,
    evolution_mapping,
    migrate,
)
from repro.mapping import universal_solution
from repro.relational import (
    LabeledNull,
    constant,
    instance,
    relation,
    schema,
)
from repro.relational.schema import Attribute


@pytest.fixture
def base():
    s = schema(relation("Emp", "name", "dept"), relation("Dept", "dept"))
    inst = instance(
        s, {"Emp": [["ann", "eng"]], "Dept": [["eng"]]}
    )
    return s, inst


class TestAddColumn:
    def test_schema(self, base):
        s, _ = base
        out = AddColumn("Emp", Attribute("phone")).apply_schema(s)
        assert out["Emp"].attribute_names == ("name", "dept", "phone")

    def test_instance_with_default(self, base):
        _, inst = base
        out = AddColumn("Emp", Attribute("phone"), constant("n/a")).apply_instance(inst)
        assert (constant("ann"), constant("eng"), constant("n/a")) in out.rows("Emp")

    def test_instance_without_default_gets_nulls(self, base):
        _, inst = base
        out = AddColumn("Emp", Attribute("phone")).apply_instance(inst)
        (row,) = out.rows("Emp")
        assert isinstance(row[2], LabeledNull)

    def test_duplicate_column_rejected(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            AddColumn("Emp", Attribute("name")).apply_schema(s)

    def test_as_mapping_exchanges(self, base):
        s, inst = base
        primitive = AddColumn("Emp", Attribute("phone"), constant("n/a"))
        mapping = primitive.as_mapping(s)
        out = universal_solution(mapping, inst)
        assert out.same_facts(primitive.apply_instance(inst))

    def test_not_lossy(self):
        assert not AddColumn("Emp", Attribute("x")).is_lossy()


class TestDropColumn:
    def test_schema(self, base):
        s, _ = base
        out = DropColumn("Emp", "dept").apply_schema(s)
        assert out["Emp"].attribute_names == ("name",)

    def test_instance(self, base):
        _, inst = base
        out = DropColumn("Emp", "dept").apply_instance(inst)
        assert out.rows("Emp") == {(constant("ann"),)}

    def test_cannot_drop_only_column(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            DropColumn("Dept", "dept").apply_schema(s)

    def test_is_lossy(self):
        assert DropColumn("Emp", "dept").is_lossy()

    def test_as_mapping(self, base):
        s, inst = base
        mapping = DropColumn("Emp", "dept").as_mapping(s)
        out = universal_solution(mapping, inst)
        assert out.rows("Emp") == {(constant("ann"),)}


class TestRenames:
    def test_rename_column(self, base):
        s, inst = base
        primitive = RenameColumn("Emp", "dept", "unit")
        out_schema = primitive.apply_schema(s)
        assert out_schema["Emp"].attribute_names == ("name", "unit")
        out = primitive.apply_instance(inst)
        assert out.rows("Emp") == inst.rows("Emp")

    def test_rename_column_conflict_rejected(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            RenameColumn("Emp", "dept", "name").apply_schema(s)

    def test_rename_table(self, base):
        s, inst = base
        primitive = RenameTable("Emp", "Staff")
        out = primitive.apply_instance(inst)
        assert "Staff" in out.schema
        assert out.rows("Staff") == inst.rows("Emp")

    def test_rename_table_conflict_rejected(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            RenameTable("Emp", "Dept").apply_schema(s)


class TestTables:
    def test_add_table(self, base):
        s, inst = base
        primitive = AddTable(relation("Audit", "who", "what"))
        out = primitive.apply_instance(inst)
        assert "Audit" in out.schema
        assert out.rows("Audit") == frozenset()

    def test_add_existing_rejected(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            AddTable(relation("Emp", "x")).apply_schema(s)

    def test_drop_table(self, base):
        _, inst = base
        out = DropTable("Dept").apply_instance(inst)
        assert "Dept" not in out.schema
        assert len(out.rows("Emp")) == 1

    def test_drop_missing_rejected(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            DropTable("Nope").apply_schema(s)


class TestSequences:
    def test_apply_all_and_migrate(self, base):
        s, inst = base
        primitives = [
            RenameTable("Emp", "Staff"),
            AddColumn("Staff", Attribute("phone"), constant("?")),
            DropColumn("Staff", "dept"),
        ]
        out_schema = apply_all(primitives, s)
        assert out_schema["Staff"].attribute_names == ("name", "phone")
        out = migrate(primitives, inst)
        assert out.rows("Staff") == {(constant("ann"), constant("?"))}

    def test_evolution_mapping_matches_migration(self, base):
        s, inst = base
        primitives = [
            RenameTable("Emp", "Staff"),
            AddColumn("Staff", Attribute("phone"), constant("?")),
        ]
        mapping = evolution_mapping(primitives, s)
        from repro.relational import homomorphically_equivalent

        chased = universal_solution(mapping, inst)
        migrated = migrate(primitives, inst)
        assert homomorphically_equivalent(chased, migrated.cast(mapping.target))

    def test_empty_evolution_rejected(self, base):
        s, _ = base
        with pytest.raises(EvolutionError):
            evolution_mapping([], s)
