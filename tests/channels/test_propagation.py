"""Tests for propagating evolution primitives through mappings (channels)."""

import pytest

from repro.channels import (
    AddColumn,
    AddTable,
    DropColumn,
    DropTable,
    RenameColumn,
    RenameTable,
    migrate,
    propagate_all,
    propagate_primitive,
)
from repro.mapping import SchemaMapping, universal_solution
from repro.relational import (
    constant,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)
from repro.relational.schema import Attribute


@pytest.fixture
def hr():
    source = schema(
        relation("Employee", "eid", "name", "dept"),
        relation("Department", "dept", "site"),
    )
    target = schema(relation("Directory", "eid", "name", "site"))
    mapping = SchemaMapping.parse(
        source,
        target,
        "Employee(e, n, d), Department(d, l) -> Directory(e, n, l)",
    )
    inst = instance(
        source,
        {
            "Employee": [[1, "ann", "eng"]],
            "Department": [["eng", "berlin"]],
        },
    )
    return mapping, inst


class TestRenamePropagation:
    def test_rename_table_rewrites_premises(self, hr):
        mapping, inst = hr
        result = propagate_primitive(mapping, RenameTable("Employee", "Staff"))
        assert "Staff" in result.mapping.source
        premise_rels = result.mapping.tgds[0].source_relations()
        assert "Staff" in premise_rels and "Employee" not in premise_rels
        migrated = RenameTable("Employee", "Staff").apply_instance(inst)
        out = universal_solution(result.mapping, migrated)
        assert out.rows("Directory") == {
            (constant(1), constant("ann"), constant("berlin"))
        }

    def test_rename_column_is_schema_only(self, hr):
        mapping, inst = hr
        result = propagate_primitive(
            mapping, RenameColumn("Employee", "name", "full_name")
        )
        assert result.mapping.source["Employee"].has_attribute("full_name")
        assert result.mapping.tgds == mapping.tgds
        assert result.induced == []


class TestAddColumnPropagation:
    def test_premise_atom_gains_fresh_variable(self, hr):
        mapping, inst = hr
        result = propagate_primitive(
            mapping, AddColumn("Employee", Attribute("phone"))
        )
        atom = next(
            a
            for a in result.mapping.tgds[0].premise.atoms()
            if a.relation == "Employee"
        )
        assert atom.arity == 4
        migrated = AddColumn(
            "Employee", Attribute("phone"), constant("123")
        ).apply_instance(inst)
        out = universal_solution(result.mapping, migrated)
        assert len(out.rows("Directory")) == 1


class TestDropColumnPropagation:
    def test_unexported_column_drop_is_silent(self, hr):
        mapping, inst = hr
        # Employee.dept is exported only via the join, not to the target;
        # dropping Employee.name (exported) vs dept differs.
        result = propagate_primitive(mapping, DropColumn("Department", "site"))
        # site was exported to Directory.site: induced drop on target.
        assert any("Directory" in repr(p) for p in result.induced)
        assert result.mapping.target["Directory"].attribute_names == ("eid", "name")

    def test_induced_drop_produces_consistent_exchange(self, hr):
        mapping, inst = hr
        primitive = DropColumn("Department", "site")
        result = propagate_primitive(mapping, primitive)
        migrated = primitive.apply_instance(inst)
        out = universal_solution(result.mapping, migrated)
        assert out.rows("Directory") == {(constant(1), constant("ann"))}

    def test_without_target_propagation_position_becomes_existential(self, hr):
        mapping, inst = hr
        primitive = DropColumn("Department", "site")
        result = propagate_primitive(mapping, primitive, propagate_to_target=False)
        tgd = result.mapping.tgds[0]
        assert len(tgd.existential_variables) == 1
        assert result.notes  # information loss is reported

    def test_join_column_drop_disconnects_premise(self, hr):
        mapping, inst = hr
        # Dropping Employee.dept removes the join variable from Employee's
        # atom; d survives in Department's atom so nothing is orphaned.
        result = propagate_primitive(mapping, DropColumn("Employee", "dept"))
        assert result.induced == []
        migrated = DropColumn("Employee", "dept").apply_instance(inst)
        out = universal_solution(result.mapping, migrated)
        # The join became a product: ann pairs with every department.
        assert len(out.rows("Directory")) == 1


class TestTablePropagation:
    def test_drop_table_removes_tgds(self, hr):
        mapping, _ = hr
        result = propagate_primitive(mapping, DropTable("Employee"))
        assert result.mapping.tgds == ()
        assert result.notes

    def test_add_table_is_schema_only(self, hr):
        mapping, _ = hr
        result = propagate_primitive(
            mapping, AddTable(relation("Audit", "who"))
        )
        assert "Audit" in result.mapping.source
        assert len(result.mapping.tgds) == 1


class TestPropagateAll:
    def test_sequence_accumulates(self, hr):
        mapping, inst = hr
        primitives = [
            RenameTable("Employee", "Staff"),
            AddColumn("Staff", Attribute("phone")),
            DropColumn("Department", "site"),
        ]
        result = propagate_all(mapping, primitives)
        assert len(result.induced) == 1
        migrated = migrate(
            [
                RenameTable("Employee", "Staff"),
                AddColumn("Staff", Attribute("phone"), constant("?")),
                DropColumn("Department", "site"),
            ],
            inst,
        )
        out = universal_solution(result.mapping, migrated)
        assert out.rows("Directory") == {(constant(1), constant("ann"))}

    def test_agrees_with_invert_compose_route(self, hr):
        """E9's core claim: the two Figure-2 routes agree."""
        from repro.channels import evolution_mapping
        from repro.mapping import evolve_source

        mapping, inst = hr
        primitives = [RenameTable("Employee", "Staff")]
        # Route (a): invert the evolution mapping, compose, execute.
        evo_mapping = evolution_mapping(primitives, mapping.source)
        evolved = evolve_source(mapping, evo_mapping)
        migrated = migrate(primitives, inst)
        via_operators = evolved.exchange(migrated)
        # Route (b): propagate the primitive through the mapping.
        propagated = propagate_all(mapping, primitives)
        via_channels = universal_solution(propagated.mapping, migrated)
        assert homomorphically_equivalent(via_operators, via_channels)
