"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.relational import (
    instance,
    instance_to_json,
    loads_instance,
    relation,
    schema,
    schema_to_json,
)


@pytest.fixture
def files(tmp_path):
    source = schema(relation("Emp", "name"))
    target = schema(relation("Manager", "emp", "mgr"))
    schemas_file = tmp_path / "schemas.json"
    schemas_file.write_text(
        json.dumps(
            {"source": schema_to_json(source), "target": schema_to_json(target)}
        )
    )
    mapping_file = tmp_path / "mapping.tgd"
    mapping_file.write_text(
        "# Example 1\nEmp(x) -> exists y . Manager(x, y)\n"
    )
    data_file = tmp_path / "source.json"
    data = instance(source, {"Emp": [["Alice"], ["Bob"]]})
    data_file.write_text(json.dumps(instance_to_json(data)))
    return tmp_path, schemas_file, mapping_file, data_file, source, target


def run(argv):
    return main([str(a) for a in argv])


class TestPlanAndQuestions:
    def test_plan_prints_tree(self, files, capsys):
        _, schemas, mapping, *_ = files
        assert run(["plan", "--schemas", schemas, "--mapping", mapping]) == 0
        out = capsys.readouterr().out
        assert "forward (get)" in out
        assert "Scan Emp" in out

    def test_questions(self, files, capsys):
        _, schemas, mapping, *_ = files
        assert run(["questions", "--schemas", schemas, "--mapping", mapping]) == 0
        out = capsys.readouterr().out
        assert "fully determined" in out or "•" in out


class TestExchange:
    def test_exchange_to_stdout(self, files, capsys):
        _, schemas, mapping, data, *_ = files
        code = run(
            ["exchange", "--schemas", schemas, "--mapping", mapping, "--data", data]
        )
        assert code == 0
        restored = loads_instance(capsys.readouterr().out)
        assert len(restored.rows("Manager")) == 2

    def test_exchange_to_file(self, files, capsys):
        tmp, schemas, mapping, data, *_ = files
        out_file = tmp / "target.json"
        code = run(
            [
                "exchange",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--out", out_file,
            ]
        )
        assert code == 0
        restored = loads_instance(out_file.read_text())
        assert len(restored.rows("Manager")) == 2

    def test_chase_agrees_with_exchange(self, files, capsys):
        _, schemas, mapping, data, *_ = files
        run(["exchange", "--schemas", schemas, "--mapping", mapping, "--data", data])
        exchanged = loads_instance(capsys.readouterr().out)
        run(["chase", "--schemas", schemas, "--mapping", mapping, "--data", data])
        chased = loads_instance(capsys.readouterr().out)
        from repro.relational import homomorphically_equivalent

        assert homomorphically_equivalent(exchanged, chased)


class TestPut:
    def test_round_trip(self, files, capsys, tmp_path):
        tmp, schemas, mapping, data, source, target = files
        # Exchange, drop Bob's manager fact, push back.
        run(["exchange", "--schemas", schemas, "--mapping", mapping, "--data", data])
        view = loads_instance(capsys.readouterr().out)
        kept = [f for f in view.facts() if repr(f.row[0]) != "'Bob'"]
        from repro.relational import Instance

        edited_file = tmp / "edited.json"
        edited_file.write_text(
            json.dumps(instance_to_json(Instance(view.schema, kept)))
        )
        code = run(
            [
                "put",
                "--schemas", schemas,
                "--mapping", mapping,
                "--data", data,
                "--view", edited_file,
            ]
        )
        assert code == 0
        new_source = loads_instance(capsys.readouterr().out)
        names = {repr(r[0]) for r in new_source.rows("Emp")}
        assert names == {"'Alice'"}


class TestCheck:
    def test_check_passes(self, files, capsys):
        _, schemas, mapping, data, *_ = files
        code = run(
            ["check", "--schemas", schemas, "--mapping", mapping, "--data", data]
        )
        assert code == 0
        assert "failures=0" in capsys.readouterr().out


class TestErrors:
    def test_missing_file(self, files, capsys):
        _, schemas, *_ = files
        with pytest.raises(SystemExit) as excinfo:
            run(["plan", "--schemas", schemas, "--mapping", "/nope.tgd"])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_schemas(self, files, tmp_path, capsys):
        _, _, mapping, *_ = files
        bad = tmp_path / "bad.json"
        bad.write_text('{"only": "source"}')
        with pytest.raises(SystemExit):
            run(["plan", "--schemas", bad, "--mapping", mapping])
        assert "must contain" in capsys.readouterr().err

    def test_bad_mapping_text(self, files, tmp_path, capsys):
        _, schemas, *_ = files
        bad = tmp_path / "bad.tgd"
        bad.write_text("this is not a tgd")
        with pytest.raises(SystemExit):
            run(["plan", "--schemas", schemas, "--mapping", bad])
        assert "bad mapping" in capsys.readouterr().err

    def test_wrong_schema_instance(self, files, tmp_path, capsys):
        _, schemas, mapping, *_ = files
        other = schema(relation("Other", "x"))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(
            json.dumps(instance_to_json(instance(other, {"Other": [["v"]]})))
        )
        with pytest.raises(SystemExit):
            run(
                ["exchange", "--schemas", schemas, "--mapping", mapping, "--data", wrong]
            )
        assert "does not conform" in capsys.readouterr().err
