"""Tests for target-dependency handling in the compiled exchange engine."""

import pytest

from repro.compiler import ExchangeEngine
from repro.logic.parser import parse_conjunction, parse_rule
from repro.logic.terms import Var
from repro.mapping import (
    ChaseFailure,
    SchemaMapping,
    universal_solution,
)
from repro.mapping.dependencies import Egd, TargetTgd
from repro.relational import (
    constant,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)


def key_egd():
    return Egd(
        parse_conjunction("Manager(x, y), Manager(x, z)"), Var("y"), Var("z")
    )


@pytest.fixture
def keyed_mapping():
    source = schema(relation("Emp", "n"), relation("Boss", "n", "b"))
    target = schema(relation("Manager", "emp", "mgr"))
    from repro.mapping import StTgd

    return SchemaMapping(
        source,
        target,
        [
            StTgd.parse("Emp(x) -> exists y . Manager(x, y)"),
            StTgd.parse("Boss(x, b) -> Manager(x, b)"),
        ],
        [key_egd()],
    )


class TestEgdsInEngine:
    def test_forward_unifies_skolem_with_constant(self, keyed_mapping):
        engine = ExchangeEngine.compile(keyed_mapping)
        I = instance(
            keyed_mapping.source, {"Emp": [["ann"]], "Boss": [["ann", "mona"]]}
        )
        out = engine.exchange(I)
        assert out.rows("Manager") == {(constant("ann"), constant("mona"))}

    def test_forward_agrees_with_chase_under_egds(self, keyed_mapping):
        engine = ExchangeEngine.compile(keyed_mapping)
        I = instance(
            keyed_mapping.source,
            {"Emp": [["ann"], ["bob"]], "Boss": [["ann", "mona"]]},
        )
        assert homomorphically_equivalent(
            engine.exchange(I), universal_solution(keyed_mapping, I)
        )

    def test_egd_conflict_surfaces(self, keyed_mapping):
        engine = ExchangeEngine.compile(keyed_mapping)
        I = instance(
            keyed_mapping.source,
            {"Boss": [["ann", "mona"], ["ann", "rita"]]},
        )
        with pytest.raises(ChaseFailure):
            engine.exchange(I)

    def test_getput_still_exact(self, keyed_mapping):
        engine = ExchangeEngine.compile(keyed_mapping)
        I = instance(
            keyed_mapping.source, {"Emp": [["ann"]], "Boss": [["ann", "mona"]]}
        )
        view = engine.exchange(I)
        assert engine.put_back(view, I) == I


class TestTargetTgdsInEngine:
    def test_foreign_key_completion(self):
        source = schema(relation("E", "n", "d"))
        target = schema(relation("Emp", "n", "d"), relation("Dept", "d"))
        from repro.mapping import StTgd

        fk = parse_rule("Emp(x, d) -> Dept(d)")
        mapping = SchemaMapping(
            source,
            target,
            [StTgd.parse("E(x, d) -> Emp(x, d)")],
            [TargetTgd(fk.lhs, fk.branches[0][1])],
        )
        engine = ExchangeEngine.compile(mapping)
        I = instance(source, {"E": [["a", "d1"], ["b", "d2"]]})
        out = engine.exchange(I)
        assert len(out.rows("Dept")) == 2
        assert homomorphically_equivalent(out, universal_solution(mapping, I))

    def test_no_dependencies_is_unchanged(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        engine = ExchangeEngine.compile(mapping)
        I = instance(source, {"A": [["v"]]})
        assert engine.exchange(I).rows("B") == {(constant("v"),)}
