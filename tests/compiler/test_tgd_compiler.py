"""Tests for compiling single tgds: leaves, side conditions, units."""

import pytest

from repro.compiler import (
    CompilerLimitation,
    Hints,
    Planner,
    compile_atom_leaf,
    side_condition_predicate,
)
from repro.compiler.hints import DeletionBehavior
from repro.logic.formulas import atom
from repro.logic.parser import parse_conjunction
from repro.mapping import StTgd
from repro.relational import (
    SkolemValue,
    constant,
    instance,
    relation,
    schema,
)
from repro.relational.algebra import ConstantColumn
from repro.rlens.base import ViewViolationError
from repro.stats import Statistics


EMP_DEPT = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))


def compiled(tgd_text, source_schema, hints=None, stats=None):
    tgd = StTgd.parse(tgd_text)
    planner = Planner(stats or Statistics.assumed(source_schema))
    return planner.plan_tgd(tgd, source_schema, "t0", hints or Hints())


class TestAtomLeaf:
    def test_columns_renamed_to_variables(self):
        leaf = compile_atom_leaf(atom("Emp", "x", "y"), EMP_DEPT, 10)
        assert leaf.expression.output_schema().attribute_names == ("x", "y")

    def test_repeated_variable_gets_selection(self):
        leaf = compile_atom_leaf(atom("Emp", "x", "x"), EMP_DEPT, 10)
        inst = instance(EMP_DEPT, {"Emp": [["a", "a"], ["a", "b"]]})
        rows = leaf.expression.evaluate(inst)
        assert rows == {(constant("a"),)}

    def test_constant_gets_selection(self):
        leaf = compile_atom_leaf(atom("Emp", "x", "d1"), EMP_DEPT, 10)
        # atom() turns bare ints into constants; build with const explicitly
        from repro.logic.formulas import Atom
        from repro.logic.terms import Var, const

        leaf = compile_atom_leaf(
            Atom("Emp", (Var("x"), const("d1"))), EMP_DEPT, 10
        )
        inst = instance(EMP_DEPT, {"Emp": [["a", "d1"], ["b", "d2"]]})
        assert leaf.expression.evaluate(inst) == {(constant("a"),)}

    def test_function_term_rejected(self):
        from repro.logic.formulas import Atom
        from repro.logic.terms import FuncTerm, Var

        bad = Atom("Emp", (Var("x"), FuncTerm("f", (Var("x"),))))
        with pytest.raises(CompilerLimitation):
            compile_atom_leaf(bad, EMP_DEPT, 10)


class TestSideConditions:
    def test_constant_predicate_translated(self):
        conj = parse_conjunction("Emp(x, y), C(x)")
        predicate = side_condition_predicate(conj)
        assert isinstance(predicate, ConstantColumn)

    def test_inequality_translated(self):
        conj = parse_conjunction("Emp(x, y), x != y")
        predicate = side_condition_predicate(conj)
        assert "≠" in repr(predicate) or "!=" in repr(predicate)

    def test_equality_with_constant(self):
        conj = parse_conjunction("Emp(x, y), y = 'd1'")
        predicate = side_condition_predicate(conj)
        assert "d1" in repr(predicate)

    def test_function_term_rejected(self):
        conj = parse_conjunction("Emp(x, y), x = f(x)")
        with pytest.raises(CompilerLimitation):
            side_condition_predicate(conj)


class TestForward:
    def test_frontier_values_exported(self):
        unit = compiled("Emp(x, d), Dept(d, h) -> Directory(x, h)", EMP_DEPT)
        inst = instance(
            EMP_DEPT,
            {"Emp": [["ann", "d1"]], "Dept": [["d1", "hana"]]},
        )
        facts = unit.forward_facts(inst)
        assert {f.row for f in facts} == {(constant("ann"), constant("hana"))}

    def test_existentials_are_canonical_skolems(self):
        unit = compiled("Emp(x, d) -> Mgr(x, m)", EMP_DEPT)
        inst = instance(EMP_DEPT, {"Emp": [["ann", "d1"]]})
        (fact,) = unit.forward_facts(inst)
        assert fact.row[1] == SkolemValue("sk_t0_m", (constant("ann"),))

    def test_same_frontier_same_skolem(self):
        unit = compiled("Emp(x, d) -> Mgr(x, m)", EMP_DEPT)
        inst = instance(EMP_DEPT, {"Emp": [["ann", "d1"], ["ann", "d2"]]})
        facts = unit.forward_facts(inst)
        assert len(facts) == 1  # frontier (ann) determines the fact


class TestProducesAndJustify:
    @pytest.fixture
    def unit(self):
        return compiled("Emp(x, d), Dept(d, h) -> Directory(x, h)", EMP_DEPT)

    def test_produces_matching_relation(self, unit):
        from repro.relational import Fact

        assert unit.produces(Fact("Directory", (constant("a"), constant("b"))))
        assert not unit.produces(Fact("Other", (constant("a"),)))
        assert not unit.produces(Fact("Directory", (constant("a"),)))

    def test_justify_builds_premise_facts(self, unit):
        from repro.relational import Fact, empty_instance

        fact = Fact("Directory", (constant("zed"), constant("boss")))
        facts = unit.justify(fact, empty_instance(unit.source_schema))
        relations = {f.relation for f in facts}
        assert relations == {"Emp", "Dept"}
        emp = next(f for f in facts if f.relation == "Emp")
        dept = next(f for f in facts if f.relation == "Dept")
        assert emp.row[0] == constant("zed")
        assert dept.row[1] == constant("boss")
        # The shared join variable d is filled once, consistently.
        assert emp.row[1] == dept.row[0]

    def test_justify_respects_column_policy(self):
        from repro.compiler import Hints
        from repro.relational import Fact, empty_instance
        from repro.rlens import ConstantPolicy

        hints = Hints()
        hints.set_column_policy("Emp", "dept", ConstantPolicy("default-dept"))
        hints.set_column_policy("Dept", "dept", ConstantPolicy("default-dept"))
        unit = compiled(
            "Emp(x, d), Dept(d, h) -> Directory(x, h)", EMP_DEPT, hints
        )
        fact = Fact("Directory", (constant("zed"), constant("boss")))
        facts = unit.justify(fact, empty_instance(unit.source_schema))
        emp = next(f for f in facts if f.relation == "Emp")
        assert emp.row[1] == constant("default-dept")

    def test_justify_unproducible_fact_rejected(self, unit):
        from repro.relational import Fact, empty_instance

        with pytest.raises(ViewViolationError):
            unit.justify(
                Fact("Nope", (constant(1),)), empty_instance(unit.source_schema)
            )


class TestRetract:
    @pytest.fixture
    def inst(self):
        return instance(
            EMP_DEPT,
            {
                "Emp": [["ann", "d1"], ["bob", "d1"]],
                "Dept": [["d1", "hana"]],
            },
        )

    def test_retract_default_first_atom(self, inst):
        from repro.relational import Fact

        unit = compiled("Emp(x, d), Dept(d, h) -> Directory(x, h)", EMP_DEPT)
        retracted = unit.retract(
            Fact("Directory", (constant("ann"), constant("hana"))), inst
        )
        assert retracted == [Fact("Emp", (constant("ann"), constant("d1")))]

    def test_retract_designated_atom(self, inst):
        from repro.relational import Fact

        hints = Hints(deletion_atom={"t0": 1})
        unit = compiled(
            "Emp(x, d), Dept(d, h) -> Directory(x, h)", EMP_DEPT, hints
        )
        retracted = unit.retract(
            Fact("Directory", (constant("ann"), constant("hana"))), inst
        )
        assert retracted == [Fact("Dept", (constant("d1"), constant("hana")))]

    def test_forbid_behavior_raises(self, inst):
        from repro.relational import Fact

        hints = Hints(deletion_behavior={"t0": DeletionBehavior.FORBID})
        unit = compiled("Emp(x, d) -> Mgr(x, m)", EMP_DEPT, hints)
        with pytest.raises(ViewViolationError, match="forbids"):
            unit.retract(Fact("Mgr", (constant("ann"), constant("x"))), inst)

    def test_unknown_behavior_rejected(self):
        hints = Hints(deletion_behavior={"t0": "explode"})
        with pytest.raises(ValueError, match="unknown deletion behavior"):
            hints.deletion_behavior_for("t0")


class TestCompilableFragment:
    def test_multi_atom_shared_existential_rejected(self):
        tgd = StTgd.parse("A(x) -> exists z . T(x, z), U(z)")
        source = schema(relation("A", "x"))
        planner = Planner(Statistics.assumed(source))
        with pytest.raises(CompilerLimitation):
            planner.plan_tgd(tgd, source, "t0", Hints())

    def test_normalized_multi_atom_splits_fine(self):
        source = schema(relation("Takes", "s", "c"))
        target = schema(relation("Student", "i", "n"), relation("Assgn", "s", "c"))
        from repro.mapping import SchemaMapping

        mapping = SchemaMapping.parse(
            source, target, "Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)"
        )
        planner = Planner(Statistics.assumed(source))
        units = planner.plan_mapping(mapping)
        assert len(units) == 2
