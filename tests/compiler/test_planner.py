"""Tests for the statistics-informed planner."""

import pytest

from repro.compiler import Hints, Planner, PlannerConfig
from repro.mapping import SchemaMapping, StTgd
from repro.relational import instance, relation, schema
from repro.relational.algebra import Join
from repro.stats import Statistics


SOURCE = schema(
    relation("Big", "a", "b"),
    relation("Small", "b", "c"),
    relation("Tiny", "c", "d"),
)
TARGET = schema(relation("Out", "a", "d"))


def gather_stats():
    inst = instance(
        SOURCE,
        {
            "Big": [[f"a{i}", f"b{i % 5}"] for i in range(50)],
            "Small": [[f"b{i}", f"c{i}"] for i in range(5)],
            "Tiny": [["c0", "d0"]],
        },
    )
    return Statistics.gather(inst), inst


def joins_of(expression):
    out = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, Join):
            out.append(node)
        stack.extend(node.children())
    return out


class TestJoinOrdering:
    def test_optimized_plan_starts_with_smallest(self):
        stats, _ = gather_stats()
        planner = Planner(stats)
        tgd = StTgd.parse("Big(a, b), Small(b, c), Tiny(c, d) -> Out(a, d)")
        unit = planner.plan_tgd(tgd, SOURCE, "t0", Hints())
        plan_text = repr(unit.premise_plan)
        # Tiny (1 row) must be scanned before Big (50 rows).
        assert plan_text.index("Tiny") < plan_text.index("Big")

    def test_naive_plan_keeps_textual_order(self):
        stats, _ = gather_stats()
        planner = Planner(stats, PlannerConfig(optimize=False))
        tgd = StTgd.parse("Big(a, b), Small(b, c), Tiny(c, d) -> Out(a, d)")
        unit = planner.plan_tgd(tgd, SOURCE, "t0", Hints())
        plan_text = repr(unit.premise_plan)
        assert plan_text.index("Big") < plan_text.index("Small") < plan_text.index(
            "Tiny"
        )

    def test_plans_agree_semantically(self):
        stats, inst = gather_stats()
        tgd = StTgd.parse("Big(a, b), Small(b, c), Tiny(c, d) -> Out(a, d)")
        optimized = Planner(stats).plan_tgd(tgd, SOURCE, "t0", Hints())
        naive = Planner(stats, PlannerConfig(optimize=False)).plan_tgd(
            tgd, SOURCE, "t0", Hints()
        )
        assert optimized.premise_plan.evaluate(inst) == naive.premise_plan.evaluate(
            inst
        )


class TestAlgorithmChoice:
    def test_hash_join_for_large_inputs(self):
        stats, _ = gather_stats()
        planner = Planner(stats)
        tgd = StTgd.parse("Big(a, b), Small(b, c) -> Out(a, c)")
        unit = planner.plan_tgd(tgd, SOURCE, "t0", Hints())
        algorithms = {j.algorithm for j in joins_of(unit.premise_plan)}
        # Big has 50 rows, Small 5: below the smaller side's threshold the
        # planner may pick either; with threshold 8 the min side (5) gets a
        # nested loop.
        assert algorithms == {"nested_loop"}

    def test_hash_join_threshold_configurable(self):
        stats, _ = gather_stats()
        planner = Planner(stats, PlannerConfig(hash_join_threshold=1.0))
        tgd = StTgd.parse("Big(a, b), Small(b, c) -> Out(a, c)")
        unit = planner.plan_tgd(tgd, SOURCE, "t0", Hints())
        algorithms = {j.algorithm for j in joins_of(unit.premise_plan)}
        assert algorithms == {"hash"}

    def test_naive_config_uses_nested_loops(self):
        stats, _ = gather_stats()
        planner = Planner(stats, PlannerConfig(optimize=False))
        tgd = StTgd.parse("Big(a, b), Small(b, c) -> Out(a, c)")
        unit = planner.plan_tgd(tgd, SOURCE, "t0", Hints())
        assert {j.algorithm for j in joins_of(unit.premise_plan)} == {"nested_loop"}


class TestPlanMapping:
    def test_mapping_normalized_before_planning(self):
        source = schema(relation("Takes", "s", "c"))
        target = schema(relation("Student", "i", "n"), relation("Assgn", "s", "c"))
        mapping = SchemaMapping.parse(
            source, target, "Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)"
        )
        units = Planner(Statistics.assumed(source)).plan_mapping(mapping)
        assert [u.tgd_id for u in units] == ["tgd_0", "tgd_1"]

    def test_empty_premise_rejected(self):
        from repro.compiler import CompilerLimitation
        from repro.logic.formulas import Conjunction, atom

        tgd = StTgd(Conjunction([]), Conjunction([atom("Out", "x", "y")]))
        planner = Planner(Statistics.assumed(SOURCE))
        with pytest.raises(CompilerLimitation):
            planner.plan_tgd(tgd, SOURCE, "t0", Hints())

    def test_disconnected_premise_still_plans(self):
        stats, inst = gather_stats()
        tgd = StTgd.parse("Big(a, b), Tiny(c, d) -> Out(a, d)")
        unit = Planner(stats).plan_tgd(tgd, SOURCE, "t0", Hints())
        rows = unit.premise_plan.evaluate(inst)
        assert len(rows) == 50  # product with the single Tiny row
