"""Tests for plan rendering, policy questions, and the completeness harness."""

import pytest

from repro.compiler import (
    ExchangeEngine,
    check_completeness,
    forward_agrees_with_chase,
    render_expression,
)
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import SchemaMapping
from repro.relational import instance, relation, schema
from repro.stats import Statistics
from repro.workloads import all_scenarios


class TestRenderExpression:
    def test_scan_with_renaming(self):
        from repro.relational.algebra import Scan

        lines = render_expression(Scan(relation("R", "a", "b"), ("x", "y")))
        assert lines == ["Scan R as (x, y)"]

    def test_join_labels_algorithm(self):
        from repro.relational.algebra import Join, Scan

        expr = Join(
            Scan(relation("R", "x")), Scan(relation("S", "x")), algorithm="hash"
        )
        lines = render_expression(expr)
        assert lines[0].startswith("HashJoin on (x)")

    def test_product_labelled(self):
        from repro.relational.algebra import Join, Scan

        expr = Join(Scan(relation("R", "x")), Scan(relation("S", "y")))
        lines = render_expression(expr)
        assert "(product)" in lines[0]

    def test_nested_rendering_indents(self):
        from repro.relational.algebra import Project, Scan, Select, eq

        expr = Project(Select(Scan(relation("R", "a")), eq("a", 1)), ("a",))
        lines = render_expression(expr)
        assert lines[0].startswith("Project")
        assert lines[1].startswith("  Select")
        assert lines[2].startswith("    Scan")


class TestPolicyQuestions:
    def test_insert_routing_question_for_multi_producers(self):
        source = schema(relation("F", "x"), relation("M", "x"))
        target = schema(relation("P", "x"))
        mapping = SchemaMapping.parse(source, target, "F(x) -> P(x); M(x) -> P(x)")
        engine = ExchangeEngine.compile(mapping)
        slots = {q.slot for q in engine.policy_questions()}
        assert "insert_routing:P" in slots

    def test_fully_determined_mapping_has_no_questions(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        engine = ExchangeEngine.compile(mapping)
        assert engine.policy_questions() == []

    def test_plan_unit_lookup(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        engine = ExchangeEngine.compile(mapping)
        assert engine.plan.unit("tgd_0").target_relation == "B"
        with pytest.raises(KeyError):
            engine.plan.unit("tgd_9")


class TestCompleteness:
    def test_all_scenarios_complete(self):
        for scenario in all_scenarios():
            engine = ExchangeEngine.compile(
                scenario.mapping, Statistics.gather(scenario.sample)
            )
            report = check_completeness(engine, [scenario.sample])
            assert report.complete, (scenario.name, report.failures)

    def test_certain_answer_queries_checked(self):
        scenario = next(s for s in all_scenarios() if s.name == "emp_manager")
        engine = ExchangeEngine.compile(scenario.mapping)
        query = parse_conjunction("Manager(x, y)")
        report = check_completeness(
            engine, [scenario.sample], queries=[(query, [Var("x")])]
        )
        assert report.complete

    def test_forward_agreement_helper(self):
        scenario = next(s for s in all_scenarios() if s.name == "hospital")
        engine = ExchangeEngine.compile(scenario.mapping)
        assert forward_agrees_with_chase(
            scenario.mapping, engine.lens, scenario.sample
        )

    def test_report_counts(self):
        scenario = next(s for s in all_scenarios() if s.name == "finance")
        engine = ExchangeEngine.compile(scenario.mapping)
        report = check_completeness(engine, [scenario.sample, scenario.sample])
        assert report.checked == 2
        assert report.forward_agreements == 2
        assert report.getput_exact == 2

    def test_empty_source_completeness(self):
        from repro.relational import empty_instance

        scenario = next(s for s in all_scenarios() if s.name == "person")
        engine = ExchangeEngine.compile(scenario.mapping)
        report = check_completeness(
            engine, [empty_instance(scenario.source)]
        )
        assert report.complete
