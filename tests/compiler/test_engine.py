"""Tests for the ExchangeLens / ExchangeEngine bidirectional behaviour."""

import pytest

from repro.compiler import ExchangeEngine, Hints
from repro.mapping import SchemaMapping, universal_solution
from repro.relational import (
    Fact,
    constant,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)
from repro.rlens import ConstantPolicy, ViewViolationError
from repro.stats import Statistics


@pytest.fixture
def hr():
    source = schema(
        relation("Employee", "eid", "name", "dept"),
        relation("Department", "dept", "site"),
    )
    target = schema(relation("Directory", "eid", "name", "site"))
    mapping = SchemaMapping.parse(
        source,
        target,
        "Employee(e, n, d), Department(d, l) -> Directory(e, n, l)",
    )
    inst = instance(
        source,
        {
            "Employee": [[1, "ann", "eng"], [2, "bob", "ops"]],
            "Department": [["eng", "berlin"], ["ops", "lisbon"]],
        },
    )
    return mapping, inst


class TestForward:
    def test_get_agrees_with_chase(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping, Statistics.gather(inst))
        assert homomorphically_equivalent(
            engine.exchange(inst), universal_solution(mapping, inst)
        )

    def test_get_is_deterministic(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        assert engine.exchange(inst) == engine.exchange(inst)


class TestBackward:
    def test_getput_exact(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        view = engine.exchange(inst)
        assert engine.put_back(view, inst) == inst

    def test_deletion_propagates(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        view = engine.exchange(inst)
        edited = view.without_facts(
            [Fact("Directory", (constant(1), constant("ann"), constant("berlin")))]
        )
        out = engine.put_back(edited, inst)
        assert (constant(1), constant("ann"), constant("eng")) not in out.rows(
            "Employee"
        )
        # The department row is untouched (deletion atom defaults to Employee).
        assert (constant("eng"), constant("berlin")) in out.rows("Department")

    def test_insertion_justified(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        view = engine.exchange(inst)
        edited = view.with_facts(
            [Fact("Directory", (constant(3), constant("cyd"), constant("rio")))]
        )
        out = engine.put_back(edited, inst)
        new_emp = next(r for r in out.rows("Employee") if r[0] == constant(3))
        new_dept = next(r for r in out.rows("Department") if r[1] == constant("rio"))
        assert new_emp[2] == new_dept[0]  # join key filled consistently

    def test_putget_modulo_homomorphic_equivalence(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        view = engine.exchange(inst)
        edited = view.with_facts(
            [Fact("Directory", (constant(3), constant("cyd"), constant("rio")))]
        )
        out = engine.put_back(edited, inst)
        assert homomorphically_equivalent(engine.exchange(out), edited)

    def test_unproducible_insert_rejected(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        # Build a mapping whose conclusion fixes a constant, then push a
        # fact violating it.
        source = mapping.source
        target = schema(relation("Flag", "tag", "name"))
        m2 = SchemaMapping.parse(
            source, target, "Employee(e, n, d) -> Flag('emp', n)"
        )
        engine2 = ExchangeEngine.compile(m2)
        view = engine2.exchange(inst)
        bad = view.with_facts([Fact("Flag", (constant("zzz"), constant("x")))])
        with pytest.raises(ViewViolationError):
            engine2.put_back(bad, inst)


class TestInsertRouting:
    @pytest.fixture
    def two_producers(self):
        source = schema(relation("F", "x"), relation("M", "x"))
        target = schema(relation("P", "x"))
        mapping = SchemaMapping.parse(source, target, "F(x) -> P(x); M(x) -> P(x)")
        inst = instance(source, {"F": [["a"]], "M": [["b"]]})
        return mapping, inst

    def test_default_routes_to_first_tgd(self, two_producers):
        mapping, inst = two_producers
        engine = ExchangeEngine.compile(mapping)
        view = engine.exchange(inst).with_facts([Fact("P", (constant("new"),))])
        out = engine.put_back(view, inst)
        assert (constant("new"),) in out.rows("F")

    def test_hint_reroutes(self, two_producers):
        mapping, inst = two_producers
        hints = Hints(insert_routing={"P": "tgd_1"})
        engine = ExchangeEngine.compile(mapping, hints=hints)
        view = engine.exchange(inst).with_facts([Fact("P", (constant("new"),))])
        out = engine.put_back(view, inst)
        assert (constant("new"),) in out.rows("M")

    def test_bad_routing_hint_rejected(self, two_producers):
        mapping, inst = two_producers
        hints = Hints(insert_routing={"P": "tgd_99"})
        engine = ExchangeEngine.compile(mapping, hints=hints)
        view = engine.exchange(inst).with_facts([Fact("P", (constant("new"),))])
        with pytest.raises(ValueError, match="does not produce"):
            engine.put_back(view, inst)

    def test_deletion_retracts_from_all_producers(self, two_producers):
        mapping, inst = two_producers
        source = mapping.source
        both = instance(source, {"F": [["a"]], "M": [["a"]]})
        engine = ExchangeEngine.compile(mapping)
        view = engine.exchange(both).without_facts([Fact("P", (constant("a"),))])
        out = engine.put_back(view, both)
        assert out.is_empty()


class TestEngineFacade:
    def test_show_plan_contains_tgds_and_questions(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping, Statistics.gather(inst))
        text = engine.show_plan()
        assert "tgd_0" in text
        assert "forward (get)" in text
        assert "backward (put)" in text

    def test_policy_questions_enumerated(self, hr):
        mapping, _ = hr
        engine = ExchangeEngine.compile(mapping)
        slots = {q.slot for q in engine.policy_questions()}
        # Employee.dept and Department.dept are the unmapped source columns;
        # the two-atom premise also raises a deletion question.
        assert "column:Employee.dept" in slots
        assert "deletion_atom:tgd_0" in slots

    def test_symmetric_session(self, hr):
        mapping, inst = hr
        engine = ExchangeEngine.compile(mapping)
        session = engine.symmetric_session()
        view, complement = session.putr(inst, session.missing)
        assert view.schema == mapping.target
        edited = view.with_facts(
            [Fact("Directory", (constant(9), constant("zed"), constant("rome")))]
        )
        back, _ = session.putl(edited, complement)
        assert any(r[0] == constant(9) for r in back.rows("Employee"))

    def test_column_policy_hint_applied(self, hr):
        mapping, inst = hr
        hints = Hints()
        hints.set_column_policy("Employee", "dept", ConstantPolicy("unknown"))
        hints.set_column_policy("Department", "dept", ConstantPolicy("unknown"))
        engine = ExchangeEngine.compile(mapping, hints=hints)
        view = engine.exchange(inst).with_facts(
            [Fact("Directory", (constant(9), constant("zed"), constant("rome")))]
        )
        out = engine.put_back(view, inst)
        new_emp = next(r for r in out.rows("Employee") if r[0] == constant(9))
        assert new_emp[2] == constant("unknown")
