"""Tests for incremental forward exchange (delta view maintenance)."""

import random

import pytest

from repro.compiler import ExchangeEngine
from repro.compiler.incremental import IncrementalExchange, IncrementalUnsupported
from repro.lenses.delta import InstanceDelta
from repro.relational import Fact, constant, instance, relation, schema
from repro.stats import Statistics
from repro.workloads import hr_scenario, random_exchange_setting


@pytest.fixture
def hr():
    scenario = hr_scenario()
    engine = ExchangeEngine.compile(
        scenario.mapping, Statistics.gather(scenario.sample)
    )
    return scenario, engine, IncrementalExchange(engine.lens)


def fact(rel, *values):
    return Fact(rel, tuple(constant(v) for v in values))


class TestInsertions:
    def test_inserted_employee_derives_new_target_facts(self, hr):
        scenario, engine, incremental = hr
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        delta = InstanceDelta([fact("Employee", 4, "Dan", "eng", 80)], [])
        target_delta = incremental.propagate_forward(delta, old_source, old_target)
        assert fact("Directory", 4, "Dan", "Berlin") in target_delta.inserts
        assert fact("OrgChart", 4, "Dana") in target_delta.inserts
        assert not target_delta.deletes

    def test_inserted_department_joins_with_existing_employees(self, hr):
        scenario, engine, incremental = hr
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        # A second 'sales' department row cannot exist (same key) — use a
        # fresh dept that an incoming employee will reference next.
        delta = InstanceDelta(
            [
                fact("Department", "ml", "Gail", "Zurich"),
                fact("Employee", 5, "Eva", "ml", 70),
            ],
            [],
        )
        target_delta = incremental.propagate_forward(delta, old_source, old_target)
        assert fact("Directory", 5, "Eva", "Zurich") in target_delta.inserts

    def test_rederived_existing_fact_not_reinserted(self, hr):
        scenario, engine, incremental = hr
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        # A duplicate-information employee row that derives nothing new:
        delta = InstanceDelta([fact("Employee", 1, "Alice", "eng", 120)], [])
        target_delta = incremental.propagate_forward(delta, old_source, old_target)
        assert target_delta.is_identity()


class TestDeletions:
    def test_deleted_employee_retracts_their_facts(self, hr):
        scenario, engine, incremental = hr
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        delta = InstanceDelta([], [fact("Employee", 1, "Alice", "eng", 120)])
        target_delta = incremental.propagate_forward(delta, old_source, old_target)
        assert fact("Directory", 1, "Alice", "Berlin") in target_delta.deletes
        assert not target_delta.inserts

    def test_alternative_support_blocks_deletion(self, hr):
        scenario, engine, incremental = hr
        base = scenario.sample.with_facts(
            [fact("Employee", 9, "Alice2", "eng", 100)]
        )
        old_target = engine.exchange(base)
        # Deleting the 'sales' department kills Carol's facts, but Alice's
        # eng-backed facts survive.
        delta = InstanceDelta([], [fact("Department", "sales", "Eve", "Lisbon")])
        target_delta = incremental.propagate_forward(delta, base, old_target)
        assert fact("Directory", 3, "Carol", "Lisbon") in target_delta.deletes
        assert fact("Directory", 1, "Alice", "Berlin") not in target_delta.deletes

    def test_insert_rederives_deleted_fact(self, hr):
        scenario, engine, incremental = hr
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        # Replace Alice's row with an identical-information variant: the
        # Directory fact survives (delete then rederive ⇒ no net change).
        delta = InstanceDelta(
            [fact("Employee", 1, "Alice", "eng", 999)],
            [fact("Employee", 1, "Alice", "eng", 120)],
        )
        target_delta = incremental.propagate_forward(delta, old_source, old_target)
        assert fact("Directory", 1, "Alice", "Berlin") not in target_delta.deletes


class TestAgreementWithFullExchange:
    @pytest.mark.parametrize("seed", [2, 3, 9, 14, 15, 19])
    def test_incremental_equals_recompute_on_random_settings(self, seed):
        mapping, inst = random_exchange_setting(seed)
        engine = ExchangeEngine.compile(mapping, Statistics.gather(inst))
        incremental = IncrementalExchange(engine.lens)
        old_target = engine.exchange(inst)

        rng = random.Random(seed * 7)
        source_facts = sorted(inst.facts(), key=repr)
        deletes = source_facts[: min(2, len(source_facts))]
        rel = rng.choice(list(mapping.source))
        inserts = [
            Fact(rel.name, tuple(constant(f"inc{seed}_{i}") for i in range(rel.arity)))
        ]
        delta = InstanceDelta(inserts, deletes)

        refreshed = incremental.refresh(delta, inst, old_target)
        recomputed = engine.exchange(delta.apply(inst))
        assert refreshed.same_facts(recomputed), seed

    def test_scenario_round(self, hr):
        scenario, engine, incremental = hr
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        delta = InstanceDelta(
            [fact("Employee", 4, "Dan", "sales", 75)],
            [fact("Employee", 2, "Bob", "eng", 110)],
        )
        refreshed = incremental.refresh(delta, old_source, old_target)
        assert refreshed.same_facts(engine.exchange(delta.apply(old_source)))


def _egd_engine():
    from repro.logic.parser import parse_conjunction
    from repro.logic.terms import Var
    from repro.mapping import SchemaMapping, StTgd
    from repro.mapping.dependencies import Egd

    source = schema(relation("A", "x"))
    target = schema(relation("B", "x", "y"))
    egd = Egd(parse_conjunction("B(x, y), B(x, z)"), Var("y"), Var("z"))
    mapping = SchemaMapping(
        source, target, [StTgd.parse("A(x) -> exists y . B(x, y)")], [egd]
    )
    return ExchangeEngine.compile(mapping)


def _refresh_with_fallback(engine, delta, old_source, old_target):
    """The caller-side contract: incremental when supported, else re-exchange."""
    try:
        incremental = IncrementalExchange(engine.lens)
    except IncrementalUnsupported:
        return engine.exchange(delta.apply(old_source))
    return incremental.refresh(delta, old_source, old_target)


class TestUnsupported:
    def test_target_dependencies_rejected(self):
        engine = _egd_engine()
        with pytest.raises(IncrementalUnsupported):
            IncrementalExchange(engine.lens)

    def test_rejection_is_raised_before_any_delta_work(self):
        # The constructor itself raises — callers can pick the fallback
        # path once, up front, not per delta.
        engine = _egd_engine()
        with pytest.raises(IncrementalUnsupported, match="re-exchange"):
            IncrementalExchange(engine.lens)

    def test_fallback_full_reexchange_is_byte_identical(self):
        from repro.relational import dumps_instance

        engine = _egd_engine()
        old_source = instance(engine.mapping.source, {"A": [["a1"], ["a2"]]})
        old_target = engine.exchange(old_source)
        delta = InstanceDelta([fact("A", "a3")], [fact("A", "a1")])

        refreshed = _refresh_with_fallback(engine, delta, old_source, old_target)
        recomputed = engine.exchange(delta.apply(old_source))
        assert dumps_instance(refreshed) == dumps_instance(recomputed)

    def test_fallback_contract_matches_supported_path(self):
        # On an egd-free mapping the same caller-side contract takes the
        # incremental path and still agrees with full re-exchange.
        scenario = hr_scenario()
        engine = ExchangeEngine.compile(
            scenario.mapping, Statistics.gather(scenario.sample)
        )
        old_source = scenario.sample
        old_target = engine.exchange(old_source)
        delta = InstanceDelta([fact("Employee", 4, "Dan", "sales", 75)], [])
        refreshed = _refresh_with_fallback(engine, delta, old_source, old_target)
        assert refreshed.same_facts(engine.exchange(delta.apply(old_source)))
