"""Tests for FD policies used as compiler hints (column-name resolution)."""

import pytest

from repro.compiler import ExchangeEngine, Hints
from repro.mapping import SchemaMapping
from repro.relational import (
    Fact,
    FunctionalDependency,
    constant,
    instance,
    relation,
    schema,
)
from repro.rlens import FdPolicy
from repro.stats import Statistics


@pytest.fixture
def setting():
    source = schema(relation("Emp", "name", "dept", "site"))
    target = schema(relation("Directory", "name", "dept"))
    mapping = SchemaMapping.parse(source, target, "Emp(n, d, s) -> Directory(n, d)")
    data = instance(
        source,
        {
            "Emp": [
                ["ann", "eng", "berlin"],
                ["bob", "ops", "lisbon"],
            ]
        },
    )
    return mapping, data


class TestFdPolicyHint:
    def test_fd_restores_dropped_source_column(self, setting):
        mapping, data = setting
        fd = FunctionalDependency("Emp", ("dept",), ("site",))
        hints = Hints()
        hints.set_column_policy("Emp", "site", FdPolicy(fd))
        engine = ExchangeEngine.compile(mapping, Statistics.gather(data), hints)
        view = engine.exchange(data).with_facts(
            [Fact("Directory", (constant("cyd"), constant("eng")))]
        )
        back = engine.put_back(view, data)
        cyd = next(r for r in back.rows("Emp") if r[0] == constant("cyd"))
        # The FD dept → site restored berlin from the old source.
        assert cyd[2] == constant("berlin")

    def test_fd_falls_back_on_unseen_determinant(self, setting):
        mapping, data = setting
        fd = FunctionalDependency("Emp", ("dept",), ("site",))
        hints = Hints()
        hints.set_column_policy("Emp", "site", FdPolicy(fd))
        engine = ExchangeEngine.compile(mapping, hints=hints)
        view = engine.exchange(data).with_facts(
            [Fact("Directory", (constant("dee"), constant("brand-new")))]
        )
        back = engine.put_back(view, data)
        dee = next(r for r in back.rows("Emp") if r[0] == constant("dee"))
        from repro.relational import is_null

        assert is_null(dee[2])

    def test_variable_names_still_resolve(self, setting):
        """Policies keyed on tgd variable names keep working."""
        mapping, data = setting
        from repro.rlens.policies import ColumnPolicy

        class EchoDeptVar(ColumnPolicy):
            def fill(self, view_row, column, relation_name, context):
                # 'd' is the tgd's variable name for the dept position.
                return view_row["d"]

        hints = Hints()
        hints.set_column_policy("Emp", "site", EchoDeptVar())
        engine = ExchangeEngine.compile(mapping, hints=hints)
        view = engine.exchange(data).with_facts(
            [Fact("Directory", (constant("eve"), constant("qa")))]
        )
        back = engine.put_back(view, data)
        eve = next(r for r in back.rows("Emp") if r[0] == constant("eve"))
        assert eve[2] == constant("qa")
