"""Tests for synchronization sessions and conflict handling."""

import pytest

from repro.compiler import ExchangeEngine
from repro.compiler.session import (
    Conflict,
    ConflictPolicy,
    SyncConflict,
    SyncOutcome,
    SyncSession,
)
from repro.lenses.delta import InstanceDelta
from repro.mapping import SchemaMapping
from repro.relational import Fact, constant, instance, relation, schema


@pytest.fixture
def setup():
    source_schema = schema(relation("Emp", "name", "dept"))
    target_schema = schema(relation("Roster", "name", "dept"))
    mapping = SchemaMapping.parse(
        source_schema, target_schema, "Emp(n, d) -> Roster(n, d)"
    )
    engine = ExchangeEngine.compile(mapping)
    source = instance(
        source_schema, {"Emp": [["ann", "eng"], ["bob", "ops"]]}
    )
    return engine, source


def roster(name, dept):
    return Fact("Roster", (constant(name), constant(dept)))


def emp(name, dept):
    return Fact("Emp", (constant(name), constant(dept)))


class TestOneSidedUpdates:
    def test_initialization_materializes_target(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        assert len(session.target.rows("Roster")) == 2

    def test_push_source(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        new_source = source.with_facts([emp("cyd", "eng")])
        target = session.push_source(new_source)
        assert roster("cyd", "eng") in target
        assert session.source == new_source

    def test_push_target(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        new_target = session.target.with_facts([roster("dee", "hr")])
        new_source = session.push_target(new_target)
        assert emp("dee", "hr") in new_source
        assert roster("dee", "hr") in session.target


class TestConcurrentMerge:
    def test_disjoint_edits_merge(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        new_source = source.with_facts([emp("cyd", "eng")])
        new_target = session.target.with_facts([roster("dee", "hr")])
        outcome = session.synchronize(new_source, new_target)
        assert outcome.clean
        assert roster("cyd", "eng") in outcome.target
        assert roster("dee", "hr") in outcome.target
        assert emp("dee", "hr") in outcome.source

    def test_agreeing_deletions_merge(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        new_source = source.without_facts([emp("ann", "eng")])
        new_target = session.target.without_facts([roster("ann", "eng")])
        outcome = session.synchronize(new_source, new_target)
        assert outcome.clean
        assert roster("ann", "eng") not in outcome.target
        assert emp("ann", "eng") not in outcome.source

    def test_mixed_edit_and_delete_on_different_facts(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        new_source = source.without_facts([emp("ann", "eng")])
        new_target = session.target.without_facts(
            [roster("bob", "ops")]
        ).with_facts([roster("bob", "hr")])
        outcome = session.synchronize(new_source, new_target)
        assert outcome.clean
        assert roster("ann", "eng") not in outcome.target
        assert roster("bob", "hr") in outcome.target
        assert emp("bob", "hr") in outcome.source

    def test_baselines_advance(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        session.synchronize(
            source.with_facts([emp("cyd", "eng")]), session.target
        )
        outcome = session.synchronize(session.source, session.target)
        assert outcome.clean
        assert outcome.source == session.source

    def test_honest_same_baseline_diffs_never_conflict(self, setup):
        """Under set semantics, same-baseline diffs cannot collide: one
        side cannot insert a fact the other deletes, because an insert
        needs the baseline to lack it and a delete needs it present."""
        engine, source = setup
        session = SyncSession(engine, source)
        new_source = source.without_facts([emp("ann", "eng")]).with_facts(
            [emp("ann", "hr")]
        )
        new_target = session.target.without_facts([roster("ann", "eng")])
        outcome = session.synchronize(new_source, new_target)
        assert outcome.clean
        assert roster("ann", "hr") in outcome.target
        assert roster("ann", "eng") not in outcome.target


class TestConflictMachinery:
    """Conflicts arise with *stale* replicas (replayed deltas); the
    detection/resolution machinery is exercised directly."""

    def test_find_conflicts(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        contested = roster("ann", "eng")
        src_delta = InstanceDelta([], [contested])
        tgt_delta = InstanceDelta([contested], [])
        conflicts = session._find_conflicts(src_delta, tgt_delta)
        assert conflicts == [Conflict(contested, "delete", "insert")]

    def test_find_conflicts_other_direction(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        contested = roster("zed", "ml")
        src_delta = InstanceDelta([contested], [])
        tgt_delta = InstanceDelta([], [contested])
        conflicts = session._find_conflicts(src_delta, tgt_delta)
        assert conflicts == [Conflict(contested, "insert", "delete")]

    def test_drop_removes_contested_edits(self, setup):
        engine, source = setup
        session = SyncSession(engine, source)
        contested = roster("ann", "eng")
        spared = roster("bob", "ops")
        delta = InstanceDelta([contested, spared], [])
        conflicts = [Conflict(contested, "delete", "insert")]
        kept = session._drop(delta, conflicts, side="target")
        assert kept.inserts == frozenset([spared])

    @staticmethod
    def _stale_setup(engine, source):
        """A replica whose baseline predates cyd's arrival.

        Session history: cyd is hired (baseline gains roster(cyd)); the
        replica went offline *before* that, edited independently, and
        re-inserts cyd on its own (it hired cyd too).  Meanwhile the
        source side fires cyd in the current round: the forward delta
        deletes roster(cyd) while the replica's delta (vs its stale
        baseline) inserts it — a genuine opposite-direction conflict.
        """
        session = SyncSession(engine, source)
        stale_baseline = session.target  # replica's last-known target
        session.push_source(source.with_facts([emp("cyd", "eng")]))
        new_source = session.source.without_facts([emp("cyd", "eng")])
        replica_target = stale_baseline.with_facts([roster("cyd", "eng")])
        return session, new_source, replica_target, stale_baseline

    def test_stale_replica_conflict_raises_under_fail(self, setup):
        engine, source = setup
        session, new_source, replica, stale = self._stale_setup(engine, source)
        with pytest.raises(SyncConflict) as excinfo:
            session.synchronize(
                new_source, replica,
                policy=ConflictPolicy.FAIL,
                target_baseline=stale,
            )
        assert excinfo.value.conflicts[0].fact == roster("cyd", "eng")

    def test_source_wins_policy(self, setup):
        engine, source = setup
        session, new_source, replica, stale = self._stale_setup(engine, source)
        outcome = session.synchronize(
            new_source, replica,
            policy=ConflictPolicy.SOURCE_WINS,
            target_baseline=stale,
        )
        assert not outcome.clean
        assert roster("cyd", "eng") not in outcome.target
        assert emp("cyd", "eng") not in outcome.source

    def test_target_wins_policy(self, setup):
        engine, source = setup
        session, new_source, replica, stale = self._stale_setup(engine, source)
        outcome = session.synchronize(
            new_source, replica,
            policy=ConflictPolicy.TARGET_WINS,
            target_baseline=stale,
        )
        assert not outcome.clean
        assert roster("cyd", "eng") in outcome.target
        assert emp("cyd", "eng") in outcome.source


class TestOutcome:
    def test_outcome_clean_flag(self):
        from repro.relational import empty_instance

        s = schema(relation("R", "a"))
        outcome = SyncOutcome(empty_instance(s), empty_instance(s))
        assert outcome.clean
        outcome.conflicts.append(
            Conflict(Fact("R", (constant(1),)), "insert", "delete")
        )
        assert not outcome.clean
