"""Tests for the engine's parallel-executor and cache knobs."""

from repro.compiler import ExchangeEngine
from repro.options import ExchangeOptions
from repro.exec import ExchangeCache
from repro.mapping import SchemaMapping, universal_solution
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.relational.homomorphism import homomorphically_equivalent


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))


def join_mapping():
    return SchemaMapping.parse(
        SRC, TGT, "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"
    )


def clustered_source(employees=8, depts=4):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


class TestEngineKnobs:
    def test_default_compile_has_no_executor(self):
        engine = ExchangeEngine.compile(join_mapping())
        assert engine.executor is None
        engine.close()  # no-op, must not raise

    def test_workers_knob_routes_exchange_through_executor(self):
        engine = ExchangeEngine.compile(
            join_mapping(),
            options=ExchangeOptions(workers=2, min_parallel_facts=0),
        )
        try:
            source = clustered_source()
            result = engine.exchange(source)
            assert canonically_equal(
                result, universal_solution(engine.mapping, source)
            )
            # chase solution ≡ lens view up to homomorphic equivalence
            assert homomorphically_equivalent(result, engine.lens.get(source))
        finally:
            engine.close()

    def test_cache_knob_alone_enables_executor(self):
        engine = ExchangeEngine.compile(join_mapping(), options=ExchangeOptions(cache=4))
        try:
            assert engine.executor is not None
            assert engine.executor.workers == 1
            source = clustered_source()
            first = engine.exchange(source)
            assert engine.exchange(source) is first
            assert engine.executor.cache.hits == 1
        finally:
            engine.close()

    def test_cache_accepts_prebuilt_object(self):
        cache = ExchangeCache(capacity=2)
        engine = ExchangeEngine.compile(join_mapping(), options=ExchangeOptions(cache=cache))
        try:
            engine.exchange(clustered_source())
            assert len(cache) == 1
        finally:
            engine.close()

    def test_exchange_many_without_executor_matches_lens(self):
        engine = ExchangeEngine.compile(join_mapping())
        sources = [clustered_source(employees=n) for n in (4, 8)]
        results = engine.exchange_many(sources)
        assert [r.size() for r in results] == [
            engine.lens.get(s).size() for s in sources
        ]

    def test_put_back_unaffected_by_executor(self):
        engine = ExchangeEngine.compile(join_mapping(), options=ExchangeOptions(workers=2))
        try:
            source = clustered_source()
            view = engine.lens.get(source)
            assert engine.put_back(view, source) == source  # GetPut
        finally:
            engine.close()
