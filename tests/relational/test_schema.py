"""Tests for schemas, relation schemas and typed attributes."""

import pytest

from repro.relational.schema import (
    Attribute,
    AttributeType,
    RelationSchema,
    Schema,
    relation,
    schema,
)


class TestAttributeType:
    def test_any_accepts_everything(self):
        assert AttributeType.ANY.accepts("x")
        assert AttributeType.ANY.accepts(3.5)

    def test_string(self):
        assert AttributeType.STRING.accepts("x")
        assert not AttributeType.STRING.accepts(1)

    def test_integer_rejects_bool(self):
        assert AttributeType.INTEGER.accepts(3)
        assert not AttributeType.INTEGER.accepts(True)

    def test_float_accepts_int(self):
        assert AttributeType.FLOAT.accepts(3)
        assert AttributeType.FLOAT.accepts(3.5)

    def test_boolean(self):
        assert AttributeType.BOOLEAN.accepts(False)
        assert not AttributeType.BOOLEAN.accepts(0)


class TestAttribute:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Attribute("")

    def test_repr_omits_any(self):
        assert repr(Attribute("name")) == "name"
        assert repr(Attribute("age", AttributeType.INTEGER)) == "age:integer"


class TestRelationSchema:
    def test_string_attributes_coerced(self):
        rel = RelationSchema("R", ["a", "b"])
        assert rel.attributes == (Attribute("a"), Attribute("b"))

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(ValueError, match="duplicate"):
            RelationSchema("R", ["a", "a"])

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            RelationSchema("", ["a"])

    def test_arity_and_names(self):
        rel = relation("R", "a", "b", "c")
        assert rel.arity == 3
        assert rel.attribute_names == ("a", "b", "c")

    def test_position_of(self):
        rel = relation("R", "a", "b")
        assert rel.position_of("b") == 1

    def test_position_of_unknown_raises(self):
        with pytest.raises(KeyError):
            relation("R", "a").position_of("z")

    def test_rename_keeps_attributes(self):
        rel = relation("R", "a").rename("S")
        assert rel.name == "S"
        assert rel.attribute_names == ("a",)

    def test_project_reorders(self):
        rel = relation("R", "a", "b", "c").project(["c", "a"], name="V")
        assert rel.name == "V"
        assert rel.attribute_names == ("c", "a")


class TestSchema:
    def test_contains_and_getitem(self):
        s = schema(relation("R", "a"))
        assert "R" in s
        assert s["R"].arity == 1

    def test_getitem_unknown_raises(self):
        with pytest.raises(KeyError):
            schema()["R"]

    def test_rejects_duplicate_relations(self):
        with pytest.raises(ValueError):
            Schema([relation("R", "a"), relation("R", "b")])

    def test_with_relation_replaces(self):
        s = schema(relation("R", "a")).with_relation(relation("R", "a", "b"))
        assert s["R"].arity == 2

    def test_without_relation(self):
        s = schema(relation("R", "a"), relation("S", "b")).without_relation("R")
        assert "R" not in s and "S" in s

    def test_without_unknown_raises(self):
        with pytest.raises(KeyError):
            schema().without_relation("R")

    def test_merge_disjoint(self):
        merged = schema(relation("R", "a")).merge(schema(relation("S", "b")))
        assert set(merged.relation_names) == {"R", "S"}

    def test_merge_agreeing_overlap(self):
        s = schema(relation("R", "a"))
        assert s.merge(s) == s

    def test_merge_conflicting_overlap_raises(self):
        with pytest.raises(ValueError, match="disagree"):
            schema(relation("R", "a")).merge(schema(relation("R", "a", "b")))

    def test_is_disjoint_from(self):
        assert schema(relation("R", "a")).is_disjoint_from(schema(relation("S", "a")))
        assert not schema(relation("R", "a")).is_disjoint_from(
            schema(relation("R", "a"))
        )

    def test_equality_and_hash(self):
        a = schema(relation("R", "a"))
        b = schema(relation("R", "a"))
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_yields_relations(self):
        s = schema(relation("R", "a"), relation("S", "b"))
        assert [r.name for r in s] == ["R", "S"]
        assert len(s) == 2
