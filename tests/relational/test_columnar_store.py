"""The columnar storage engine and its flat-buffer codec.

Covers :class:`~repro.relational.columnar.ColumnStore` construction,
slicing, packing, the eager and lazy unpack paths, and the structural
validation every buffer goes through on decode.
"""

import pytest
from array import array

from repro.relational import instance, relation, schema
from repro.relational.columnar import (
    ColumnarFormatError,
    ColumnStore,
    merge_result_buffers,
    pack_instance,
    pack_rows,
    unpack_instance,
    unpack_instance_lazy,
    unpack_rows,
    width_code,
)
from repro.relational.instance import Instance
from repro.relational.values import (
    Constant,
    LabeledNull,
    SkolemValue,
    constant,
)


S = schema(relation("R", "a", "b"), relation("S", "a"))


def mixed_instance():
    return instance(
        S,
        {
            "R": [["x", "y"], ["x", LabeledNull(3)], [7, True]],
            "S": [[LabeledNull(1)], ["z"]],
        },
    )


class TestBuild:
    def test_regions_are_contiguous(self):
        store = mixed_instance().columnar()
        values = store.values
        consts = values[: store.constant_count]
        nulls = values[
            store.constant_count : store.constant_count + store.labeled_count
        ]
        assert all(type(v) is Constant for v in consts)
        assert all(type(v) is LabeledNull for v in nulls)
        assert store.skolem_count() == 0

    def test_canonical_and_attached(self):
        inst = mixed_instance()
        store = inst.columnar()
        assert store.canonical
        assert inst.columnar_store is store
        assert inst.columnar() is store  # memoized

    def test_equal_instances_build_identical_tables(self):
        a = instance(S, {"R": [["x", "y"], ["p", "q"]]})
        b = instance(S, {"R": [["p", "q"], ["x", "y"]]})
        sa, sb = a.columnar(), b.columnar()
        assert sa.values == sb.values
        assert [list(c) for c in sa.columns["R"]] == [
            list(c) for c in sb.columns["R"]
        ]

    def test_id_rows_round_trip_values(self):
        inst = mixed_instance()
        store = inst.columnar()
        lookup = store.values.__getitem__
        rebuilt = {
            tuple(lookup(i) for i in row) for row in store.id_rows("R")
        }
        assert rebuilt == set(inst.rows("R"))

    def test_is_constant_is_an_id_comparison(self):
        store = mixed_instance().columnar()
        for ident, value in enumerate(store.values):
            assert (ident < store.constant_count) == (type(value) is Constant)

    def test_index_maps_keys_to_row_positions(self):
        inst = instance(S, {"R": [["x", "y"], ["x", "z"], ["w", "y"]]})
        store = inst.columnar()
        idx = store.index("R", (0,))
        x_id = store.peek(constant("x"))
        positions = idx[(x_id,)]
        assert len(positions) == 2
        assert store.index("R", (0,)) is idx  # cached

    def test_peek_never_interns(self):
        store = mixed_instance().columnar()
        before = store.table_size()
        assert store.peek(constant("not-there")) is None
        assert store.peek_raw(object()) is None  # unhashable-safe path
        assert store.table_size() == before

    def test_width_code_steps(self):
        assert width_code(10) == "B"
        assert width_code(1 << 8) == "B"
        assert width_code((1 << 8) + 1) == "H"
        assert width_code((1 << 16) + 1) == "I"
        assert width_code((1 << 32) + 1) == "Q"


class TestSlice:
    def test_slice_keeps_selected_rows(self):
        inst = instance(S, {"R": [["a", "b"], ["c", "d"], ["e", "f"]]})
        store = inst.columnar()
        sliced = store.slice({"R": [0, 2]})
        assert sliced.counts["R"] == 2
        assert sliced.counts["S"] == 0
        assert set(sliced.rows["R"]) == {
            store.rows["R"][0],
            store.rows["R"][2],
        }

    def test_slice_shares_table_and_is_not_canonical(self):
        store = mixed_instance().columnar()
        sliced = store.slice({"S": [0]})
        assert sliced.values is store.values
        assert not sliced.canonical

    def test_sliced_pack_compacts_the_table(self):
        inst = instance(S, {"R": [["a", "b"], ["c", "d"]]})
        store = inst.columnar()
        sliced = store.slice({"R": [0]})
        decoded = unpack_instance(sliced.pack())
        assert decoded.rows("R") == frozenset({(constant("a"), constant("b"))})
        # the shipped table holds only the used values, not the parent's
        assert decoded.columnar_store.table_size() == 2


class TestPackUnpack:
    def test_round_trip_same_facts(self):
        inst = mixed_instance()
        decoded = unpack_instance(pack_instance(inst))
        assert decoded.same_facts(inst)

    def test_canonical_buffer_decodes_canonical(self):
        buffer = pack_instance(mixed_instance())
        assert unpack_instance(buffer).columnar_store.canonical

    def test_relabel_hook_renames_nulls_and_drops_canon(self):
        inst = instance(S, {"S": [[LabeledNull(0)], ["z"]]})
        decoded = unpack_instance(
            pack_instance(inst), null_relabel=lambda n: LabeledNull(n.label + 10)
        )
        assert LabeledNull(10) in decoded.nulls()
        assert not decoded.columnar_store.canonical

    def test_pack_rows_round_trips_noncanonically(self):
        inst = mixed_instance()
        buffer = pack_rows(S, {n: inst.rows(n) for n in inst.relation_names()})
        decoded = unpack_instance(buffer)
        assert decoded.same_facts(inst)
        assert not decoded.columnar_store.canonical

    def test_unpack_rows_returns_bare_lists(self):
        inst = mixed_instance()
        rows = unpack_rows(pack_instance(inst))
        assert set(rows["R"]) == set(inst.rows("R"))
        assert set(rows["S"]) == set(inst.rows("S"))

    def test_skolem_values_survive(self):
        sk = SkolemValue("f", (constant("x"),))
        inst = Instance(S, {"S": {(sk,)}})
        assert unpack_instance(pack_instance(inst)).same_facts(inst)

    def test_pack_is_memoized(self):
        store = mixed_instance().columnar()
        assert store.pack() is store.pack()


class TestLazyUnpack:
    def test_round_trip_same_facts(self):
        inst = mixed_instance()
        lazy = unpack_instance_lazy(pack_instance(inst))
        assert lazy.same_facts(inst)

    def test_decode_defers_the_value_table(self):
        lazy = unpack_instance_lazy(pack_instance(mixed_instance()))
        store = lazy.columnar_store
        assert store._table is None  # nothing materialized yet
        assert store.size() == mixed_instance().size()
        assert store.table_size() == len(store.values)  # forces, then agrees

    def test_canon_header_carries_over(self):
        canonical = pack_instance(mixed_instance())
        assert unpack_instance_lazy(canonical).columnar_store.canonical
        inst = mixed_instance()
        emitted = pack_rows(S, {n: inst.rows(n) for n in inst.relation_names()})
        assert not unpack_instance_lazy(emitted).columnar_store.canonical

    def test_deferred_repack_round_trips(self):
        # a lazily decoded shard that is packed again without ever
        # materializing values (the worker's ship-home path)
        inst = mixed_instance()
        lazy = unpack_instance_lazy(pack_instance(inst))
        again = unpack_instance(lazy.columnar_store.pack())
        assert again.same_facts(inst)
        assert again.columnar_store.canonical

    def test_max_labeled_null_without_values(self):
        inst = instance(S, {"S": [[LabeledNull(5)], [LabeledNull(2)], ["z"]]})
        store = unpack_instance_lazy(pack_instance(inst)).columnar_store
        assert store.max_labeled_null() == 5
        assert store._table is None  # answered from raw parts

    def test_max_labeled_null_empty(self):
        inst = instance(S, {"R": [["a", "b"]]})
        store = unpack_instance_lazy(pack_instance(inst)).columnar_store
        assert store.max_labeled_null() == -1

    def test_missing_relations_decode_empty(self):
        buffer = pack_rows(S, {"S": [(constant("z"),)]})
        lazy = unpack_instance_lazy(buffer)
        assert lazy.rows("R") == frozenset()
        assert lazy.rows("S") == frozenset({(constant("z"),)})

    def test_raw_parts_answer_without_values(self):
        inst = mixed_instance()
        store = unpack_instance_lazy(pack_instance(inst)).columnar_store
        assert sorted(store.null_labels()) == [1, 3]
        assert set(store.raw_constants()) >= {"x", "y", "z", 7, True}
        assert store._table is None


class TestValidation:
    def corrupt(self, buffer: bytes, **header_edits) -> bytes:
        """Re-assemble *buffer* with JSON header fields swapped out."""
        import json
        import struct

        magic_len = 6
        (header_len,) = struct.unpack_from("<I", buffer, magic_len)
        start = magic_len + 4
        header = json.loads(buffer[start : start + header_len])
        header.update(header_edits)
        new_header = json.dumps(header, separators=(",", ":")).encode()
        return (
            buffer[:magic_len]
            + struct.pack("<I", len(new_header))
            + new_header
            + buffer[start + header_len :]
        )

    def test_bad_magic(self):
        with pytest.raises(ColumnarFormatError, match="magic"):
            unpack_instance(b"NOPE" + b"\x00" * 32)

    def test_bad_version(self):
        buffer = self.corrupt(pack_instance(mixed_instance()), v=99)
        with pytest.raises(ColumnarFormatError, match="version"):
            unpack_instance_lazy(buffer)

    def test_truncated_columns(self):
        buffer = pack_instance(mixed_instance())
        with pytest.raises(ColumnarFormatError, match="truncated"):
            unpack_instance_lazy(buffer[:-3])

    def test_unknown_relation(self):
        buffer = pack_rows(
            schema(relation("T", "a")), {"T": [(constant("v"),)]}
        )
        with pytest.raises(ColumnarFormatError, match="unknown relation"):
            # decode against a schema that has no T
            unpack_instance_lazy(
                self.corrupt(
                    buffer,
                    schema=_schema_json(schema(relation("U", "a"))),
                )
            )

    def test_arity_mismatch(self):
        buffer = pack_rows(
            schema(relation("R", "a")), {"R": [(constant("v"),)]}
        )
        with pytest.raises(ColumnarFormatError, match="arity mismatch"):
            unpack_instance_lazy(
                self.corrupt(
                    buffer, schema=_schema_json(schema(relation("R", "a", "b")))
                )
            )

    def test_id_out_of_table_bounds(self):
        buffer = pack_rows(
            schema(relation("R", "a")), {"R": [(constant("v"),)]}
        )
        # claim an empty value table; the column id 0 now dangles
        bad = self.corrupt(buffer, consts=0)
        with pytest.raises(ColumnarFormatError):
            unpack_instance_lazy(bad)


def _schema_json(s):
    from repro.relational.serialization import schema_to_json

    return schema_to_json(s)


class TestMergeResultBuffers:
    def test_merges_disjoint_shard_solutions(self):
        t = schema(relation("O", "n", "m"))
        a = Instance(t, {"O": {(constant("a"), LabeledNull(0))}})
        b = Instance(t, {"O": {(constant("b"), LabeledNull(0))}})
        store = merge_result_buffers(
            t,
            [pack_instance(a), pack_instance(b)],
            shard_maxima=[-1, -1],
            first_fresh_label=0,
            dedupe=True,
        )
        rows = Instance._from_store(t, store).rows("O")
        assert len(rows) == 2
        # the two shard-local 0-nulls must not collide after the merge
        nulls = {v for row in rows for v in row if type(v) is LabeledNull}
        assert len(nulls) == 2
