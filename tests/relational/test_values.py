"""Tests for the value domain: constants, labelled nulls, Skolem values."""

import pytest

from repro.relational.values import (
    Constant,
    LabeledNull,
    NullFactory,
    SkolemValue,
    constant,
    constants,
    is_constant,
    is_null,
    max_null_label,
)


class TestConstant:
    def test_equality_by_payload(self):
        assert Constant("Alice") == Constant("Alice")
        assert Constant("Alice") != Constant("Bob")

    def test_distinct_from_null_with_same_payload(self):
        assert Constant(3) != LabeledNull(3)

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_repr_shows_payload(self):
        assert repr(Constant("x")) == "'x'"


class TestLabeledNull:
    def test_identity_by_label(self):
        assert LabeledNull(0) == LabeledNull(0)
        assert LabeledNull(0) != LabeledNull(1)

    def test_repr_uses_bottom(self):
        assert repr(LabeledNull(7)) == "⊥7"


class TestSkolemValue:
    def test_equality_structural(self):
        a = SkolemValue("f", (Constant(1),))
        b = SkolemValue("f", (Constant(1),))
        assert a == b

    def test_distinct_functions_differ(self):
        assert SkolemValue("f", ()) != SkolemValue("g", ())

    def test_nested_arguments(self):
        inner = SkolemValue("g", (Constant("a"),))
        outer = SkolemValue("f", (inner,))
        assert outer.arguments[0] == inner

    def test_repr(self):
        assert repr(SkolemValue("f", (Constant(1),))) == "f(1)"


class TestPredicates:
    def test_is_constant(self):
        assert is_constant(Constant(1))
        assert not is_constant(LabeledNull(0))
        assert not is_constant(SkolemValue("f", ()))

    def test_is_null_covers_both_null_kinds(self):
        assert is_null(LabeledNull(0))
        assert is_null(SkolemValue("f", ()))
        assert not is_null(Constant(1))


class TestConstantHelpers:
    def test_constant_wraps_raw(self):
        assert constant(5) == Constant(5)

    def test_constant_idempotent(self):
        c = Constant("x")
        assert constant(c) is c

    def test_constant_rejects_nulls(self):
        with pytest.raises(TypeError):
            constant(LabeledNull(0))

    def test_constants_wraps_each(self):
        assert constants(["a", 1]) == (Constant("a"), Constant(1))


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        factory = NullFactory()
        assert factory.fresh() != factory.fresh()

    def test_fresh_many(self):
        factory = NullFactory()
        batch = factory.fresh_many(5)
        assert len(set(batch)) == 5

    def test_start_offset(self):
        factory = NullFactory(start=10)
        assert factory.fresh() == LabeledNull(10)

    def test_reserve_through_skips_labels(self):
        factory = NullFactory()
        factory.reserve_through(4)
        assert factory.fresh().label == 5

    def test_reserve_through_never_rewinds(self):
        factory = NullFactory(start=100)
        factory.reserve_through(4)
        assert factory.fresh().label >= 100


class TestMaxNullLabel:
    def test_empty_is_minus_one(self):
        assert max_null_label([]) == -1

    def test_ignores_constants_and_skolems(self):
        values = [Constant(99), SkolemValue("f", ()), LabeledNull(3)]
        assert max_null_label(values) == 3
