"""Tests for homomorphisms, universality, cores and isomorphism."""

import pytest

from repro.relational import (
    Fact,
    Instance,
    LabeledNull,
    constant,
    core,
    find_homomorphism,
    homomorphically_equivalent,
    instance,
    is_core,
    is_homomorphic,
    is_universal_for,
    isomorphic,
    relation,
    schema,
)
from repro.relational.homomorphism import apply_assignment


@pytest.fixture
def mgr_schema():
    return schema(relation("Manager", "emp", "mgr"))


def mk(mgr_schema, rows):
    return Instance(mgr_schema, {"Manager": [tuple(r) for r in rows]})


@pytest.fixture
def jstar(mgr_schema):
    """Example 1's canonical universal solution J*."""
    return mk(
        mgr_schema,
        [
            (constant("Alice"), LabeledNull(1)),
            (constant("Bob"), LabeledNull(2)),
        ],
    )


@pytest.fixture
def j1(mgr_schema):
    return mk(
        mgr_schema,
        [
            (constant("Alice"), constant("Alice")),
            (constant("Bob"), constant("Alice")),
        ],
    )


class TestFindHomomorphism:
    def test_nulls_map_anywhere(self, jstar, j1):
        hom = find_homomorphism(jstar, j1)
        assert hom is not None
        assert hom[LabeledNull(1)] == constant("Alice")

    def test_constants_are_rigid(self, j1, jstar):
        assert find_homomorphism(j1, jstar) is None

    def test_identity_always_exists(self, jstar):
        assert is_homomorphic(jstar, jstar)

    def test_seed_pins_assignment(self, jstar, j1):
        hom = find_homomorphism(jstar, j1, seed={LabeledNull(1): constant("Alice")})
        assert hom is not None

    def test_inconsistent_seed_fails(self, jstar, j1):
        hom = find_homomorphism(jstar, j1, seed={LabeledNull(1): constant("Zed")})
        assert hom is None

    def test_empty_source_maps_everywhere(self, mgr_schema, j1):
        empty = mk(mgr_schema, [])
        assert is_homomorphic(empty, j1)

    def test_into_empty_target_fails(self, mgr_schema, j1):
        empty = mk(mgr_schema, [])
        assert not is_homomorphic(j1, empty)


class TestUniversality:
    def test_jstar_universal_for_ground_solutions(self, jstar, j1, mgr_schema):
        j2 = mk(
            mgr_schema,
            [
                (constant("Alice"), constant("Bob")),
                (constant("Bob"), constant("Ted")),
            ],
        )
        assert is_universal_for(jstar, [j1, j2, jstar])

    def test_ground_solution_not_universal(self, j1, jstar):
        assert not is_universal_for(j1, [jstar])

    def test_homomorphic_equivalence(self, jstar, mgr_schema):
        relabeled = mk(
            mgr_schema,
            [
                (constant("Alice"), LabeledNull(8)),
                (constant("Bob"), LabeledNull(9)),
            ],
        )
        assert homomorphically_equivalent(jstar, relabeled)

    def test_non_equivalence(self, jstar, j1):
        assert not homomorphically_equivalent(jstar, j1)


class TestCore:
    def test_redundant_null_fact_is_folded(self, mgr_schema):
        redundant = mk(
            mgr_schema,
            [
                (constant("Alice"), constant("Bob")),
                (constant("Alice"), LabeledNull(0)),
            ],
        )
        minimized = core(redundant)
        assert minimized.size() == 1
        assert minimized.nulls() == set()

    def test_core_is_equivalent_to_original(self, mgr_schema):
        redundant = mk(
            mgr_schema,
            [
                (constant("Alice"), constant("Bob")),
                (constant("Alice"), LabeledNull(0)),
            ],
        )
        assert homomorphically_equivalent(redundant, core(redundant))

    def test_jstar_is_its_own_core(self, jstar):
        assert is_core(jstar)
        assert core(jstar) == jstar

    def test_ground_instance_is_core(self, j1):
        assert is_core(j1)

    def test_core_idempotent(self, mgr_schema):
        inst = mk(
            mgr_schema,
            [
                (constant("A"), LabeledNull(0)),
                (constant("A"), LabeledNull(1)),
            ],
        )
        once = core(inst)
        assert core(once) == once
        assert once.size() == 1


class TestIsomorphism:
    def test_null_relabeling_is_isomorphism(self, jstar, mgr_schema):
        relabeled = mk(
            mgr_schema,
            [
                (constant("Alice"), LabeledNull(5)),
                (constant("Bob"), LabeledNull(6)),
            ],
        )
        assert isomorphic(jstar, relabeled)

    def test_different_sizes_not_isomorphic(self, jstar, mgr_schema):
        small = mk(mgr_schema, [(constant("Alice"), LabeledNull(1))])
        assert not isomorphic(jstar, small)

    def test_equivalent_but_not_isomorphic(self, mgr_schema):
        one = mk(mgr_schema, [(constant("A"), LabeledNull(0))])
        two = mk(
            mgr_schema,
            [
                (constant("A"), LabeledNull(0)),
                (constant("A"), LabeledNull(1)),
            ],
        )
        assert homomorphically_equivalent(one, two)
        assert not isomorphic(one, two)


class TestApplyAssignment:
    def test_apply(self, jstar):
        image = apply_assignment(jstar, {LabeledNull(1): constant("X")})
        assert Fact("Manager", (constant("Alice"), constant("X"))) in image
