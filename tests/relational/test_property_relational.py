"""Property-based tests (hypothesis) for the relational substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Fact,
    Instance,
    LabeledNull,
    constant,
    core,
    dumps_instance,
    homomorphically_equivalent,
    is_homomorphic,
    loads_instance,
    relation,
    schema,
)
from repro.relational.algebra import Join, Project, Scan, Select, eq

SCHEMA = schema(relation("R", "a", "b"), relation("S", "b", "c"))

values = st.one_of(
    st.sampled_from([constant(x) for x in ["u", "v", "w", 1, 2]]),
    st.builds(LabeledNull, st.integers(min_value=0, max_value=3)),
)


@st.composite
def instances(draw):
    r_rows = draw(st.lists(st.tuples(values, values), max_size=6))
    s_rows = draw(st.lists(st.tuples(values, values), max_size=6))
    facts = [Fact("R", row) for row in r_rows] + [Fact("S", row) for row in s_rows]
    return Instance(SCHEMA, facts)


@settings(max_examples=60, deadline=None)
@given(instances())
def test_serialization_round_trip(inst):
    assert loads_instance(dumps_instance(inst)) == inst


@settings(max_examples=40, deadline=None)
@given(instances())
def test_homomorphism_is_reflexive(inst):
    assert is_homomorphic(inst, inst)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_sub_instance_maps_into_superinstance(inst):
    facts = list(inst.facts())
    sub = Instance(SCHEMA, facts[: len(facts) // 2])
    assert is_homomorphic(sub, inst)


@settings(max_examples=25, deadline=None)
@given(instances())
def test_core_is_equivalent_and_idempotent(inst):
    minimized = core(inst)
    assert homomorphically_equivalent(inst, minimized)
    assert core(minimized) == minimized
    assert minimized.size() <= inst.size()


@settings(max_examples=40, deadline=None)
@given(instances())
def test_join_algorithms_agree(inst):
    hash_join = Join(Scan(SCHEMA["R"]), Scan(SCHEMA["S"]), "hash")
    loop_join = Join(Scan(SCHEMA["R"]), Scan(SCHEMA["S"]), "nested_loop")
    assert hash_join.evaluate(inst) == loop_join.evaluate(inst)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_select_then_project_commutes_when_column_retained(inst):
    """σ then π equals π then σ when the predicate's column survives."""
    first = Project(Select(Scan(SCHEMA["R"]), eq("a", "u")), ("a",))
    second = Select(Project(Scan(SCHEMA["R"]), ("a",)), eq("a", "u"))
    assert first.evaluate(inst) == second.evaluate(inst)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_project_is_idempotent(inst):
    once = Project(Scan(SCHEMA["R"]), ("a",))
    twice = Project(once, ("a",))
    assert once.evaluate(inst) == twice.evaluate(inst)


@settings(max_examples=40, deadline=None)
@given(instances(), instances())
def test_union_of_facts_preserves_homomorphisms(left, right):
    combined = left.union(right)
    assert is_homomorphic(left, combined) or left.nulls()
    # For null-free instances the containment homomorphism always exists.
    if not left.nulls():
        assert is_homomorphic(left, combined)
