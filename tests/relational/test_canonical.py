"""Tests for canonical forms of instances with nulls."""

import pytest

from repro.relational import (
    Fact,
    Instance,
    LabeledNull,
    SkolemValue,
    constant,
    homomorphically_equivalent,
    relation,
    schema,
)
from repro.relational.canonical import canonical_form, canonically_equal

MGR = relation("Manager", "emp", "mgr")
S = schema(MGR)


def inst(*rows):
    return Instance(S, [Fact("Manager", row) for row in rows])


class TestCanonicalForm:
    def test_ground_instance_is_its_own_form(self):
        ground = inst((constant("a"), constant("b")))
        result = canonical_form(ground)
        assert result.exact
        assert result.instance == ground

    def test_null_relabeling_is_stable(self):
        one = inst(
            (constant("a"), LabeledNull(42)),
            (constant("b"), LabeledNull(17)),
        )
        two = inst(
            (constant("a"), LabeledNull(5)),
            (constant("b"), LabeledNull(99)),
        )
        assert canonical_form(one).instance.same_facts(
            canonical_form(two).instance
        )

    def test_labels_start_at_zero(self):
        one = inst((constant("a"), LabeledNull(42)))
        form = canonical_form(one).instance
        assert form.nulls() == {LabeledNull(0)}

    def test_minimization_folds_redundancy(self):
        redundant = inst(
            (constant("a"), constant("m")),
            (constant("a"), LabeledNull(0)),
        )
        form = canonical_form(redundant).instance
        assert form.size() == 1
        assert form.is_ground()

    def test_without_minimize_keeps_facts(self):
        redundant = inst(
            (constant("a"), constant("m")),
            (constant("a"), LabeledNull(0)),
        )
        form = canonical_form(redundant, minimize=False).instance
        assert form.size() == 2

    def test_skolems_are_relabeled_to_nulls(self):
        skolemized = inst(
            (constant("a"), SkolemValue("f", (constant("a"),))),
        )
        form = canonical_form(skolemized).instance
        assert form.nulls() == {LabeledNull(0)}

    def test_symmetric_ties_resolved_exactly(self):
        # Two structurally interchangeable nulls: canonical form must not
        # depend on their original labels.
        one = inst(
            (constant("a"), LabeledNull(1)),
            (constant("b"), LabeledNull(2)),
        )
        two = inst(
            (constant("a"), LabeledNull(2)),
            (constant("b"), LabeledNull(1)),
        )
        f1, f2 = canonical_form(one), canonical_form(two)
        assert f1.exact and f2.exact
        assert f1.instance.same_facts(f2.instance)


class TestCanonicallyEqual:
    def test_chase_vs_lens_outputs(self):
        """The intended use: comparing two exchange engines' outputs."""
        from repro.compiler import ExchangeEngine
        from repro.mapping import universal_solution
        from repro.workloads import emp_manager_scenario

        scenario = emp_manager_scenario()
        chased = universal_solution(scenario.mapping, scenario.sample)
        compiled = ExchangeEngine.compile(scenario.mapping).exchange(
            scenario.sample
        )
        assert canonically_equal(chased, compiled)
        assert homomorphically_equivalent(chased, compiled)

    def test_inequivalent_instances_differ(self):
        one = inst((constant("a"), LabeledNull(0)))
        other = inst((constant("zzz"), LabeledNull(0)))
        assert not canonically_equal(one, other)

    def test_agrees_with_hom_equivalence_on_samples(self):
        samples = [
            inst((constant("a"), LabeledNull(0))),
            inst((constant("a"), LabeledNull(7))),
            inst((constant("a"), LabeledNull(0)), (constant("a"), LabeledNull(1))),
            inst((constant("a"), constant("b"))),
        ]
        for left in samples:
            for right in samples:
                assert canonically_equal(left, right) == (
                    homomorphically_equivalent(left, right)
                )
