"""Property-based tests (hypothesis): the columnar engine is invisible.

The tentpole contract of the columnar refactor is behavioral identity —
an instance with (or decoded from) a column store is indistinguishable
from one built out of plain fact sets.  Random instances drive the
flat-buffer codec round-trips across the derivation API
(``with_facts`` / ``without_facts`` / ``map_values`` / ``restrict``),
and random mappings check the chase reaches ``canonically_equal``
solutions whether or not a store is attached (the id-space fast path
vs the value-space engine).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import universal_solution
from repro.relational import Fact, Instance, LabeledNull, constant, relation, schema
from repro.relational.canonical import canonically_equal
from repro.relational.columnar import (
    pack_instance,
    unpack_instance,
    unpack_instance_lazy,
)
from repro.workloads import random_exchange_setting

SCHEMA = schema(relation("R", "a", "b"), relation("S", "b", "c"))

values = st.one_of(
    st.sampled_from([constant(x) for x in ["u", "v", "w", 1, 2]]),
    st.builds(LabeledNull, st.integers(min_value=0, max_value=3)),
)


@st.composite
def instances(draw):
    r_rows = draw(st.lists(st.tuples(values, values), max_size=6))
    s_rows = draw(st.lists(st.tuples(values, values), max_size=6))
    facts = [Fact("R", row) for row in r_rows] + [Fact("S", row) for row in s_rows]
    return Instance(SCHEMA, facts)


def assert_round_trips(inst):
    """Eager and lazy decode of the packed buffer both equal *inst*."""
    buffer = pack_instance(inst)
    assert unpack_instance(buffer) == inst
    assert unpack_instance_lazy(buffer) == inst


@settings(max_examples=50, deadline=None)
@given(instances())
def test_codec_round_trip(inst):
    assert_round_trips(inst)


@settings(max_examples=40, deadline=None)
@given(instances(), instances())
def test_with_facts_round_trips(inst, extra):
    assert_round_trips(inst.with_facts(extra.facts()))


@settings(max_examples=40, deadline=None)
@given(instances())
def test_without_facts_round_trips(inst):
    facts = list(inst.facts())
    assert_round_trips(inst.without_facts(facts[: len(facts) // 2]))


@settings(max_examples=40, deadline=None)
@given(instances())
def test_restrict_round_trips(inst):
    assert_round_trips(inst.restrict(["R"]))


@settings(max_examples=40, deadline=None)
@given(instances())
def test_map_values_round_trips(inst):
    renaming = {LabeledNull(i): LabeledNull(i + 10) for i in range(4)}
    renaming[constant("u")] = constant("z")
    assert_round_trips(inst.map_values(renaming))


@settings(max_examples=40, deadline=None)
@given(instances())
def test_store_attachment_is_invisible(inst):
    """Equality, size and fingerprint ignore whether a store is attached."""
    plain = Instance(SCHEMA, list(inst.facts()))
    stored = Instance(SCHEMA, list(inst.facts()))
    stored.columnar()  # attach
    assert plain == stored
    assert plain.size() == stored.size()
    assert plain.fingerprint() == stored.fingerprint()


seeds = st.integers(min_value=0, max_value=200)


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_chase_agrees_with_and_without_store(seed):
    mapping, inst = random_exchange_setting(
        seed, n_source_relations=2, n_target_relations=2, n_tgds=2,
        rows_per_relation=5,
    )
    plain = Instance(mapping.source, list(inst.facts()))
    stored = Instance(mapping.source, list(inst.facts()))
    stored.columnar()  # the id-space fast path engages when eligible
    assert canonically_equal(
        universal_solution(mapping, plain),
        universal_solution(mapping, stored),
    )


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_chase_agrees_on_lazily_decoded_shards(seed):
    # the worker path: a source decoded lazily from a shipped buffer
    mapping, inst = random_exchange_setting(
        seed, n_source_relations=2, n_target_relations=2, n_tgds=2,
        rows_per_relation=5,
    )
    shipped = unpack_instance_lazy(pack_instance(inst))
    assert canonically_equal(
        universal_solution(mapping, inst),
        universal_solution(mapping, shipped),
    )
