"""The columnar id codec bridging instances and the SQL backends."""

import pytest

from repro.relational import instance, relation, schema
from repro.relational.schema import (
    Attribute,
    AttributeType,
    RelationSchema,
    Schema,
)
from repro.relational.serialization import (
    NULL_ID_BASE,
    ValueInterner,
    encode_instance,
    encode_rows,
    instance_from_id_rows,
)
from repro.relational.values import (
    Constant,
    LabeledNull,
    NullFactory,
    SkolemValue,
)


class TestValueInterner:
    def test_constants_get_dense_small_ids(self):
        interner = ValueInterner()
        a = interner.id_of(Constant("a"))
        b = interner.id_of(Constant("b"))
        assert (a, b) == (0, 1)
        assert interner.id_of(Constant("a")) == a  # idempotent

    def test_nulls_live_above_the_base(self):
        interner = ValueInterner()
        ident = interner.id_of(LabeledNull(7))
        assert ident >= NULL_ID_BASE
        assert interner.id_of(Constant("a")) < NULL_ID_BASE

    def test_skolem_values_count_as_nulls(self):
        interner = ValueInterner()
        sk = SkolemValue("f", (Constant("x"),))
        assert interner.id_of(sk) >= NULL_ID_BASE
        assert interner.null_count == 1

    def test_round_trip_identity(self):
        interner = ValueInterner()
        values = [Constant("a"), LabeledNull(0), Constant(3), LabeledNull(1)]
        assert [interner.value_of(interner.id_of(v)) for v in values] == values

    def test_unknown_id_raises(self):
        interner = ValueInterner()
        with pytest.raises(KeyError):
            interner.value_of(5)
        with pytest.raises(KeyError):
            interner.value_of(NULL_ID_BASE + 5)

    def test_allocate_fresh_nulls_is_contiguous_and_decodable(self):
        interner = ValueInterner()
        interner.id_of(LabeledNull(0))
        factory = NullFactory()
        factory.fresh()  # label 0 is taken by the source null
        first = interner.allocate_fresh_nulls(3, factory)
        assert first == NULL_ID_BASE + 1
        minted = [interner.value_of(first + k) for k in range(3)]
        assert len(set(minted)) == 3
        assert all(isinstance(n, LabeledNull) for n in minted)
        assert LabeledNull(0) not in minted
        assert interner.null_count == 4

    def test_has_interned_nulls(self):
        interner = ValueInterner()
        interner.id_of(Constant("a"))
        assert not interner.has_interned_nulls()
        interner.id_of(LabeledNull(1))
        assert interner.has_interned_nulls()


class TestEncodeDecode:
    def test_encode_rows_matches_executemany_shape(self):
        interner = ValueInterner()
        rows = encode_rows([[Constant("a"), Constant("b")]], interner)
        assert rows == [(0, 1)]

    def test_instance_round_trip(self):
        s = schema(relation("R", "a", "b"), relation("S", "a"))
        inst = instance(s, {"R": [["x", "y"], ["x", "x"]], "S": [["z"]]})
        interner = ValueInterner()
        encoded = encode_instance(inst, interner)
        decoded = instance_from_id_rows(s, encoded, interner)
        assert decoded.same_facts(inst)

    def test_nulls_survive_the_round_trip_identically(self):
        s = schema(relation("R", "a"))
        inst = instance(s, {"R": [[LabeledNull(4)], ["c"]]})
        interner = ValueInterner()
        decoded = instance_from_id_rows(
            s, encode_instance(inst, interner), interner
        )
        assert decoded.rows("R") == inst.rows("R")

    def test_untyped_schema_takes_the_fast_path(self):
        s = schema(relation("R", "a"))
        interner = ValueInterner()
        ident = interner.id_of(Constant("v"))
        decoded = instance_from_id_rows(s, {"R": [(ident,)]}, interner)
        assert decoded.rows("R") == frozenset({(Constant("v"),)})

    def test_typed_schema_still_validates(self):
        s = Schema([RelationSchema("R", [Attribute("a", AttributeType.INTEGER)])])
        interner = ValueInterner()
        bad = interner.id_of(Constant("not-an-int"))
        with pytest.raises(Exception):
            instance_from_id_rows(s, {"R": [(bad,)]}, interner)

    def test_missing_relation_decodes_empty(self):
        s = schema(relation("R", "a"), relation("S", "a"))
        interner = ValueInterner()
        decoded = instance_from_id_rows(s, {}, interner)
        assert decoded.size() == 0
