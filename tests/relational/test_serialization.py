"""Tests for JSON round-tripping of values, schemas and instances."""

import pytest

from repro.relational import (
    Constant,
    Fact,
    Instance,
    LabeledNull,
    SkolemValue,
    dumps_instance,
    dumps_schema,
    instance,
    loads_instance,
    loads_schema,
    relation,
    schema,
)
from repro.relational.schema import Attribute, AttributeType, RelationSchema, Schema
from repro.relational.serialization import value_from_json, value_to_json


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            Constant("Alice"),
            Constant(42),
            LabeledNull(7),
            SkolemValue("f", (Constant(1), LabeledNull(2))),
            SkolemValue("g", (SkolemValue("f", ()),)),
        ],
    )
    def test_round_trip(self, value):
        assert value_from_json(value_to_json(value)) == value

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            value_from_json({"bogus": 1})
        with pytest.raises(ValueError):
            value_from_json("not a dict")


class TestSchemaRoundTrip:
    def test_untyped(self):
        s = schema(relation("R", "a", "b"))
        assert loads_schema(dumps_schema(s)) == s

    def test_typed(self):
        s = Schema(
            [RelationSchema("R", [Attribute("a", AttributeType.INTEGER)])]
        )
        restored = loads_schema(dumps_schema(s))
        assert restored["R"].attributes[0].type is AttributeType.INTEGER


class TestInstanceRoundTrip:
    def test_ground(self):
        s = schema(relation("R", "a", "b"))
        inst = instance(s, {"R": [[1, "x"], [2, "y"]]})
        assert loads_instance(dumps_instance(inst)) == inst

    def test_with_nulls_and_skolems(self):
        s = schema(relation("R", "a"))
        inst = Instance(
            s,
            [
                Fact("R", (LabeledNull(0),)),
                Fact("R", (SkolemValue("f", (Constant("x"),)),)),
            ],
        )
        assert loads_instance(dumps_instance(inst)) == inst

    def test_serialization_is_deterministic(self):
        s = schema(relation("R", "a"))
        a = instance(s, {"R": [[2], [1]]})
        b = instance(s, {"R": [[1], [2]]})
        assert dumps_instance(a) == dumps_instance(b)
