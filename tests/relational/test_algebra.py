"""Tests for the relational algebra: predicates and expression evaluation."""

import pytest

from repro.relational import constant, instance, relation, schema
from repro.relational.algebra import (
    Comparison,
    ConstantColumn,
    Difference,
    Extend,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    TruePredicate,
    Union,
    col_eq,
    eq,
    evaluate_to_instance,
    natural_join_all,
)
from repro.relational.instance import Fact, Instance
from repro.relational.values import LabeledNull


@pytest.fixture
def db(emp_dept_schema, emp_dept_instance):
    return emp_dept_schema, emp_dept_instance


class TestPredicates:
    def test_eq_constant(self, db):
        s, inst = db
        pred = eq("dept", "d1")
        rel = s["Emp"]
        assert pred.evaluate(rel, (constant("ann"), constant("d1")))
        assert not pred.evaluate(rel, (constant("bob"), constant("d2")))

    def test_column_comparison(self, db):
        s, _ = db
        pred = col_eq("name", "dept")
        rel = s["Emp"]
        assert pred.evaluate(rel, (constant("d1"), constant("d1")))

    def test_ordering_comparison_on_nulls_is_false(self, db):
        s, _ = db
        pred = Comparison("name", "<", "zzz")
        assert not pred.evaluate(s["Emp"], (LabeledNull(0), constant("d1")))

    def test_inequality_on_null(self, db):
        s, _ = db
        pred = Comparison("name", "!=", "x")
        assert pred.evaluate(s["Emp"], (LabeledNull(0), constant("d1")))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("a", "~", 1)

    def test_boolean_combinators(self, db):
        s, _ = db
        rel = s["Emp"]
        row = (constant("ann"), constant("d1"))
        both = eq("name", "ann") & eq("dept", "d1")
        either = eq("name", "zz") | eq("dept", "d1")
        negated = ~eq("name", "ann")
        assert both.evaluate(rel, row)
        assert either.evaluate(rel, row)
        assert not negated.evaluate(rel, row)

    def test_constant_column_predicate(self, db):
        s, _ = db
        pred = ConstantColumn("name")
        assert pred.evaluate(s["Emp"], (constant("ann"), constant("d1")))
        assert not pred.evaluate(s["Emp"], (LabeledNull(0), constant("d1")))

    def test_columns_reported(self):
        pred = eq("a", 1) & col_eq("b", "c")
        assert pred.columns() == {"a", "b", "c"}

    def test_true_predicate(self, db):
        s, _ = db
        assert TruePredicate().evaluate(s["Emp"], (constant(1), constant(2)))


class TestScan:
    def test_plain_scan(self, db):
        s, inst = db
        assert len(Scan(s["Emp"]).evaluate(inst)) == 3

    def test_renaming_scan_schema(self, db):
        s, _ = db
        out = Scan(s["Emp"], ("x", "y")).output_schema()
        assert out.attribute_names == ("x", "y")

    def test_renaming_arity_mismatch(self, db):
        s, _ = db
        with pytest.raises(ValueError):
            Scan(s["Emp"], ("x",)).output_schema()


class TestSelectProject:
    def test_select_filters(self, db):
        s, inst = db
        expr = Select(Scan(s["Emp"]), eq("dept", "d1"))
        assert len(expr.evaluate(inst)) == 2

    def test_project_collapses_duplicates(self, db):
        s, inst = db
        expr = Project(Scan(s["Emp"]), ("dept",))
        assert expr.evaluate(inst) == {(constant("d1"),), (constant("d2"),)}

    def test_project_reorders(self, db):
        s, inst = db
        expr = Project(Scan(s["Emp"]), ("dept", "name"))
        assert (constant("d1"), constant("ann")) in expr.evaluate(inst)


class TestJoin:
    @pytest.mark.parametrize("algorithm", ["hash", "nested_loop"])
    def test_natural_join(self, db, algorithm):
        s, inst = db
        expr = Join(Scan(s["Emp"]), Scan(s["Dept"]), algorithm=algorithm)
        rows = expr.evaluate(inst)
        assert (constant("ann"), constant("d1"), constant("hana")) in rows
        assert len(rows) == 3

    def test_join_algorithms_agree(self, db):
        s, inst = db
        hash_rows = Join(Scan(s["Emp"]), Scan(s["Dept"]), "hash").evaluate(inst)
        loop_rows = Join(Scan(s["Emp"]), Scan(s["Dept"]), "nested_loop").evaluate(inst)
        assert hash_rows == loop_rows

    def test_join_without_shared_columns_is_product(self):
        s = schema(relation("A", "a"), relation("B", "b"))
        inst = instance(s, {"A": [[1], [2]], "B": [["x"]]})
        rows = Join(Scan(s["A"]), Scan(s["B"])).evaluate(inst)
        assert len(rows) == 2

    def test_join_output_schema(self, db):
        s, _ = db
        out = Join(Scan(s["Emp"]), Scan(s["Dept"])).output_schema()
        assert out.attribute_names == ("name", "dept", "head")

    def test_unknown_algorithm_rejected(self, db):
        s, _ = db
        with pytest.raises(ValueError):
            Join(Scan(s["Emp"]), Scan(s["Dept"]), algorithm="sort_merge")

    def test_natural_join_all_left_deep(self, db):
        s, inst = db
        expr = natural_join_all([Scan(s["Emp"]), Scan(s["Dept"])])
        assert len(expr.evaluate(inst)) == 3

    def test_natural_join_all_empty_rejected(self):
        with pytest.raises(ValueError):
            natural_join_all([])


class TestSetOperators:
    def test_union(self):
        s = schema(relation("A", "x"), relation("B", "x"))
        inst = instance(s, {"A": [[1]], "B": [[2]]})
        rows = Union(Scan(s["A"]), Scan(s["B"])).evaluate(inst)
        assert rows == {(constant(1),), (constant(2),)}

    def test_union_incompatible_raises(self, db):
        s, inst = db
        with pytest.raises(ValueError):
            Union(Scan(s["Emp"]), Scan(s["Dept"])).evaluate(inst)

    def test_difference(self):
        s = schema(relation("A", "x"), relation("B", "x"))
        inst = instance(s, {"A": [[1], [2]], "B": [[2]]})
        rows = Difference(Scan(s["A"]), Scan(s["B"])).evaluate(inst)
        assert rows == {(constant(1),)}


class TestRenameExtend:
    def test_rename_columns(self, db):
        s, inst = db
        expr = Rename(Scan(s["Emp"]), {"name": "who"})
        assert expr.output_schema().attribute_names == ("who", "dept")
        assert len(expr.evaluate(inst)) == 3

    def test_extend_appends_value(self, db):
        s, inst = db
        expr = Extend(Scan(s["Dept"]), "tag", constant("v"))
        rows = expr.evaluate(inst)
        assert all(row[-1] == constant("v") for row in rows)

    def test_extend_duplicate_column_rejected(self, db):
        s, _ = db
        with pytest.raises(ValueError):
            Extend(Scan(s["Dept"]), "dept", constant(1)).output_schema()


class TestEvaluateToInstance:
    def test_wraps_result(self, db):
        s, inst = db
        out = evaluate_to_instance(Project(Scan(s["Emp"]), ("name",)), inst, "Names")
        assert out.schema["Names"].attribute_names == ("name",)
        assert out.size() == 3
