"""Constant interning: repeated scalars share one wrapper object."""

from repro.relational import instance, relation, schema
from repro.relational.values import Constant, constant, intern_info


class TestInterning:
    def test_repeated_scalars_share_wrapper(self):
        assert constant("alpha") is constant("alpha")
        assert constant(17) is constant(17)

    def test_equal_scalars_of_different_type_stay_distinct(self):
        assert constant(1) is not constant(True)
        assert constant(1) is not constant(1.0)
        # ...while equality still follows the wrapped values
        assert constant(1) == Constant(1)

    def test_idempotent_on_constants(self):
        wrapped = constant("beta")
        assert constant(wrapped) is wrapped

    def test_rows_in_distinct_instances_share_values(self):
        s = schema(relation("R", "x"))
        left = instance(s, {"R": [["shared"]]})
        right = instance(s, {"R": [["shared"]]})
        (lv,) = next(iter(left.rows("R")))
        (rv,) = next(iter(right.rows("R")))
        assert lv is rv

    def test_intern_info_reports_bounded_cache(self):
        constant("intern-info-probe")
        cached, cap = intern_info()
        assert 0 < cached <= cap

    def test_unhashable_scalar_falls_back(self):
        # not storable in the cache, but still wrapped without raising
        wrapped = constant((1, [2]))  # tuple containing a list is unhashable
        assert isinstance(wrapped, Constant)
