"""Tests for instances, facts and the builder."""

import pytest

from repro.relational import (
    Fact,
    Instance,
    InstanceBuilder,
    LabeledNull,
    constant,
    empty_instance,
    instance,
    relation,
    schema,
)
from repro.relational.schema import Attribute, AttributeType, RelationSchema, Schema


@pytest.fixture
def rs():
    return schema(relation("R", "a", "b"), relation("S", "c"))


class TestConstruction:
    def test_raw_scalars_are_coerced(self, rs):
        inst = instance(rs, {"R": [[1, "x"]]})
        assert Fact("R", (constant(1), constant("x"))) in inst

    def test_unknown_relation_rejected(self, rs):
        with pytest.raises(KeyError):
            instance(rs, {"T": [[1]]})

    def test_arity_mismatch_rejected(self, rs):
        with pytest.raises(ValueError, match="arity"):
            instance(rs, {"S": [[1, 2]]})

    def test_typed_attribute_enforced(self):
        typed = Schema(
            [RelationSchema("R", [Attribute("a", AttributeType.INTEGER)])]
        )
        with pytest.raises(TypeError):
            instance(typed, {"R": [["not an int"]]})

    def test_nulls_are_well_typed_everywhere(self):
        typed = Schema(
            [RelationSchema("R", [Attribute("a", AttributeType.INTEGER)])]
        )
        inst = Instance(typed, [Fact("R", (LabeledNull(0),))])
        assert inst.size() == 1

    def test_set_semantics_deduplicates(self, rs):
        inst = instance(rs, {"S": [[1], [1]]})
        assert inst.size() == 1


class TestAccessors:
    def test_rows_of_unknown_relation_raises(self, rs):
        with pytest.raises(KeyError):
            empty_instance(rs).rows("T")

    def test_facts_are_sorted_deterministically(self, rs):
        inst = instance(rs, {"R": [[2, "b"], [1, "a"]], "S": [[3]]})
        reprs = [repr(f) for f in inst.facts()]
        assert reprs == sorted(reprs, key=lambda r: (r.split("(")[0], r))

    def test_nulls_and_constants(self, rs):
        inst = Instance(rs, [Fact("S", (LabeledNull(1),)), Fact("S", (constant(5),))])
        assert inst.nulls() == {LabeledNull(1)}
        assert inst.constants() == {constant(5)}

    def test_is_ground(self, rs):
        assert instance(rs, {"S": [[1]]}).is_ground()
        assert not Instance(rs, [Fact("S", (LabeledNull(0),))]).is_ground()

    def test_active_domain(self, rs):
        inst = instance(rs, {"R": [[1, 2]]})
        assert inst.active_domain() == {constant(1), constant(2)}


class TestAlgebraicOperations:
    def test_with_facts(self, rs):
        inst = empty_instance(rs).with_facts([Fact("S", (constant(1),))])
        assert inst.size() == 1

    def test_without_facts_ignores_missing(self, rs):
        inst = instance(rs, {"S": [[1]]})
        out = inst.without_facts([Fact("S", (constant(2),))])
        assert out.same_facts(inst)

    def test_restrict_shrinks_schema(self, rs):
        inst = instance(rs, {"R": [[1, 2]], "S": [[3]]})
        sub = inst.restrict(["S"])
        assert "R" not in sub.schema
        assert sub.size() == 1

    def test_union_merges_facts(self, rs):
        a = instance(rs, {"S": [[1]]})
        b = instance(rs, {"S": [[2]]})
        assert a.union(b).rows("S") == {(constant(1),), (constant(2),)}

    def test_map_values_substitutes(self, rs):
        inst = Instance(rs, [Fact("S", (LabeledNull(0),))])
        out = inst.map_values({LabeledNull(0): constant("v")})
        assert Fact("S", (constant("v"),)) in out

    def test_cast_revalidates(self, rs):
        inst = instance(rs, {"S": [[1]]})
        target = schema(relation("S", "c"))
        assert inst.cast(target).schema == target


class TestComparison:
    def test_same_facts_ignores_schema_identity(self, rs):
        a = instance(rs, {"S": [[1]]})
        b = instance(schema(relation("S", "c")), {"S": [[1]]})
        assert a.restrict(["S"]).same_facts(b)

    def test_contains_instance(self, rs):
        big = instance(rs, {"S": [[1], [2]]})
        small = instance(rs, {"S": [[1]]})
        assert big.contains_instance(small)
        assert not small.contains_instance(big)

    def test_equality_and_hash(self, rs):
        a = instance(rs, {"S": [[1]]})
        b = instance(rs, {"S": [[1]]})
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_empty(self, rs):
        assert repr(empty_instance(rs)) == "⟨∅⟩"


class TestBuilder:
    def test_add_and_build(self, rs):
        inst = InstanceBuilder(rs).add("S", 1).add("R", 1, "x").build()
        assert inst.size() == 2

    def test_builder_from_base(self, rs):
        base = instance(rs, {"S": [[1]]})
        inst = InstanceBuilder(rs, base).add("S", 2).build()
        assert inst.size() == 2

    def test_builder_chaining_returns_self(self, rs):
        builder = InstanceBuilder(rs)
        assert builder.add("S", 1) is builder


class TestFact:
    def test_is_ground(self):
        assert Fact("R", (constant(1),)).is_ground()
        assert not Fact("R", (LabeledNull(0),)).is_ground()

    def test_arity(self):
        assert Fact("R", (constant(1), constant(2))).arity == 2
