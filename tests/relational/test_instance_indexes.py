"""Hash indexes on instances: lazy build, caching, and inheritance."""

from __future__ import annotations

from repro.relational import Fact, constant, instance, relation, schema


def make():
    s = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
    return instance(
        s,
        {
            "Emp": [["ann", "d1"], ["bob", "d2"], ["cyd", "d1"]],
            "Dept": [["d1", "hana"], ["d2", "hugo"]],
        },
    )


class TestBuild:
    def test_lazy_build_and_probe(self):
        inst = make()
        assert not inst.has_index("Emp", (1,))
        idx = inst.index("Emp", (1,))
        assert inst.has_index("Emp", (1,))
        rows = idx[(constant("d1"),)]
        assert {row[0] for row in rows} == {constant("ann"), constant("cyd")}
        assert (constant("d9"),) not in idx

    def test_cached_between_calls(self):
        inst = make()
        assert inst.index("Emp", (1,)) is inst.index("Emp", (1,))

    def test_multi_column_key(self):
        inst = make()
        idx = inst.index("Emp", (0, 1))
        assert idx[(constant("bob"), constant("d2"))] == [
            (constant("bob"), constant("d2"))
        ]

    def test_empty_relation(self):
        s = schema(relation("R", "a"))
        inst = instance(s, {})
        assert inst.index("R", (0,)) == {}


class TestInheritance:
    def test_with_facts_extends_changed_relation_index(self):
        parent = make()
        parent.index("Emp", (1,))
        child = parent.with_facts([Fact("Emp", (constant("dee"), constant("d1")))])
        # The child index was carried over and extended, not rebuilt.
        assert child.has_index("Emp", (1,))
        assert len(child.index("Emp", (1,))[(constant("d1"),)]) == 3
        # The parent's index is untouched.
        assert len(parent.index("Emp", (1,))[(constant("d1"),)]) == 2

    def test_with_facts_keeps_unchanged_relation_index(self):
        parent = make()
        parent.index("Dept", (0,))
        child = parent.with_facts([Fact("Emp", (constant("dee"), constant("d3")))])
        assert child.has_index("Dept", (0,))
        assert child.index("Dept", (0,)) is parent.index("Dept", (0,))

    def test_with_facts_duplicate_rows_return_self(self):
        parent = make()
        same = parent.with_facts([Fact("Emp", (constant("ann"), constant("d1")))])
        assert same is parent

    def test_without_facts_drops_changed_keeps_rest(self):
        parent = make()
        parent.index("Emp", (1,))
        parent.index("Dept", (0,))
        child = parent.without_facts([Fact("Emp", (constant("ann"), constant("d1")))])
        assert not child.has_index("Emp", (1,))
        assert child.has_index("Dept", (0,))
        # Rebuilding on the child reflects the removal.
        assert len(child.index("Emp", (1,))[(constant("d1"),)]) == 1

    def test_map_values_invalidates(self):
        parent = make()
        parent.index("Emp", (1,))
        child = parent.map_values({constant("d1"): constant("dX")})
        assert not child.has_index("Emp", (1,))
        assert (constant("dX"),) in child.index("Emp", (1,))

    def test_map_values_empty_substitution_is_identity(self):
        parent = make()
        assert parent.map_values({}) is parent

    def test_restrict_keeps_surviving_indexes(self):
        parent = make()
        parent.index("Emp", (1,))
        parent.index("Dept", (0,))
        child = parent.restrict(["Emp"])
        assert child.has_index("Emp", (1,))
        assert not child.has_index("Dept", (0,))
