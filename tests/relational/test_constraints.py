"""Tests for functional dependencies, keys, inclusion deps and FD closure."""

import pytest

from repro.relational import (
    ConstraintSet,
    FunctionalDependency,
    InclusionDependency,
    KeyConstraint,
    attribute_closure,
    implies,
    instance,
    minimal_keys,
    relation,
    schema,
)


@pytest.fixture
def person_db():
    s = schema(relation("P", "id", "city", "zip"))
    good = instance(
        s,
        {"P": [[1, "spr", "49001"], [2, "spr", "49001"], [3, "she", "49002"]]},
    )
    bad = instance(
        s,
        {"P": [[1, "spr", "49001"], [2, "spr", "49009"]]},
    )
    return s, good, bad


class TestFunctionalDependency:
    def test_holds(self, person_db):
        _, good, _ = person_db
        assert FunctionalDependency("P", ("city",), ("zip",)).holds_in(good)

    def test_violated(self, person_db):
        _, _, bad = person_db
        fd = FunctionalDependency("P", ("city",), ("zip",))
        assert not fd.holds_in(bad)
        assert len(fd.violations(bad)) == 1

    def test_lookup_table(self, person_db):
        _, good, _ = person_db
        fd = FunctionalDependency("P", ("city",), ("zip",))
        table = fd.lookup(good)
        from repro.relational import constant

        assert table[(constant("spr"),)] == (constant("49001"),)

    def test_lookup_on_violated_fd_raises(self, person_db):
        _, _, bad = person_db
        with pytest.raises(ValueError):
            FunctionalDependency("P", ("city",), ("zip",)).lookup(bad)

    def test_requires_dependent(self):
        with pytest.raises(ValueError):
            FunctionalDependency("P", ("a",), ())

    def test_empty_determinant_means_constant_column(self, person_db):
        s, good, _ = person_db
        fd = FunctionalDependency("P", (), ("city",))
        assert not fd.holds_in(good)  # two distinct cities


class TestKeyConstraint:
    def test_holds(self, person_db):
        _, good, _ = person_db
        assert KeyConstraint("P", ("id",)).holds_in(good)

    def test_violated(self):
        s = schema(relation("P", "id", "x"))
        dup = instance(s, {"P": [[1, "a"], [1, "b"]]})
        key = KeyConstraint("P", ("id",))
        assert not key.holds_in(dup)
        assert "occurs 2 times" in key.violations(dup)[0]

    def test_as_fd(self, person_db):
        s, _, _ = person_db
        fd = KeyConstraint("P", ("id",)).as_fd(s)
        assert set(fd.dependent) == {"city", "zip"}

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            KeyConstraint("P", ())


class TestInclusionDependency:
    @pytest.fixture
    def fk_db(self):
        s = schema(relation("Emp", "name", "dept"), relation("Dept", "dept"))
        ok = instance(s, {"Emp": [["a", "d1"]], "Dept": [["d1"]]})
        broken = instance(s, {"Emp": [["a", "dX"]], "Dept": [["d1"]]})
        return s, ok, broken

    def test_holds(self, fk_db):
        _, ok, _ = fk_db
        ind = InclusionDependency("Emp", ("dept",), "Dept", ("dept",))
        assert ind.holds_in(ok)

    def test_violated(self, fk_db):
        _, _, broken = fk_db
        ind = InclusionDependency("Emp", ("dept",), "Dept", ("dept",))
        assert not ind.holds_in(broken)
        assert len(ind.violations(broken)) == 1

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InclusionDependency("A", ("x", "y"), "B", ("z",))


class TestConstraintSet:
    def test_conjunction(self, person_db):
        _, good, bad = person_db
        cs = ConstraintSet(
            [
                FunctionalDependency("P", ("city",), ("zip",)),
                KeyConstraint("P", ("id",)),
            ]
        )
        assert cs.holds_in(good)
        assert not cs.holds_in(bad)

    def test_for_relation_filters(self):
        cs = ConstraintSet(
            [
                FunctionalDependency("P", ("a",), ("b",)),
                KeyConstraint("Q", ("x",)),
                InclusionDependency("P", ("a",), "Q", ("x",)),
            ]
        )
        assert len(cs.for_relation("P")) == 2
        assert len(cs.for_relation("Q")) == 2

    def test_functional_dependencies_accessor(self):
        fd = FunctionalDependency("P", ("a",), ("b",))
        cs = ConstraintSet([fd, KeyConstraint("P", ("a",))])
        assert cs.functional_dependencies("P") == [fd]


class TestClosureAndKeys:
    def test_attribute_closure_transitive(self):
        fds = [
            FunctionalDependency("R", ("a",), ("b",)),
            FunctionalDependency("R", ("b",), ("c",)),
        ]
        assert attribute_closure(["a"], fds) == {"a", "b", "c"}

    def test_implies(self):
        fds = [
            FunctionalDependency("R", ("a",), ("b",)),
            FunctionalDependency("R", ("b",), ("c",)),
        ]
        assert implies(fds, FunctionalDependency("R", ("a",), ("c",)))
        assert not implies(fds, FunctionalDependency("R", ("c",), ("a",)))

    def test_implies_scoped_by_relation(self):
        fds = [FunctionalDependency("R", ("a",), ("b",))]
        assert not implies(fds, FunctionalDependency("S", ("a",), ("b",)))

    def test_minimal_keys(self):
        rel = relation("R", "a", "b", "c")
        fds = [FunctionalDependency("R", ("a",), ("b", "c"))]
        assert minimal_keys(rel, fds) == [("a",)]

    def test_minimal_keys_composite(self):
        rel = relation("R", "a", "b", "c")
        fds = [FunctionalDependency("R", ("a", "b"), ("c",))]
        keys = minimal_keys(rel, fds)
        assert ("a", "b") in keys
        assert ("a",) not in keys
