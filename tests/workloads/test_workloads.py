"""Tests for scenarios and random generators."""

import random

import pytest

from repro.mapping import universal_solution
from repro.workloads import (
    all_scenarios,
    apply_edits,
    person_scenario,
    random_exchange_setting,
    random_instance,
    random_mapping,
    random_schema,
    random_view_edits,
    random_words,
)


class TestScenarios:
    def test_all_scenarios_instantiable(self):
        scenarios = all_scenarios()
        assert len(scenarios) == 9
        assert len({s.name for s in scenarios}) == 9

    def test_samples_conform_to_source_schemas(self):
        for scenario in all_scenarios():
            assert scenario.sample.schema == scenario.source

    def test_mappings_are_exchangeable(self):
        for scenario in all_scenarios():
            solution = universal_solution(scenario.mapping, scenario.sample)
            assert not solution.is_empty(), scenario.name

    def test_person_scenario_reflects_intro(self):
        scenario = person_scenario()
        assert "Person1" in scenario.source
        assert "Person2" in scenario.target
        solution = universal_solution(scenario.mapping, scenario.sample)
        # Salary is existential: every Person2 row carries a null there.
        from repro.relational import is_null

        salary_pos = scenario.target["Person2"].position_of("salary")
        assert all(is_null(r[salary_pos]) for r in solution.rows("Person2"))

    def test_declared_fds_hold_in_samples(self):
        for scenario in all_scenarios():
            for fd in scenario.fds:
                if fd.relation in scenario.sample.schema:
                    # FDs over auxiliary relations (e.g. zipcode columns that
                    # exist only in the target) are documentation; check the
                    # ones whose columns exist in the sample.
                    rel = scenario.sample.schema[fd.relation]
                    if all(
                        rel.has_attribute(c)
                        for c in fd.determinant + fd.dependent
                    ):
                        assert fd.holds_in(scenario.sample), (scenario.name, fd)


class TestRandomGenerators:
    def test_random_schema_shape(self):
        rng = random.Random(1)
        s = random_schema(rng, n_relations=4, min_arity=2, max_arity=3)
        assert len(s) == 4
        assert all(2 <= rel.arity <= 3 for rel in s)

    def test_random_instance_rows(self):
        rng = random.Random(2)
        s = random_schema(rng, 2)
        inst = random_instance(s, rng, rows_per_relation=5)
        for rel in s:
            assert len(inst.rows(rel.name)) <= 5  # set semantics may dedupe

    def test_random_mapping_valid(self):
        rng = random.Random(3)
        source = random_schema(rng, 3, prefix="S")
        target = random_schema(rng, 2, prefix="T")
        mapping = random_mapping(source, target, rng, n_tgds=4)
        assert len(mapping.tgds) == 4

    def test_random_mapping_premises_connected(self):
        rng = random.Random(4)
        source = random_schema(rng, 3, prefix="S")
        target = random_schema(rng, 2, prefix="T")
        mapping = random_mapping(source, target, rng, n_tgds=6, max_premise_atoms=3)
        for tgd in mapping.tgds:
            atoms = tgd.premise.atoms()
            if len(atoms) < 2:
                continue
            anchor = set(atoms[0].variables())
            for atom in atoms[1:]:
                assert anchor & set(atom.variables())

    def test_seed_reproducibility(self):
        m1, i1 = random_exchange_setting(seed=7)
        m2, i2 = random_exchange_setting(seed=7)
        assert i1 == i2
        assert repr(m1) == repr(m2)

    def test_different_seeds_differ(self):
        _, i1 = random_exchange_setting(seed=1)
        _, i2 = random_exchange_setting(seed=2)
        assert i1 != i2

    def test_random_settings_are_chaseable(self):
        for seed in range(5):
            mapping, inst = random_exchange_setting(seed)
            solution = universal_solution(mapping, inst)
            assert mapping.is_solution(inst, solution)


class TestViewEdits:
    def test_edit_workload_applies(self):
        mapping, inst = random_exchange_setting(seed=9)
        view = universal_solution(mapping, inst)
        rng = random.Random(5)
        edits = random_view_edits(view, rng, n_edits=6)
        assert len(edits) == 6
        edited = apply_edits(view, edits)
        assert edited.schema == view.schema

    def test_deletions_pick_existing_facts(self):
        mapping, inst = random_exchange_setting(seed=9)
        view = universal_solution(mapping, inst)
        rng = random.Random(6)
        n_edits = min(4, view.size())  # deletions fall back to inserts when
        assert n_edits > 0             # the view runs out of facts
        edits = random_view_edits(view, rng, n_edits=n_edits, insert_probability=0.0)
        for edit in edits:
            assert edit.kind == "delete"
            assert edit.fact in view

    def test_insertions_are_fresh_constants(self):
        mapping, inst = random_exchange_setting(seed=9)
        view = universal_solution(mapping, inst)
        rng = random.Random(7)
        edits = random_view_edits(view, rng, n_edits=4, insert_probability=1.0)
        for edit in edits:
            assert edit.kind == "insert"
            assert edit.fact.is_ground()

    def test_random_words(self):
        words = random_words(random.Random(1), 5, length=4)
        assert len(words) == 5
        assert all(len(w) == 4 for w in words)
