"""Shared fixtures: the paper's schemas and instances, used across suites."""

from __future__ import annotations

import pytest

from repro.relational import instance, relation, schema


@pytest.fixture
def emp_schema():
    """Source schema of Example 1: Emp(name)."""
    return schema(relation("Emp", "name"))


@pytest.fixture
def manager_schema():
    """Target schema of Example 1: Manager(emp, mgr)."""
    return schema(relation("Manager", "emp", "mgr"))


@pytest.fixture
def emp_instance(emp_schema):
    """I = {Emp(Alice), Emp(Bob)} from Example 1."""
    return instance(emp_schema, {"Emp": [["Alice"], ["Bob"]]})


@pytest.fixture
def person_schema():
    """The introduction's Person1 relation."""
    return schema(relation("Person1", "id", "name", "age", "city"))


@pytest.fixture
def person_instance(person_schema):
    return instance(
        person_schema,
        {
            "Person1": [
                [1, "Alice", 34, "Springfield"],
                [2, "Bob", 41, "Shelbyville"],
                [3, "Carol", 29, "Springfield"],
            ]
        },
    )


@pytest.fixture
def emp_dept_schema():
    """A two-relation join-shaped schema used by algebra and join-lens tests."""
    return schema(
        relation("Emp", "name", "dept"),
        relation("Dept", "dept", "head"),
    )


@pytest.fixture
def emp_dept_instance(emp_dept_schema):
    return instance(
        emp_dept_schema,
        {
            "Emp": [["ann", "d1"], ["bob", "d2"], ["cyd", "d1"]],
            "Dept": [["d1", "hana"], ["d2", "hugo"]],
        },
    )
