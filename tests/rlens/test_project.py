"""Tests for the projection lens and its update policies."""

import pytest

from repro.lenses import check_getput, check_putget
from repro.relational import (
    Fact,
    FunctionalDependency,
    LabeledNull,
    constant,
    instance,
    relation,
    schema,
)
from repro.rlens import (
    ConstantPolicy,
    EnvironmentPolicy,
    FdPolicy,
    NullPolicy,
    ProjectLens,
)

PERSON = relation("Person", "id", "name", "age", "city")
S = schema(PERSON)


@pytest.fixture
def source():
    return instance(
        S,
        {
            "Person": [
                [1, "ann", 30, "nyc"],
                [2, "bob", 41, "sfo"],
            ]
        },
    )


def lens_with(policies=None, environment=None):
    return ProjectLens(
        PERSON, ("id", "name"), "V", policies or {}, environment or {}
    )


class TestGet:
    def test_projects_and_renames(self, source):
        view = lens_with().get(source)
        assert view.schema["V"].attribute_names == ("id", "name")
        assert (constant(1), constant("ann")) in view.rows("V")

    def test_duplicates_collapse(self):
        inst = instance(S, {"Person": [[1, "ann", 30, "nyc"], [1, "ann", 31, "rio"]]})
        assert len(lens_with().get(inst).rows("V")) == 1


class TestPutDeletion:
    def test_deleting_view_row_deletes_source_row(self, source):
        lens = lens_with()
        view = lens.get(source)
        edited = view.without_facts([Fact("V", (constant(1), constant("ann")))])
        out = lens.put(edited, source)
        assert len(out.rows("Person")) == 1

    def test_deletion_removes_all_preimages(self):
        inst = instance(S, {"Person": [[1, "ann", 30, "nyc"], [1, "ann", 31, "rio"]]})
        lens = lens_with()
        empty_view = lens.get(inst).without_facts(
            [Fact("V", (constant(1), constant("ann")))]
        )
        assert lens.put(empty_view, inst).is_empty()


class TestPutInsertionPolicies:
    def new_view(self, lens, source):
        return lens.get(source).with_facts([Fact("V", (constant(3), constant("cyd")))])

    def inserted_row(self, out):
        return next(
            row for row in out.rows("Person") if row[0] == constant(3)
        )

    def test_null_policy(self, source):
        lens = lens_with()
        out = lens.put(self.new_view(lens, source), source)
        row = self.inserted_row(out)
        assert isinstance(row[2], LabeledNull)
        assert isinstance(row[3], LabeledNull)
        assert row[2] != row[3]

    def test_constant_policy(self, source):
        lens = lens_with({"age": ConstantPolicy(0)})
        row = self.inserted_row(lens.put(self.new_view(lens, source), source))
        assert row[2] == constant(0)

    def test_environment_policy(self, source):
        lens = lens_with(
            {"city": EnvironmentPolicy("office")}, {"office": "berlin"}
        )
        row = self.inserted_row(lens.put(self.new_view(lens, source), source))
        assert row[3] == constant("berlin")

    def test_fd_policy_via_retained_columns(self):
        rel = relation("Emp", "name", "dept", "site")
        s2 = schema(rel)
        old = instance(
            s2, {"Emp": [["ann", "eng", "berlin"], ["bob", "ops", "lisbon"]]}
        )
        fd = FunctionalDependency("Emp", ("dept",), ("site",))
        lens = ProjectLens(rel, ("name", "dept"), "V", {"site": FdPolicy(fd)})
        view = lens.get(old).with_facts(
            [Fact("V", (constant("cyd"), constant("eng")))]
        )
        out = lens.put(view, old)
        row = next(r for r in out.rows("Emp") if r[0] == constant("cyd"))
        assert row[2] == constant("berlin")

    def test_fresh_nulls_avoid_existing_labels(self):
        inst = instance(S, {"Person": [[1, "ann", 30, "nyc"]]})
        from repro.relational import Instance

        with_null = Instance(
            S,
            list(inst.facts())
            + [Fact("Person", (constant(9), constant("zed"), LabeledNull(7), LabeledNull(8)))],
        )
        lens = lens_with()
        view = lens.get(with_null).with_facts(
            [Fact("V", (constant(5), constant("new")))]
        )
        out = lens.put(view, with_null)
        new_row = next(r for r in out.rows("Person") if r[0] == constant(5))
        assert all(
            not isinstance(v, LabeledNull) or v.label > 8 for v in new_row
        )


class TestLaws:
    def _views_for(self, lens):
        def views(source):
            base = lens.get(source)
            edited = base.with_facts([Fact("V", (constant(9), constant("zed")))])
            other = base.with_facts([Fact("V", (constant(8), constant("yara")))])
            return [base, edited, other]

        return views

    @pytest.mark.parametrize(
        "policies",
        [
            {},
            {"age": ConstantPolicy(0), "city": ConstantPolicy("x")},
        ],
    )
    def test_putget_getput(self, source, policies):
        lens = lens_with(policies)
        assert check_putget(lens, [source], self._views_for(lens)) == []
        assert check_getput(lens, [source]) == []

    def test_putput_fails_with_null_policy(self, source):
        # Two successive puts invent different nulls: PutPut cannot hold.
        from repro.lenses import check_putput

        lens = lens_with()
        violations = check_putput(lens, [source], self._views_for(lens))
        assert violations != []

    def test_putput_holds_with_constant_policy(self, source):
        from repro.lenses import check_putput

        lens = lens_with({"age": ConstantPolicy(0), "city": ConstantPolicy("x")})
        assert check_putput(lens, [source], self._views_for(lens)) == []


class TestValidation:
    def test_unknown_kept_column_rejected(self):
        with pytest.raises(KeyError):
            ProjectLens(PERSON, ("id", "zzz"), "V")

    def test_policy_for_retained_column_rejected(self):
        with pytest.raises(ValueError, match="retained"):
            ProjectLens(PERSON, ("id",), "V", {"id": NullPolicy()})

    def test_policy_for_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            ProjectLens(PERSON, ("id",), "V", {"zzz": NullPolicy()})

    def test_dropped_accessor(self):
        lens = lens_with()
        assert lens.dropped == ("age", "city")

    def test_create_builds_from_empty(self):
        lens = lens_with({"age": ConstantPolicy(0), "city": ConstantPolicy("?")})
        view = instance(lens.view_schema, {"V": [[1, "ann"]]})
        created = lens.create(view)
        assert len(created.rows("Person")) == 1
