"""Tests for the join lens and its delete-propagation policies."""

import pytest

from repro.lenses import check_well_behaved
from repro.relational import Fact, constant, instance, relation, schema
from repro.rlens import JoinDeletePolicy, JoinLens, ViewViolationError

EMP = relation("Emp", "name", "dept")
DEPT = relation("Dept", "dept", "head")
S = schema(EMP, DEPT)


@pytest.fixture
def source():
    return instance(
        S,
        {
            "Emp": [["ann", "d1"], ["bob", "d2"]],
            "Dept": [["d1", "hana"], ["d2", "hugo"]],
        },
    )


def lens(policy=JoinDeletePolicy.LEFT):
    return JoinLens(EMP, DEPT, "EmpDept", policy)


def view_fact(name, dept, head):
    return Fact("EmpDept", (constant(name), constant(dept), constant(head)))


class TestStructure:
    def test_shared_columns(self):
        assert lens().shared_columns == ("dept",)
        assert lens().right_extra_columns == ("head",)

    def test_requires_shared_columns(self):
        other = relation("Other", "x")
        with pytest.raises(ValueError, match="shared columns"):
            JoinLens(EMP, other, "V")

    def test_view_schema(self):
        assert lens().view_schema["EmpDept"].attribute_names == (
            "name",
            "dept",
            "head",
        )


class TestGet:
    def test_join_rows(self, source):
        view = lens().get(source)
        assert view.rows("EmpDept") == {
            (constant("ann"), constant("d1"), constant("hana")),
            (constant("bob"), constant("d2"), constant("hugo")),
        }

    def test_dangling_rows_do_not_join(self):
        inst = instance(
            S, {"Emp": [["ann", "dX"]], "Dept": [["d1", "hana"]]}
        )
        assert lens().get(inst).is_empty()


class TestDeletePolicies:
    def test_delete_left(self, source):
        view = lens().get(source).without_facts([view_fact("ann", "d1", "hana")])
        out = lens(JoinDeletePolicy.LEFT).put(view, source)
        assert (constant("ann"), constant("d1")) not in out.rows("Emp")
        assert (constant("d1"), constant("hana")) in out.rows("Dept")

    def test_delete_right(self, source):
        view = lens().get(source).without_facts([view_fact("ann", "d1", "hana")])
        out = lens(JoinDeletePolicy.RIGHT).put(view, source)
        assert (constant("ann"), constant("d1")) in out.rows("Emp")
        assert (constant("d1"), constant("hana")) not in out.rows("Dept")

    def test_delete_both(self, source):
        view = lens().get(source).without_facts([view_fact("ann", "d1", "hana")])
        out = lens(JoinDeletePolicy.BOTH).put(view, source)
        assert (constant("ann"), constant("d1")) not in out.rows("Emp")
        assert (constant("d1"), constant("hana")) not in out.rows("Dept")

    def test_delete_right_overdeletes_shared_keys(self):
        """The known caveat: deleting right kills sibling join rows too."""
        inst = instance(
            S,
            {
                "Emp": [["ann", "d1"], ["cyd", "d1"]],
                "Dept": [["d1", "hana"]],
            },
        )
        jl = lens(JoinDeletePolicy.RIGHT)
        view = jl.get(inst).without_facts([view_fact("ann", "d1", "hana")])
        out = jl.put(view, inst)
        # cyd's join row disappeared as collateral damage:
        assert view_fact("cyd", "d1", "hana") not in jl.get(out).facts()


class TestInsertAndRevise:
    def test_insert_splits_both_sides(self, source):
        jl = lens()
        view = jl.get(source).with_facts([view_fact("dee", "d3", "hiro")])
        out = jl.put(view, source)
        assert (constant("dee"), constant("d3")) in out.rows("Emp")
        assert (constant("d3"), constant("hiro")) in out.rows("Dept")

    def test_right_side_revised_to_match_view(self, source):
        jl = lens()
        view = jl.get(source)
        view = view.without_facts([view_fact("ann", "d1", "hana")]).with_facts(
            [view_fact("ann", "d1", "nadia")]
        )
        out = jl.put(view, source)
        assert (constant("d1"), constant("nadia")) in out.rows("Dept")
        assert (constant("d1"), constant("hana")) not in out.rows("Dept")

    def test_view_fd_violation_rejected(self, source):
        jl = lens()
        view = jl.get(source).with_facts([view_fact("eve", "d1", "other")])
        with pytest.raises(ViewViolationError, match="FD"):
            jl.put(view, source)


class TestLaws:
    @pytest.mark.parametrize(
        "policy", [JoinDeletePolicy.LEFT, JoinDeletePolicy.BOTH]
    )
    def test_well_behaved_in_fk_regime(self, source, policy):
        jl = lens(policy)

        def views(s):
            base = jl.get(s)
            return [
                base,
                base.with_facts([view_fact("dee", "d3", "hiro")]),
                base.without_facts([view_fact("ann", "d1", "hana")]),
            ]

        assert check_well_behaved(jl, [source], views) == []

    def test_getput_exact(self, source):
        jl = lens()
        assert jl.put(jl.get(source), source) == source
