"""Tests for the union lens and its insertion-side policy."""

import pytest

from repro.lenses import check_putput, check_well_behaved
from repro.relational import Fact, constant, instance, relation, schema
from repro.rlens import UnionLens, UnionSide

FT = relation("FullTime", "name")
PT = relation("PartTime", "name")
S = schema(FT, PT)


@pytest.fixture
def source():
    return instance(S, {"FullTime": [["ann"]], "PartTime": [["bob"]]})


def lens(side=UnionSide.LEFT):
    return UnionLens(FT, PT, "Staff", side)


class TestStructure:
    def test_arity_mismatch_rejected(self):
        other = relation("Other", "a", "b")
        with pytest.raises(ValueError, match="arity"):
            UnionLens(FT, other, "V")

    def test_same_relation_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            UnionLens(FT, FT, "V")


class TestGet:
    def test_union(self, source):
        view = lens().get(source)
        assert view.rows("Staff") == {(constant("ann"),), (constant("bob"),)}

    def test_overlap_collapses(self):
        overlapping = instance(
            S, {"FullTime": [["ann"]], "PartTime": [["ann"]]}
        )
        assert len(lens().get(overlapping).rows("Staff")) == 1


class TestPut:
    def test_delete_removes_from_both_sides(self):
        overlapping = instance(
            S, {"FullTime": [["ann"]], "PartTime": [["ann"]]}
        )
        ul = lens()
        view = ul.get(overlapping).without_facts([Fact("Staff", (constant("ann"),))])
        out = ul.put(view, overlapping)
        assert out.is_empty()

    def test_insert_left(self, source):
        ul = lens(UnionSide.LEFT)
        view = ul.get(source).with_facts([Fact("Staff", (constant("cyd"),))])
        out = ul.put(view, source)
        assert (constant("cyd"),) in out.rows("FullTime")
        assert (constant("cyd"),) not in out.rows("PartTime")

    def test_insert_right(self, source):
        ul = lens(UnionSide.RIGHT)
        view = ul.get(source).with_facts([Fact("Staff", (constant("cyd"),))])
        out = ul.put(view, source)
        assert (constant("cyd"),) in out.rows("PartTime")

    def test_existing_rows_keep_their_side(self, source):
        ul = lens()
        out = ul.put(ul.get(source), source)
        assert out == source


class TestLaws:
    @pytest.mark.parametrize("side", [UnionSide.LEFT, UnionSide.RIGHT])
    def test_union_is_well_behaved(self, source, side):
        ul = lens(side)

        def views(s):
            base = ul.get(s)
            return [
                base,
                base.with_facts([Fact("Staff", (constant("new"),))]),
                base.without_facts([Fact("Staff", (constant("ann"),))]),
            ]

        assert check_well_behaved(ul, [source], views) == []

    def test_putput_holds_when_reinsertion_side_matches(self, source):
        # ann lives on the left; with LEFT insertion a delete/re-insert
        # round trip restores the original state, so PutPut holds here.
        ul = lens(UnionSide.LEFT)

        def views(s):
            base = ul.get(s)
            return [base, base.without_facts([Fact("Staff", (constant("ann"),))])]

        assert check_putput(ul, [source], views) == []

    def test_putput_fails_when_reinsertion_switches_sides(self, source):
        # With RIGHT insertion, deleting ann (left) and re-inserting moves
        # her to the right input: union is NOT very well behaved in
        # general — the side information is complement state puts can lose.
        ul = lens(UnionSide.RIGHT)

        def views(s):
            base = ul.get(s)
            return [base, base.without_facts([Fact("Staff", (constant("ann"),))])]

        assert check_putput(ul, [source], views) != []
