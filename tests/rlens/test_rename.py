"""Tests for the rename lens (the isomorphism case)."""

import pytest

from repro.lenses import check_putput, check_well_behaved
from repro.relational import Fact, constant, instance, relation, schema
from repro.rlens import RenameLens

EMP = relation("Emp", "name", "dept")


@pytest.fixture
def source():
    return instance(schema(EMP), {"Emp": [["ann", "eng"]]})


class TestRename:
    def test_relation_rename(self, source):
        lens = RenameLens(EMP, "Worker")
        view = lens.get(source)
        assert "Worker" in view.schema
        assert view.rows("Worker") == source.rows("Emp")

    def test_column_rename(self, source):
        lens = RenameLens(EMP, "Emp2", {"name": "who"})
        assert lens.view_schema["Emp2"].attribute_names == ("who", "dept")

    def test_unknown_column_rejected(self):
        with pytest.raises(KeyError):
            RenameLens(EMP, "X", {"zzz": "a"})

    def test_put_is_pure_transport(self, source):
        lens = RenameLens(EMP, "Worker")
        view = lens.get(source).with_facts(
            [Fact("Worker", (constant("bob"), constant("ops")))]
        )
        out = lens.put(view, source)
        assert len(out.rows("Emp")) == 2

    def test_inverse_round_trips(self, source):
        lens = RenameLens(EMP, "Worker", {"name": "who"})
        inverse = lens.inverse()
        assert inverse.get(lens.get(source)) == source

    def test_very_well_behaved(self, source):
        lens = RenameLens(EMP, "Worker")

        def views(s):
            base = lens.get(s)
            return [
                base,
                base.with_facts([Fact("Worker", (constant("x"), constant("y")))]),
            ]

        assert check_well_behaved(lens, [source], views) == []
        assert check_putput(lens, [source], views) == []
