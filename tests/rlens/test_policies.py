"""Tests for update policies: the paper's null/constant/environment/FD menu."""

import pytest

from repro.relational import (
    FunctionalDependency,
    LabeledNull,
    constant,
    instance,
    relation,
    schema,
)
from repro.relational.schema import Attribute
from repro.rlens import (
    ConstantPolicy,
    EnvironmentPolicy,
    FdPolicy,
    NullPolicy,
    PolicyContext,
    PolicyError,
    PolicyQuestion,
)


@pytest.fixture
def context():
    s = schema(relation("P", "id", "city", "zip"))
    old = instance(
        s,
        {"P": [[1, "spr", "49001"], [2, "she", "49002"]]},
    )
    return PolicyContext(old_source=old, environment={"user": "admin"})


COLUMN = Attribute("zip")


class TestNullPolicy:
    def test_fresh_nulls(self, context):
        policy = NullPolicy()
        a = policy.fill({}, COLUMN, "P", context)
        b = policy.fill({}, COLUMN, "P", context)
        assert isinstance(a, LabeledNull)
        assert a != b

    def test_describe(self):
        assert "null" in NullPolicy().describe()


class TestConstantPolicy:
    def test_fills_with_constant(self, context):
        policy = ConstantPolicy("00000")
        assert policy.fill({}, COLUMN, "P", context) == constant("00000")

    def test_accepts_wrapped_constant(self, context):
        policy = ConstantPolicy(constant(7))
        assert policy.fill({}, COLUMN, "P", context) == constant(7)

    def test_describe_mentions_value(self):
        assert "00000" in ConstantPolicy("00000").describe()


class TestEnvironmentPolicy:
    def test_reads_environment(self, context):
        policy = EnvironmentPolicy("user")
        assert policy.fill({}, COLUMN, "P", context) == constant("admin")

    def test_transform_applied(self, context):
        policy = EnvironmentPolicy("user", transform=str.upper)
        assert policy.fill({}, COLUMN, "P", context) == constant("ADMIN")

    def test_missing_key_raises(self, context):
        with pytest.raises(PolicyError, match="no entry"):
            EnvironmentPolicy("nope").fill({}, COLUMN, "P", context)


class TestFdPolicy:
    @pytest.fixture
    def fd(self):
        return FunctionalDependency("P", ("city",), ("zip",))

    def test_restores_from_old_source(self, context, fd):
        policy = FdPolicy(fd)
        value = policy.fill({"city": constant("spr")}, COLUMN, "P", context)
        assert value == constant("49001")

    def test_fallback_on_unknown_determinant(self, context, fd):
        policy = FdPolicy(fd, fallback=ConstantPolicy("?"))
        value = policy.fill({"city": constant("unknown")}, COLUMN, "P", context)
        assert value == constant("?")

    def test_default_fallback_is_null(self, context, fd):
        policy = FdPolicy(fd)
        value = policy.fill({"city": constant("unknown")}, COLUMN, "P", context)
        assert isinstance(value, LabeledNull)

    def test_wrong_dependent_rejected(self, context, fd):
        policy = FdPolicy(fd)
        with pytest.raises(PolicyError, match="does not determine"):
            policy.fill({"city": constant("spr")}, Attribute("other"), "P", context)

    def test_determinant_must_be_retained(self, context, fd):
        policy = FdPolicy(fd)
        with pytest.raises(PolicyError, match="not retained"):
            policy.fill({"id": constant(1)}, COLUMN, "P", context)

    def test_describe(self, fd):
        assert "city" in FdPolicy(fd).describe()


class TestPolicyQuestion:
    def test_repr_marks_default(self):
        question = PolicyQuestion("slot", "which?", ("a", "b"), "b")
        assert "*b*" in repr(question)
