"""Tests for schema-checked relational lens pipelines."""

import pytest

from repro.lenses import check_well_behaved
from repro.relational import Fact, constant, instance, relation, schema
from repro.relational.algebra import eq
from repro.rlens import ConstantPolicy, ProjectLens, SelectLens
from repro.rlens.compose import SchemaMismatchError, SequentialLens, pipeline

EMP = relation("Emp", "name", "dept", "site")
S = schema(EMP)


@pytest.fixture
def source():
    return instance(
        S,
        {
            "Emp": [
                ["ann", "eng", "berlin"],
                ["bob", "ops", "lisbon"],
                ["cyd", "eng", "berlin"],
            ]
        },
    )


@pytest.fixture
def select_then_project():
    select = SelectLens(EMP, eq("dept", "eng"), "EngEmp")
    mid_relation = select.view_schema["EngEmp"]
    project = ProjectLens(
        mid_relation, ("name",), "EngNames",
        {"dept": ConstantPolicy("eng"), "site": ConstantPolicy("berlin")},
    )
    return pipeline(select, project)


class TestSequential:
    def test_get_composes(self, select_then_project, source):
        view = select_then_project.get(source)
        assert view.rows("EngNames") == {(constant("ann"),), (constant("cyd"),)}

    def test_schemas_exposed(self, select_then_project):
        assert select_then_project.source_schema == S
        assert "EngNames" in select_then_project.view_schema

    def test_put_threads_through_middle(self, select_then_project, source):
        view = select_then_project.get(source).with_facts(
            [Fact("EngNames", (constant("dee"),))]
        )
        out = select_then_project.put(view, source)
        assert (constant("dee"), constant("eng"), constant("berlin")) in out.rows(
            "Emp"
        )
        # Hidden (ops) rows are untouched.
        assert (constant("bob"), constant("ops"), constant("lisbon")) in out.rows(
            "Emp"
        )

    def test_delete_through_pipeline(self, select_then_project, source):
        view = select_then_project.get(source).without_facts(
            [Fact("EngNames", (constant("ann"),))]
        )
        out = select_then_project.put(view, source)
        names = {r[0] for r in out.rows("Emp")}
        assert constant("ann") not in names
        assert constant("bob") in names

    def test_pipeline_laws(self, select_then_project, source):
        def views(s):
            base = select_then_project.get(s)
            return [
                base,
                base.with_facts([Fact("EngNames", (constant("zed"),))]),
                base.without_facts([Fact("EngNames", (constant("ann"),))]),
            ]

        assert check_well_behaved(select_then_project, [source], views) == []

    def test_create(self, select_then_project):
        view = instance(
            select_then_project.view_schema, {"EngNames": [["solo"]]}
        )
        created = select_then_project.create(view)
        assert len(created.rows("Emp")) == 1


class TestValidation:
    def test_mismatched_stages_rejected(self):
        select = SelectLens(EMP, eq("dept", "eng"), "EngEmp")
        wrong = ProjectLens(EMP, ("name",), "V")  # expects Emp, not EngEmp
        with pytest.raises(SchemaMismatchError):
            SequentialLens(select, wrong)

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            pipeline()

    def test_single_stage_pipeline_is_the_stage(self):
        select = SelectLens(EMP, eq("dept", "eng"), "EngEmp")
        assert pipeline(select) is select
