"""Tests for lens templates: operator families missing their policies."""

import pytest

from repro.relational import constant, relation
from repro.relational.algebra import eq
from repro.rlens import (
    ConstantPolicy,
    JoinDeletePolicy,
    JoinTemplate,
    NullPolicy,
    ProjectionTemplate,
    RenameTemplate,
    SelectionTemplate,
    TemplateError,
    UnionSide,
    UnionTemplate,
)

PERSON = relation("Person", "id", "name", "age")
EMP = relation("Emp", "name", "dept")
DEPT = relation("Dept", "dept", "head")
FT = relation("FullTime", "name")
PT = relation("PartTime", "name")


class TestProjectionTemplate:
    def test_one_question_per_dropped_column(self):
        template = ProjectionTemplate(PERSON, ("id",), "V")
        questions = template.policy_questions()
        assert [q.slot for q in questions] == ["column:name", "column:age"]
        assert all("extra column" in q.question for q in questions)

    def test_defaults(self):
        template = ProjectionTemplate(PERSON, ("id",), "V")
        assert template.default_answers() == {
            "column:name": "null",
            "column:age": "null",
        }

    def test_instantiate_with_defaults(self):
        lens = ProjectionTemplate(PERSON, ("id",), "V").instantiate()
        assert isinstance(lens.policy_for("name"), NullPolicy)

    def test_instantiate_with_policy_objects(self):
        template = ProjectionTemplate(PERSON, ("id", "name"), "V")
        lens = template.instantiate({"column:age": ConstantPolicy(0)})
        assert lens.policy_for("age") == ConstantPolicy(0)

    def test_constant_shorthand(self):
        template = ProjectionTemplate(PERSON, ("id", "name"), "V")
        lens = template.instantiate({"column:age": "constant:18"})
        assert lens.policy_for("age") == ConstantPolicy("18")

    def test_unknown_slot_rejected(self):
        template = ProjectionTemplate(PERSON, ("id", "name"), "V")
        with pytest.raises(TemplateError, match="unknown answer"):
            template.instantiate({"column:zzz": "null"})

    def test_bad_answer_type_rejected(self):
        template = ProjectionTemplate(PERSON, ("id", "name"), "V")
        with pytest.raises(TemplateError):
            template.instantiate({"column:age": 42})

    def test_no_dropped_columns_means_no_questions(self):
        template = ProjectionTemplate(PERSON, ("id", "name", "age"), "V")
        assert template.policy_questions() == []


class TestJoinTemplate:
    def test_question(self):
        questions = JoinTemplate(EMP, DEPT, "V").policy_questions()
        assert len(questions) == 1
        assert questions[0].options == ("left", "right", "both")

    def test_instantiate_strings(self):
        lens = JoinTemplate(EMP, DEPT, "V").instantiate(
            {"delete_propagation": "both"}
        )
        assert lens.delete_policy is JoinDeletePolicy.BOTH

    def test_instantiate_enum(self):
        lens = JoinTemplate(EMP, DEPT, "V").instantiate(
            {"delete_propagation": JoinDeletePolicy.RIGHT}
        )
        assert lens.delete_policy is JoinDeletePolicy.RIGHT

    def test_default_is_left(self):
        lens = JoinTemplate(EMP, DEPT, "V").instantiate()
        assert lens.delete_policy is JoinDeletePolicy.LEFT

    def test_bad_option_rejected(self):
        with pytest.raises(TemplateError):
            JoinTemplate(EMP, DEPT, "V").instantiate({"delete_propagation": "up"})


class TestUnionTemplate:
    def test_question(self):
        questions = UnionTemplate(FT, PT, "V").policy_questions()
        assert questions[0].slot == "insert_side"

    def test_instantiate(self):
        lens = UnionTemplate(FT, PT, "V").instantiate({"insert_side": "right"})
        assert lens.insert_side is UnionSide.RIGHT


class TestPolicyFreeTemplates:
    def test_selection_has_no_questions(self):
        template = SelectionTemplate(EMP, eq("dept", "eng"), "V")
        assert template.policy_questions() == []
        lens = template.instantiate()
        assert lens.view_name == "V"

    def test_selection_rejects_answers(self):
        template = SelectionTemplate(EMP, eq("dept", "eng"), "V")
        with pytest.raises(TemplateError):
            template.instantiate({"anything": 1})

    def test_rename_has_no_questions(self):
        template = RenameTemplate(EMP, "Worker", (("name", "who"),))
        assert template.policy_questions() == []
        lens = template.instantiate()
        assert lens.view_schema["Worker"].attribute_names == ("who", "dept")
