"""Tests for ParallelLens and the symmetric relational-lens constructions."""

import pytest

from repro.lenses import check_symmetric_laws
from repro.relational import Fact, constant, instance, relation, schema
from repro.rlens import (
    ParallelLens,
    ProjectLens,
    RelationalIdentityLens,
    RenameLens,
    span_exchange,
    symmetrize,
)

A = relation("A", "x", "y")
B = relation("B", "z")


@pytest.fixture
def source():
    return instance(schema(A, B), {"A": [[1, 2]], "B": [["q"]]})


@pytest.fixture
def parallel():
    return ParallelLens(
        [
            ProjectLens(A, ("x",), "VA"),
            RenameLens(B, "VB"),
        ]
    )


class TestParallelLens:
    def test_schemas_merge(self, parallel):
        assert set(parallel.source_schema.relation_names) == {"A", "B"}
        assert set(parallel.view_schema.relation_names) == {"VA", "VB"}

    def test_get_unions_views(self, parallel, source):
        view = parallel.get(source)
        assert view.rows("VA") == {(constant(1),)}
        assert view.rows("VB") == {(constant("q"),)}

    def test_put_routes_by_relation(self, parallel, source):
        view = parallel.get(source).with_facts([Fact("VB", (constant("r"),))])
        out = parallel.put(view, source)
        assert len(out.rows("B")) == 2
        assert out.rows("A") == source.rows("A")

    def test_getput(self, parallel, source):
        assert parallel.put(parallel.get(source), source) == source

    def test_overlapping_sources_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            ParallelLens([RenameLens(A, "V1"), ProjectLens(A, ("x",), "V2")])

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            ParallelLens([])

    def test_schema_mismatch_detected(self, parallel):
        wrong = instance(schema(A), {"A": [[1, 2]]})
        with pytest.raises(ValueError, match="does not match"):
            parallel.get(wrong)


class TestSymmetrize:
    def test_putr_reads_view(self, source):
        lens = ProjectLens(A, ("x",), "VA")
        sub_source = source.restrict(["A"])
        sym = symmetrize(lens)
        view, complement = sym.putr(sub_source, sym.missing)
        assert view.rows("VA") == {(constant(1),)}
        assert complement == sub_source

    def test_putl_runs_put(self, source):
        lens = ProjectLens(A, ("x",), "VA")
        sub_source = source.restrict(["A"])
        sym = symmetrize(lens)
        _, complement = sym.putr(sub_source, sym.missing)
        edited = lens.get(sub_source).with_facts([Fact("VA", (constant(9),))])
        back, _ = sym.putl(edited, complement)
        assert len(back.rows("A")) == 2

    def test_laws(self, source):
        lens = RenameLens(A, "VA")  # iso: exact laws hold
        sub_source = source.restrict(["A"])
        sym = symmetrize(lens)
        views = [lens.get(sub_source)]
        assert check_symmetric_laws(sym, [sub_source], views) == []

    def test_inversion_is_trivial(self, source):
        lens = RenameLens(A, "VA")
        sub_source = source.restrict(["A"])
        sym = symmetrize(lens)
        inverted = sym.invert()
        view = lens.get(sub_source)
        out, _ = inverted.putr(view, inverted.missing)
        assert out.schema == lens.source_schema


class TestSpanExchange:
    def test_two_legs_over_shared_universe(self, source):
        left = ProjectLens(A, ("x",), "LeftView")
        right = ProjectLens(A, ("y",), "RightView")
        universal = source.restrict(["A"])
        sym = span_exchange(left, right)
        # Seed the complement by folding the left view of the universe in.
        left_view = left.get(universal)
        right_view, complement = sym.putr(left_view, sym.missing)
        assert right_view.schema == right.view_schema
        # Push a left-side edit through to the right side.
        edited = left_view.with_facts([Fact("LeftView", (constant(7),))])
        right_view2, _ = sym.putr(edited, complement)
        assert right_view2.schema == right.view_schema

    def test_leg_schema_mismatch_rejected(self):
        left = ProjectLens(A, ("x",), "L")
        right = ProjectLens(B, ("z",), "R")
        with pytest.raises(ValueError, match="universal schema"):
            span_exchange(left, right)


class TestRelationalIdentity:
    def test_identity(self, source):
        lens = RelationalIdentityLens(source.schema)
        assert lens.get(source) == source
        assert lens.put(source, source) == source
