"""Tests for the selection lens."""

import pytest

from repro.lenses import check_putput, check_well_behaved
from repro.relational import Fact, constant, instance, relation, schema
from repro.relational.algebra import eq
from repro.rlens import SelectLens, ViewViolationError

EMP = relation("Emp", "name", "dept")
S = schema(EMP)


@pytest.fixture
def source():
    return instance(
        S,
        {"Emp": [["ann", "eng"], ["bob", "ops"], ["cyd", "eng"]]},
    )


@pytest.fixture
def lens():
    return SelectLens(EMP, eq("dept", "eng"), "EngEmp")


class TestGet:
    def test_filters(self, lens, source):
        view = lens.get(source)
        assert len(view.rows("EngEmp")) == 2

    def test_view_schema_renamed(self, lens):
        assert lens.view_schema["EngEmp"].attribute_names == ("name", "dept")


class TestPut:
    def test_hidden_rows_survive(self, lens, source):
        view = lens.get(source).without_facts(
            [Fact("EngEmp", (constant("ann"), constant("eng")))]
        )
        out = lens.put(view, source)
        assert (constant("bob"), constant("ops")) in out.rows("Emp")
        assert (constant("ann"), constant("eng")) not in out.rows("Emp")

    def test_insert_satisfying_row(self, lens, source):
        view = lens.get(source).with_facts(
            [Fact("EngEmp", (constant("dee"), constant("eng")))]
        )
        out = lens.put(view, source)
        assert (constant("dee"), constant("eng")) in out.rows("Emp")

    def test_insert_violating_row_rejected(self, lens, source):
        view = lens.get(source).with_facts(
            [Fact("EngEmp", (constant("dee"), constant("ops")))]
        )
        with pytest.raises(ViewViolationError):
            lens.put(view, source)

    def test_create(self, lens):
        view = instance(lens.view_schema, {"EngEmp": [["zed", "eng"]]})
        assert len(lens.create(view).rows("Emp")) == 1


class TestLaws:
    def test_select_is_very_well_behaved(self, lens, source):
        def views(s):
            base = lens.get(s)
            return [
                base,
                base.with_facts([Fact("EngEmp", (constant("x"), constant("eng")))]),
                base.without_facts(
                    [Fact("EngEmp", (constant("ann"), constant("eng")))]
                ),
            ]

        assert check_well_behaved(lens, [source], views) == []
        assert check_putput(lens, [source], views) == []
