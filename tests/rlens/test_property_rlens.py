"""Property-based tests (hypothesis) for relational lens laws.

These are E5's claims as properties: every shipped relational lens is
well-behaved over randomized states and edits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Fact, Instance, constant, relation, schema
from repro.relational.algebra import eq
from repro.rlens import (
    ConstantPolicy,
    JoinDeletePolicy,
    JoinLens,
    ProjectLens,
    SelectLens,
    UnionLens,
    UnionSide,
)

PERSON = relation("Person", "id", "name", "city")
PERSON_SCHEMA = schema(PERSON)

ids = st.integers(min_value=1, max_value=6)
names = st.sampled_from(["ann", "bob", "cyd", "dee"])
cities = st.sampled_from(["nyc", "sfo", "ber"])


@st.composite
def person_instances(draw):
    rows = draw(
        st.lists(st.tuples(ids, names, cities), min_size=0, max_size=6)
    )
    facts = [
        Fact("Person", (constant(i), constant(n), constant(c)))
        for i, n, c in rows
    ]
    return Instance(PERSON_SCHEMA, facts)


@settings(max_examples=60, deadline=None)
@given(person_instances(), ids, names)
def test_project_lens_laws(source, new_id, new_name):
    lens = ProjectLens(PERSON, ("id", "name"), "V", {"city": ConstantPolicy("?")})
    view = lens.get(source)
    # GetPut
    assert lens.put(view, source) == source
    # PutGet on an arbitrary edit
    edited = view.with_facts([Fact("V", (constant(new_id), constant(new_name)))])
    assert lens.get(lens.put(edited, source)).same_facts(edited)
    # Deleting everything empties the source
    from repro.relational import empty_instance

    assert lens.put(empty_instance(lens.view_schema), source).is_empty()


@settings(max_examples=60, deadline=None)
@given(person_instances())
def test_select_lens_laws(source):
    lens = SelectLens(PERSON, eq("city", "nyc"), "V")
    view = lens.get(source)
    assert lens.put(view, source) == source
    edited = view.with_facts(
        [Fact("V", (constant(99), constant("new"), constant("nyc")))]
    )
    assert lens.get(lens.put(edited, source)).same_facts(edited)


@st.composite
def emp_dept_instances(draw):
    """FK-shaped instances: every Emp.dept references an existing Dept key."""
    dept_rows = draw(
        st.dictionaries(
            st.sampled_from(["d1", "d2", "d3"]),
            st.sampled_from(["hana", "hugo"]),
            min_size=1,
            max_size=3,
        )
    )
    emp_rows = draw(
        st.lists(
            st.tuples(names, st.sampled_from(sorted(dept_rows))),
            max_size=5,
        )
    )
    emp = relation("Emp", "name", "dept")
    dept = relation("Dept", "dept", "head")
    s = schema(emp, dept)
    facts = [
        Fact("Dept", (constant(d), constant(h))) for d, h in dept_rows.items()
    ] + [Fact("Emp", (constant(n), constant(d))) for n, d in emp_rows]
    return Instance(s, facts)


@settings(max_examples=60, deadline=None)
@given(emp_dept_instances())
def test_join_lens_getput(source):
    lens = JoinLens(
        source.schema["Emp"], source.schema["Dept"], "V", JoinDeletePolicy.LEFT
    )
    view = lens.get(source)
    assert lens.put(view, source) == source


@settings(max_examples=60, deadline=None)
@given(emp_dept_instances())
def test_join_lens_putget_on_deletions(source):
    lens = JoinLens(
        source.schema["Emp"], source.schema["Dept"], "V", JoinDeletePolicy.LEFT
    )
    view = lens.get(source)
    facts = sorted(view.facts(), key=repr)
    if not facts:
        return
    edited = view.without_facts(facts[:1])
    assert lens.get(lens.put(edited, source)).same_facts(edited)


@st.composite
def union_instances(draw):
    ft = relation("FT", "name")
    pt = relation("PT", "name")
    s = schema(ft, pt)
    left = draw(st.sets(names, max_size=4))
    right = draw(st.sets(names, max_size=4))
    facts = [Fact("FT", (constant(n),)) for n in left] + [
        Fact("PT", (constant(n),)) for n in right
    ]
    return Instance(s, facts)


@settings(max_examples=60, deadline=None)
@given(union_instances(), st.sampled_from([UnionSide.LEFT, UnionSide.RIGHT]))
def test_union_lens_laws(source, side):
    lens = UnionLens(source.schema["FT"], source.schema["PT"], "V", side)
    view = lens.get(source)
    assert lens.put(view, source) == source
    edited = view.with_facts([Fact("V", (constant("fresh"),))])
    assert lens.get(lens.put(edited, source)).same_facts(edited)
    facts = sorted(view.facts(), key=repr)
    if facts:
        shrunk = view.without_facts(facts[:1])
        assert lens.get(lens.put(shrunk, source)).same_facts(shrunk)
