"""Tests for fingerprints and the exchange solution cache (repro.exec.cache)."""

import pytest

from repro.exec import ExchangeCache, mapping_fingerprint
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import SchemaMapping
from repro.mapping.dependencies import Egd
from repro.relational import instance, relation, schema
from repro.relational.instance import Instance
from repro.relational.values import LabeledNull, SkolemValue, constant


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))
JOIN_TEXT = "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"


class TestInstanceFingerprint:
    def test_stable_across_construction_order(self):
        a = instance(SRC, {"Emp": [["e1", "d1"], ["e2", "d1"]],
                           "Dept": [["d1", "h1"]]})
        b = instance(SRC, {"Dept": [["d1", "h1"]],
                           "Emp": [["e2", "d1"], ["e1", "d1"]]})
        assert a.fingerprint() == b.fingerprint()

    def test_differs_on_different_facts(self):
        a = instance(SRC, {"Emp": [["e1", "d1"]]})
        b = instance(SRC, {"Emp": [["e1", "d2"]]})
        assert a.fingerprint() != b.fingerprint()

    def test_differs_on_relation_placement(self):
        pair = schema(relation("P", "x", "y"), relation("Q", "x", "y"))
        a = instance(pair, {"P": [["v", "w"]]})
        b = instance(pair, {"Q": [["v", "w"]]})
        assert a.fingerprint() != b.fingerprint()

    def test_value_kinds_are_tagged(self):
        one = schema(relation("R", "x"))
        with_const = Instance(one, {"R": {(constant("7"),)}})
        with_null = Instance(one, {"R": {(LabeledNull(7),)}})
        with_skolem = Instance(one, {"R": {(SkolemValue("f", (constant(7),)),)}})
        prints = {
            with_const.fingerprint(),
            with_null.fingerprint(),
            with_skolem.fingerprint(),
        }
        assert len(prints) == 3

    def test_scalar_type_matters(self):
        one = schema(relation("R", "x"))
        assert (
            Instance(one, {"R": {(constant(1),)}}).fingerprint()
            != Instance(one, {"R": {(constant("1"),)}}).fingerprint()
        )

    def test_cached_after_first_call(self):
        a = instance(SRC, {"Emp": [["e1", "d1"]]})
        assert a.fingerprint() is a.fingerprint()

    def test_construction_path_does_not_leak_into_the_key(self):
        # The fingerprint hashes the canonical store's packed buffers, so
        # every way of building the same facts — bulk constructor,
        # row-by-row builder, eager and lazy flat-buffer decode, the
        # non-canonical row packer — must yield one cache key.
        from repro.relational.columnar import (
            pack_instance,
            pack_rows,
            unpack_instance,
            unpack_instance_lazy,
        )
        from repro.relational.instance import InstanceBuilder

        facts = {"Emp": [["e1", "d1"], ["e2", "d2"]], "Dept": [["d1", "h1"]]}
        bulk = instance(SRC, facts)
        builder = InstanceBuilder(SRC)
        for name, rows in facts.items():
            for row in rows:
                builder.add_row(name, row)
        built = builder.build()
        buffer = pack_instance(bulk)
        emitted = pack_rows(
            SRC, {n: bulk.rows(n) for n in bulk.relation_names()}
        )
        variants = [
            built,
            unpack_instance(buffer),
            unpack_instance_lazy(buffer),
            unpack_instance(emitted),
        ]
        reference = bulk.fingerprint()
        assert all(v.fingerprint() == reference for v in variants)

    def test_equal_instances_share_a_cache_entry(self):
        cache = ExchangeCache(capacity=4)
        a = instance(SRC, {"Emp": [["e1", "d1"]]})
        b = instance(SRC, {"Emp": [["e1", "d1"]]})  # equal, distinct object
        solution = instance(TGT, {"Office": [["e1", "h", "r"]]})
        cache.store("m", a.fingerprint(), solution)
        assert cache.lookup("m", b.fingerprint()) is solution


class TestMappingFingerprint:
    def test_equal_mappings_agree(self):
        a = SchemaMapping.parse(SRC, TGT, JOIN_TEXT)
        b = SchemaMapping.parse(SRC, TGT, JOIN_TEXT)
        assert mapping_fingerprint(a) == mapping_fingerprint(b)

    def test_different_tgds_differ(self):
        a = SchemaMapping.parse(SRC, TGT, JOIN_TEXT)
        b = SchemaMapping.parse(
            SRC, TGT, "Emp(n, d), Dept(d, h) -> exists m . Office(h, n, m)"
        )
        assert mapping_fingerprint(a) != mapping_fingerprint(b)

    def test_target_dependencies_differ(self):
        egd = Egd(parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
                  Var("h"), Var("h2"))
        a = SchemaMapping.parse(SRC, TGT, JOIN_TEXT)
        b = SchemaMapping.parse(SRC, TGT, JOIN_TEXT, [egd])
        assert mapping_fingerprint(a) != mapping_fingerprint(b)


class TestExchangeCache:
    def solution(self, tag):
        return instance(TGT, {"Office": [[tag, "h", "r"]]})

    def test_miss_then_hit(self):
        cache = ExchangeCache(capacity=2)
        assert cache.lookup("m", "s") is None
        cache.store("m", "s", self.solution("a"))
        assert cache.lookup("m", "s") is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = ExchangeCache(capacity=2)
        cache.store("m", "s1", self.solution("a"))
        cache.store("m", "s2", self.solution("b"))
        cache.lookup("m", "s1")          # s1 becomes most-recent
        cache.store("m", "s3", self.solution("c"))  # evicts s2
        assert cache.lookup("m", "s2") is None
        assert cache.lookup("m", "s1") is not None
        assert cache.lookup("m", "s3") is not None
        assert len(cache) == 2

    def test_mapping_key_separates_entries(self):
        cache = ExchangeCache(capacity=4)
        cache.store("m1", "s", self.solution("a"))
        assert cache.lookup("m2", "s") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ExchangeCache(capacity=0)

    def test_clear(self):
        cache = ExchangeCache(capacity=2)
        cache.store("m", "s", self.solution("a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("m", "s") is None

    def test_repr_mentions_counts(self):
        cache = ExchangeCache(capacity=3)
        cache.store("m", "s", self.solution("a"))
        cache.lookup("m", "s")
        assert "1/3" in repr(cache)
        assert "hits=1" in repr(cache)


class TestProvenanceEntries:
    def make_solution(self):
        return instance(TGT, {"Office": [["e1", "h1", "r1"]]})

    def test_provenance_less_entry_misses_when_required(self):
        from repro.provenance import ProvenanceLog

        cache = ExchangeCache(4)
        cache.store("m", "s", self.make_solution())
        assert cache.lookup("m", "s") is not None
        assert cache.lookup_entry("m", "s", require_provenance=True) is None

    def test_entry_with_provenance_satisfies_both_lookups(self):
        from repro.provenance import ProvenanceLog

        cache = ExchangeCache(4)
        log = ProvenanceLog()
        solution = self.make_solution()
        cache.store("m", "s", solution, log)
        assert cache.lookup("m", "s") == solution
        entry = cache.lookup_entry("m", "s", require_provenance=True)
        assert entry is not None
        assert entry[0] == solution and entry[1] is log

    def test_storing_again_upgrades_in_place(self):
        from repro.provenance import ProvenanceLog

        cache = ExchangeCache(4)
        solution = self.make_solution()
        cache.store("m", "s", solution)
        cache.store("m", "s", solution, ProvenanceLog())
        assert cache.lookup_entry("m", "s", require_provenance=True) is not None
