"""Tests for premise co-occurrence sharding (repro.exec.partition)."""

import pytest

from repro.exec import (
    co_occurrence_components,
    parallelizability,
    partition_source,
    premise_join_structure,
    shard_preview,
)
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import SchemaMapping, StTgd
from repro.mapping.dependencies import Egd, TargetTgd
from repro.relational import instance, relation, schema


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))
JOIN_TEXT = "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"


def join_mapping(target_dependencies=()):
    return SchemaMapping.parse(SRC, TGT, JOIN_TEXT, target_dependencies)


def clustered_source(employees=12, depts=4):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


class TestPremiseJoinStructure:
    def test_joined_premise_is_one_component(self):
        structure = premise_join_structure(StTgd.parse(JOIN_TEXT))
        assert structure.components == ((0, 1),)
        assert not structure.cross_joining
        assert structure.reason is None

    def test_shared_classes_name_the_join_variable(self):
        structure = premise_join_structure(StTgd.parse(JOIN_TEXT))
        d_class = structure.join_classes[Var("d")]
        assert d_class in structure.shared_classes
        assert structure.join_classes[Var("n")] not in structure.shared_classes

    def test_disconnected_atoms_are_cross_joining(self):
        structure = premise_join_structure(
            StTgd.parse("Emp(n, d), Dept(e, h) -> exists m . Office(n, h, m)")
        )
        assert structure.cross_joining
        assert "disconnected join groups" in structure.reason

    def test_variable_equality_joins_atoms(self):
        structure = premise_join_structure(
            StTgd.parse(
                "Emp(n, d), Dept(e, h), d = e -> exists m . Office(n, h, m)"
            )
        )
        assert not structure.cross_joining
        assert structure.components == ((0, 1),)

    def test_inequality_spanning_atoms_is_cross_joining(self):
        structure = premise_join_structure(
            StTgd.parse(
                "Emp(n, d), Dept(e, h), d != e -> exists m . Office(n, h, m)"
            )
        )
        assert structure.cross_joining
        assert "constrains without equating" in structure.reason

    def test_single_atom_premise(self):
        structure = premise_join_structure(
            StTgd.parse("Emp(n, d) -> exists m . Office(n, n, m)")
        )
        assert structure.components == ((0,),)
        assert not structure.cross_joining


class TestParallelizability:
    def test_plain_join_mapping_is_parallelizable(self):
        report = parallelizability(join_mapping())
        assert report.parallelizable
        assert report.blockers == ()
        assert "shard-parallelizable" in report.describe()

    def test_egd_blocks_and_is_named(self):
        egd = Egd(parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
                  Var("h"), Var("h2"))
        report = parallelizability(join_mapping([egd]))
        assert not report.parallelizable
        (blocker,) = report.blockers
        assert blocker.kind == "target-dependency"
        assert "egd" in blocker.description

    def test_target_tgd_blocks(self):
        from repro.logic.parser import parse_rule

        rule = parse_rule("Office(n, h, m) -> Office(h, h, m)")
        dep = TargetTgd(rule.lhs, rule.branches[0][1])
        report = parallelizability(join_mapping([dep]))
        assert not report.parallelizable
        assert "target tgd" in report.blockers[0].description

    def test_cross_join_degrades_but_stays_parallelizable(self):
        mapping = SchemaMapping.parse(
            SRC, TGT, "Emp(n, d), Dept(e, h) -> exists m . Office(n, h, m)"
        )
        report = parallelizability(mapping)
        assert report.parallelizable
        assert report.cross_joining_tgds == (0,)
        assert "collapsing premises" in report.describe()


class TestPartitionSource:
    def test_shards_partition_the_source_exactly(self):
        source = clustered_source()
        partitioning = partition_source(join_mapping(), source, 4)
        all_facts = [f for shard in partitioning.shards for f in shard.facts()]
        assert sorted(all_facts, key=repr) == sorted(source.facts(), key=repr)
        assert len(all_facts) == source.size()  # disjoint

    def test_no_premise_binding_spans_shards(self):
        source = clustered_source()
        partitioning = partition_source(join_mapping(), source, 4)
        for shard in partitioning.shards:
            for fact in shard.facts():
                dept = fact.row[1] if fact.relation == "Emp" else fact.row[0]
                # every fact mentioning this dept is in the same shard
                same_dept = [
                    other
                    for other_shard in partitioning.shards
                    for other in other_shard.facts()
                    if (other.row[1] if other.relation == "Emp" else other.row[0])
                    == dept
                ]
                assert all(f in shard for f in same_dept)

    def test_respects_max_shards(self):
        source = clustered_source(employees=20, depts=10)
        assert len(partition_source(join_mapping(), source, 3).shards) == 3
        assert len(partition_source(join_mapping(), source, 1).shards) == 1

    def test_shards_capped_by_component_count(self):
        source = clustered_source(employees=8, depts=2)
        partitioning = partition_source(join_mapping(), source, 8)
        assert len(partitioning.shards) == partitioning.components == 2

    def test_rejects_nonpositive_max_shards(self):
        with pytest.raises(ValueError):
            partition_source(join_mapping(), clustered_source(), 0)

    def test_inert_facts_are_distributed_not_dropped(self):
        # Dept d99 has no employees: it matches the Dept atom, so it is
        # active; an unmatched relation row would be inert.  Use a source
        # relation never mentioned by any premise.
        wide_src = schema(
            relation("Emp", "name", "dept"),
            relation("Dept", "dept", "head"),
            relation("Audit", "entry"),
        )
        mapping = SchemaMapping.parse(wide_src, TGT, JOIN_TEXT)
        source = instance(
            wide_src,
            {
                "Emp": [[f"e{i}", f"d{i % 2}"] for i in range(4)],
                "Dept": [["d0", "h0"], ["d1", "h1"]],
                "Audit": [["a1"], ["a2"], ["a3"]],
            },
        )
        partitioning = partition_source(mapping, source, 2)
        total = sum(partitioning.shard_sizes)
        assert total == source.size()


class TestComponentsAndPreview:
    def test_components_largest_first_and_inert_omitted(self):
        source = clustered_source(employees=9, depts=3)  # 3 emps + 1 dept each
        components = co_occurrence_components(join_mapping(), source)
        sizes = [len(c) for c in components]
        assert sizes == sorted(sizes, reverse=True)
        assert sum(sizes) == source.size()

    def test_shard_preview_mentions_components_and_workers(self):
        text = shard_preview(join_mapping(), clustered_source())
        assert "co-occurrence components" in text
        assert "shards at 2 workers" in text

    def test_shard_preview_on_blocked_mapping(self):
        egd = Egd(parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
                  Var("h"), Var("h2"))
        text = shard_preview(join_mapping([egd]), clustered_source())
        assert "not shard-parallelizable" in text
