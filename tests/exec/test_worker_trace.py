"""Worker trace stitching: shard spans land under the parent request.

Pool workers run in separate processes, so their spans cannot share the
parent's tracer.  Each worker records its own trace, ships it home as
records, and the executor grafts the rebuilt forest under an
``exchange.workers`` span — one ``--trace-json`` export then shows the
whole request, shard chases included, wired by id/parent links.
"""

import json

from repro.exec import ParallelExchange
from repro.mapping import SchemaMapping
from repro.obs import span_records, trace_to_json_lines, tracing
from repro.relational import instance, relation, schema


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))


def join_mapping():
    return SchemaMapping.parse(
        SRC, TGT, "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"
    )


def clustered_source(employees=12, depts=4):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


def find(span, name):
    return [s for s, _ in span.walk() if s.name == name]


class TestWorkerSpanStitching:
    def test_shard_chases_nest_under_exchange_workers(self):
        with tracing() as tracer:
            with ParallelExchange(join_mapping(), workers=2, min_parallel_facts=0) as executor:
                executor.exchange(clustered_source())
        (root,) = [s for s in tracer.spans() if s.name == "exchange.parallel"]
        (workers,) = find(root, "exchange.workers")
        shard_chases = [c for c in workers.children if c.name == "chase"]
        assert len(shard_chases) == 2
        assert sorted(c.attributes["shard"] for c in shard_chases) == [0, 1]
        # Worker-side nested spans survive the trip.
        for chase_span in shard_chases:
            assert find(chase_span, "chase.st_tgds")

    def test_json_lines_wire_worker_spans_to_parent(self):
        with tracing() as tracer:
            with ParallelExchange(join_mapping(), workers=2, min_parallel_facts=0) as executor:
                executor.exchange(clustered_source())
        records = [
            json.loads(line) for line in trace_to_json_lines(tracer).splitlines()
        ]
        by_id = {r["id"]: r for r in records}
        # Ids are unique across parent and rebuilt worker spans.
        assert len(by_id) == len(records)
        workers = next(r for r in records if r["name"] == "exchange.workers")
        shard_chases = [
            r
            for r in records
            if r["name"] == "chase" and r["parent"] == workers["id"]
        ]
        assert len(shard_chases) == 2
        # The chain reaches the root: exchange.workers hangs off the request.
        assert by_id[workers["parent"]]["name"] == "exchange.parallel"

    def test_untraced_exchange_ships_no_spans(self):
        # The worker payload only carries spans when the parent traces —
        # the disabled path stays allocation-free.
        with ParallelExchange(join_mapping(), workers=2, min_parallel_facts=0) as executor:
            solution = executor.exchange(clustered_source())
        assert solution.size() > 0


class TestSerialPathUnaffected:
    def test_serial_fallback_has_no_workers_span(self):
        with tracing() as tracer:
            with ParallelExchange(join_mapping(), workers=1) as executor:
                executor.exchange(clustered_source())
        names = {s.name for root in tracer.spans() for s, _ in root.walk()}
        assert "exchange.workers" not in names
