"""Tests for the shard-parallel exchange executor (repro.exec.parallel)."""

import pytest

from repro.exec import ExchangeCache, ParallelExchange
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import SchemaMapping, universal_solution
from repro.mapping.dependencies import Egd
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.relational.instance import Instance
from repro.relational.values import LabeledNull, constant


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))
JOIN_TEXT = "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"


def join_mapping(target_dependencies=()):
    return SchemaMapping.parse(SRC, TGT, JOIN_TEXT, target_dependencies)


def clustered_source(employees=12, depts=4):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


@pytest.fixture(scope="module")
def pool_executor():
    """One warm 2-worker executor shared by the module (pool startup is slow)."""
    with ParallelExchange(
        join_mapping(), workers=2, min_parallel_facts=0
    ) as executor:
        yield executor


class TestParallelMatchesSerial:
    def test_canonically_equal_to_serial_chase(self, pool_executor):
        source = clustered_source()
        serial = universal_solution(join_mapping(), source)
        parallel = pool_executor.exchange(source)
        assert canonically_equal(serial, parallel)

    def test_source_nulls_survive_merge(self, pool_executor):
        base = clustered_source(employees=6, depts=3)
        rows = set(base.rows("Emp")) | {(LabeledNull(2), constant("d0")),
                                        (LabeledNull(9), constant("d2"))}
        source = Instance(SRC, {"Emp": rows, "Dept": base.rows("Dept")})
        parallel = pool_executor.exchange(source)
        serial = universal_solution(join_mapping(), source)
        assert canonically_equal(serial, parallel)
        assert source.nulls() <= parallel.nulls() | source.nulls()
        # invented nulls must not collide with the source's
        invented = parallel.nulls() - source.nulls()
        assert {n.label for n in invented}.isdisjoint(
            {n.label for n in source.nulls()}
        )

    def test_empty_source(self, pool_executor):
        source = instance(SRC, {})
        assert pool_executor.exchange(source).is_empty()

    def test_exchange_many_matches_individual(self, pool_executor):
        sources = [clustered_source(employees=n, depts=2) for n in (4, 6, 8)]
        batch = pool_executor.exchange_many(sources)
        for source, solution in zip(sources, batch):
            assert canonically_equal(
                universal_solution(join_mapping(), source), solution
            )


class TestSerialFallbacks:
    def test_egd_mapping_falls_back_and_is_correct(self):
        egd = Egd(parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
                  Var("h"), Var("h2"))
        mapping = join_mapping([egd])
        executor = ParallelExchange(mapping, workers=4)
        assert not executor.parallelizable
        source = clustered_source(employees=6, depts=2)
        assert canonically_equal(
            executor.exchange(source), universal_solution(mapping, source)
        )
        assert executor._pool is None  # never started a pool

    def test_workers_one_stays_serial(self):
        executor = ParallelExchange(join_mapping(), workers=1)
        source = clustered_source(employees=4, depts=2)
        result = executor.exchange(source)
        assert canonically_equal(
            result, universal_solution(join_mapping(), source)
        )
        assert executor._pool is None

    def test_min_parallel_facts_gates_sharding(self):
        executor = ParallelExchange(
            join_mapping(), workers=2, min_parallel_facts=10_000
        )
        source = clustered_source()
        executor.exchange(source)
        assert executor._pool is None

    def test_auto_threshold_keeps_small_sources_serial(self):
        # Default (min_parallel_facts unset) is the auto threshold: a
        # small source never pays pool dispatch, and the result still
        # matches the serial chase (it *is* the serial chase).
        executor = ParallelExchange(join_mapping(), workers=2)
        source = clustered_source()
        result = executor.exchange(source)
        assert executor._pool is None
        assert canonically_equal(
            result, universal_solution(join_mapping(), source)
        )

    def test_forced_dispatch_with_zero_threshold(self, pool_executor):
        # The module fixture pins min_parallel_facts=0, so even tiny
        # sources shard across the pool.
        pool_executor.exchange(clustered_source())
        assert pool_executor._pool is not None

    def test_default_workers_is_one(self):
        assert ParallelExchange(join_mapping()).workers == 1


class TestWorkerShardCache:
    """The per-worker decoded-shard LRU (repeated exchanges reuse stores)."""

    def setup_method(self):
        from repro.exec import parallel

        parallel._WORKER_SHARDS.clear()

    def test_same_buffer_decodes_once(self):
        from repro.exec.parallel import _decode_shard
        from repro.relational.columnar import pack_instance

        buffer = pack_instance(clustered_source(employees=4, depts=2))
        first = _decode_shard(buffer)
        assert _decode_shard(buffer) is first
        assert first.same_facts(clustered_source(employees=4, depts=2))

    def test_cache_evicts_least_recent(self):
        from repro.exec import parallel
        from repro.relational.columnar import pack_instance

        buffers = [
            pack_instance(clustered_source(employees=n, depts=2))
            for n in range(2, 4 + parallel._WORKER_SHARD_CACHE_CAP)
        ]
        decoded = [parallel._decode_shard(b) for b in buffers]
        assert len(parallel._WORKER_SHARDS) == parallel._WORKER_SHARD_CACHE_CAP
        # the oldest entry fell out: decoding it again builds a new object
        assert parallel._decode_shard(buffers[0]) is not decoded[0]
        # the newest is still cached
        assert parallel._decode_shard(buffers[-1]) is decoded[-1]


class TestCacheIntegration:
    def test_repeat_source_hits_cache(self):
        with ParallelExchange(join_mapping(), workers=1, cache=4) as executor:
            source = clustered_source(employees=4, depts=2)
            first = executor.exchange(source)
            second = executor.exchange(source)
            assert second is first
            assert executor.cache.hits == 1
            assert executor.cache.misses == 1

    def test_equal_instances_share_entry(self):
        with ParallelExchange(join_mapping(), workers=1, cache=4) as executor:
            a = clustered_source(employees=4, depts=2)
            b = clustered_source(employees=4, depts=2)  # equal, distinct object
            assert executor.exchange(a) is executor.exchange(b)

    def test_cache_object_can_be_shared(self):
        cache = ExchangeCache(capacity=8)
        with ParallelExchange(join_mapping(), workers=1, cache=cache) as executor:
            assert executor.cache is cache
            executor.exchange(clustered_source(employees=4, depts=2))
        assert len(cache) == 1

    def test_exchange_many_counts_hits(self):
        with ParallelExchange(join_mapping(), workers=1, cache=4) as executor:
            source = clustered_source(employees=4, depts=2)
            executor.exchange_many([source, source, source])
            assert executor.cache.hits == 2
            assert executor.cache.misses == 1


class TestLifecycle:
    def test_close_is_idempotent(self, pool_executor):
        executor = ParallelExchange(
            join_mapping(), workers=2, min_parallel_facts=0
        )
        executor.exchange(clustered_source())
        executor.close()
        executor.close()
        # exchanging again restarts the pool transparently
        result = executor.exchange(clustered_source())
        assert result.size() > 0
        executor.close()

    def test_report_property_names_blockers(self):
        egd = Egd(parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
                  Var("h"), Var("h2"))
        executor = ParallelExchange(join_mapping([egd]), workers=2)
        assert "egd" in executor.report.blockers[0].description
