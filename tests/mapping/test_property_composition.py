"""Property-based test (hypothesis): composition commutes with the chase.

For a random **full** mapping ``M1 : A → B`` (full st-tgds are closed
under composition) and a random mapping ``M2 : B → C``, the composed
mapping must satisfy

    chase(compose(M1, M2), S)  ≡  chase(M2, chase(M1, S))

up to canonical equality (falling back to homomorphic equivalence, the
right notion when labelled-null naming differs).  This is the semantic
contract the `repro optimize` pipeline-collapse rewrite relies on.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mapping import (
    CompositionError,
    SchemaMapping,
    compose,
    universal_solution,
)
from repro.relational import canonically_equal, homomorphically_equivalent
from repro.workloads.generators import (
    random_instance,
    random_mapping,
    random_schema,
)

seeds = st.integers(min_value=0, max_value=300)


def _composable_pair(seed):
    rng = random.Random(seed)
    A = random_schema(rng, 2, prefix="A")
    B = random_schema(rng, 2, prefix="B")
    C = random_schema(rng, 2, prefix="C")
    # M1 full: no existentials, so compose() stays first-order.
    m1 = random_mapping(A, B, rng, n_tgds=2, existential_probability=0.0)
    m2 = random_mapping(B, C, rng, n_tgds=2)
    source = random_instance(A, rng, rows_per_relation=4)
    return m1, m2, source


@settings(max_examples=60, deadline=None)
@given(seeds)
def test_composed_chase_equals_two_hop_chase(seed):
    m1, m2, source = _composable_pair(seed)
    try:
        composed = compose(m1, m2)
    except CompositionError:
        # A Skolem symbol of M2 landed in several clauses: the composition
        # genuinely leaves the st-tgd language.  Not this property's case.
        assume(False)
    assert isinstance(composed, SchemaMapping)  # full M1 ⇒ first-order

    mid = universal_solution(m1, source)
    expected = universal_solution(m2, mid.cast(m2.source))
    actual = universal_solution(composed, source)
    assert canonically_equal(actual, expected) or homomorphically_equivalent(
        actual, expected
    )
