"""Tests for certain answers of conjunctive queries."""

import pytest

from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import SchemaMapping, certain_answers, naive_answers
from repro.relational import constant, instance, relation, schema


@pytest.fixture
def setting():
    source = schema(relation("Emp", "name"), relation("Boss", "emp", "boss"))
    target = schema(relation("Manager", "emp", "mgr"))
    mapping = SchemaMapping.parse(
        source,
        target,
        """
        Emp(x) -> exists y . Manager(x, y)
        Boss(x, b) -> Manager(x, b)
        """,
    )
    I = instance(
        source,
        {"Emp": [["ann"], ["bob"]], "Boss": [["ann", "mona"]]},
    )
    return mapping, I


class TestCertainAnswers:
    def test_null_answers_excluded(self, setting):
        mapping, I = setting
        query = parse_conjunction("Manager(x, y)")
        answers = certain_answers(mapping, I, query, [Var("x"), Var("y")])
        # Only ann's manager is certain; bob's manager is a null.
        assert answers == {(constant("ann"), constant("mona"))}

    def test_existentially_quantified_query(self, setting):
        mapping, I = setting
        query = parse_conjunction("Manager(x, y)")
        answers = certain_answers(mapping, I, query, [Var("x")])
        # "Who has some manager" is certain for both.
        assert answers == {(constant("ann"),), (constant("bob"),)}

    def test_join_query(self, setting):
        mapping, I = setting
        query = parse_conjunction("Manager(x, y), Manager(y, z)")
        answers = certain_answers(mapping, I, query, [Var("x")])
        assert answers == set()  # mona is nobody's employee for certain

    def test_empty_source(self, setting):
        mapping, _ = setting
        from repro.relational import empty_instance

        query = parse_conjunction("Manager(x, y)")
        assert (
            certain_answers(
                mapping, empty_instance(mapping.source), query, [Var("x")]
            )
            == set()
        )


class TestNaiveAnswers:
    def test_nulls_filtered_from_heads(self):
        from repro.relational import Fact, Instance, LabeledNull

        s = schema(relation("R", "a", "b"))
        inst = Instance(
            s,
            [
                Fact("R", (constant(1), LabeledNull(0))),
                Fact("R", (constant(1), constant(2))),
            ],
        )
        query = parse_conjunction("R(x, y)")
        assert naive_answers(query, [Var("x"), Var("y")], inst) == {
            (constant(1), constant(2))
        }

    def test_null_join_still_counts_when_not_projected(self):
        from repro.relational import Fact, Instance, LabeledNull

        s = schema(relation("R", "a", "b"))
        inst = Instance(s, [Fact("R", (constant(1), LabeledNull(0)))])
        query = parse_conjunction("R(x, y)")
        assert naive_answers(query, [Var("x")], inst) == {(constant(1),)}
