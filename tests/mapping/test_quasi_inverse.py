"""Tests for quasi-inverses and data-exchange equivalence."""

import pytest

from repro.mapping import (
    SchemaMapping,
    data_exchange_equivalent,
    equivalence_classes,
    is_quasi_inverse_on,
    maximum_recovery,
)
from repro.relational import instance, relation, schema
from repro.workloads import father_mother_scenario


@pytest.fixture
def setting():
    scenario = father_mother_scenario()
    I_father = scenario.sample
    I_mother = instance(scenario.source, {"Mother": [["Leslie", "Alice"]]})
    I_other = instance(scenario.source, {"Father": [["X", "Y"]]})
    return scenario.mapping, I_father, I_mother, I_other


class TestDataExchangeEquivalence:
    def test_father_and_mother_variants_equivalent(self, setting):
        mapping, I_father, I_mother, _ = setting
        assert data_exchange_equivalent(mapping, I_father, I_mother)

    def test_different_data_not_equivalent(self, setting):
        mapping, I_father, _, I_other = setting
        assert not data_exchange_equivalent(mapping, I_father, I_other)

    def test_reflexive(self, setting):
        mapping, I_father, *_ = setting
        assert data_exchange_equivalent(mapping, I_father, I_father)

    def test_injective_mapping_has_singleton_classes(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        I1 = instance(source, {"A": [["u"]]})
        I2 = instance(source, {"A": [["v"]]})
        assert not data_exchange_equivalent(mapping, I1, I2)


class TestEquivalenceClasses:
    def test_partition(self, setting):
        mapping, I_father, I_mother, I_other = setting
        classes = equivalence_classes(mapping, [I_father, I_mother, I_other])
        assert len(classes) == 2
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 2]

    def test_empty_input(self, setting):
        mapping, *_ = setting
        assert equivalence_classes(mapping, []) == []


class TestQuasiInverse:
    def test_maximum_recovery_is_quasi_inverse(self, setting):
        """Example 3's recovery: not an inverse, but a quasi-inverse."""
        mapping, I_father, I_mother, _ = setting
        recovery = maximum_recovery(mapping)
        assert is_quasi_inverse_on(
            mapping,
            recovery,
            sources=[I_father, I_mother],
            universe=[I_father, I_mother],
        )

    def test_fails_with_inequivalent_admissions(self, setting):
        """A vacuous 'recovery' admitting everything is not a quasi-inverse."""
        from repro.logic.formulas import Conjunction, Disjunction, atom
        from repro.mapping.inversion import DisjunctiveMapping, DisjunctiveTgd

        mapping, I_father, I_mother, I_other = setting
        # Rule with an unsatisfiable-ish premise: admits any source.
        vacuous = DisjunctiveMapping(mapping.target, mapping.source, [])
        assert not is_quasi_inverse_on(
            mapping, vacuous, [I_father], [I_father, I_other]
        )

    def test_requires_some_admission(self, setting):
        """A recovery admitting nothing fails the check."""
        from repro.logic.formulas import Conjunction, Disjunction, atom
        from repro.mapping.inversion import DisjunctiveMapping, DisjunctiveTgd

        mapping, I_father, *_ = setting
        # Parent(x,y) → Father('impossible', 'row'): never witnessable.
        from repro.logic.terms import const

        rule = DisjunctiveTgd(
            Conjunction([atom("Parent", "x", "y")]),
            Disjunction([Conjunction([atom("Father", const("no"), const("pe"))])]),
        )
        never = DisjunctiveMapping(mapping.target, mapping.source, [rule])
        assert not is_quasi_inverse_on(mapping, never, [I_father], [I_father])
