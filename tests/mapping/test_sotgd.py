"""Tests for SO-tgds: free-interpretation chase and true SO semantics."""

import pytest

from repro.logic.formulas import Atom, Conjunction, Equality
from repro.logic.parser import parse_conjunction
from repro.logic.terms import FuncTerm, Var
from repro.mapping.sotgd import SOClause, SOMapping
from repro.relational import SkolemValue, constant, instance, relation, schema


@pytest.fixture
def boss_mapping():
    """The SO-tgd of Example 2, written by hand."""
    A = schema(relation("Emp", "name"))
    C = schema(relation("Boss", "emp", "boss"), relation("SelfMngr", "emp"))
    f_x = FuncTerm("f", (Var("x"),))
    clause1 = SOClause(
        parse_conjunction("Emp(x)"),
        Conjunction([Atom("Boss", (Var("x"), f_x))]),
    )
    clause2 = SOClause(
        Conjunction(
            list(parse_conjunction("Emp(x)").literals)
            + [Equality(Var("x"), f_x)]
        ),
        parse_conjunction("SelfMngr(x)"),
    )
    return A, C, SOMapping(A, C, [clause1, clause2])


class TestStructure:
    def test_functions_inferred(self, boss_mapping):
        _, _, so = boss_mapping
        assert so.functions == ("f",)

    def test_clause_functions(self, boss_mapping):
        _, _, so = boss_mapping
        assert so.clauses[0].functions() == {"f"}

    def test_inconsistent_arity_detected(self):
        A = schema(relation("Emp", "name"))
        C = schema(relation("T", "a", "b"))
        clause = SOClause(
            parse_conjunction("Emp(x)"),
            Conjunction(
                [
                    Atom(
                        "T",
                        (
                            FuncTerm("f", (Var("x"),)),
                            FuncTerm("f", (Var("x"), Var("x"))),
                        ),
                    )
                ]
            ),
        )
        so = SOMapping(A, C, [clause])
        I = instance(A, {"Emp": [["a"]]})
        with pytest.raises(ValueError, match="arities"):
            so.satisfied_by(I, instance(C, {}))


class TestFreeChase:
    def test_skolem_values_produced(self, boss_mapping):
        A, C, so = boss_mapping
        I = instance(A, {"Emp": [["a"]]})
        result = so.chase(I)
        assert result.rows("Boss") == {
            (constant("a"), SkolemValue("f", (constant("a"),)))
        }

    def test_self_manager_never_fires_under_free_interpretation(self, boss_mapping):
        A, C, so = boss_mapping
        I = instance(A, {"Emp": [["a"]]})
        assert so.chase(I).rows("SelfMngr") == frozenset()

    def test_chase_is_deterministic(self, boss_mapping):
        A, _, so = boss_mapping
        I = instance(A, {"Emp": [["a"], ["b"]]})
        assert so.chase(I) == so.chase(I)


class TestTrueSemantics:
    def test_witnessing_interpretation_found(self, boss_mapping):
        A, C, so = boss_mapping
        I = instance(A, {"Emp": [["a"]]})
        K = instance(C, {"Boss": [["a", "m"]]})
        assert so.satisfied_by(I, K, extra_codomain=[constant("m")])

    def test_unsatisfiable_pair_rejected(self, boss_mapping):
        A, C, so = boss_mapping
        I = instance(A, {"Emp": [["a"]]})
        K = instance(C, {"SelfMngr": [["a"]]})  # no Boss fact at all
        assert not so.satisfied_by(I, K)

    def test_search_space_guard(self, boss_mapping):
        A, C, so = boss_mapping
        rows = [[f"e{i}"] for i in range(8)]
        I = instance(A, {"Emp": rows})
        K = instance(C, {"Boss": [[f"e{i}", "m"] for i in range(8)]})
        with pytest.raises(ValueError, match="too large"):
            so.satisfied_by(I, K, max_interpretations=10)

    def test_empty_source_trivially_satisfied(self, boss_mapping):
        A, C, so = boss_mapping
        from repro.relational import empty_instance

        assert so.satisfied_by(empty_instance(A), empty_instance(C))
