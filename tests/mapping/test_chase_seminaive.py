"""Semi-naive target chase and indexed evaluation: equivalence guarantees.

The acceptance property of the performance layer: chasing with the
indexed evaluator yields **byte-identical** universal solutions (same
facts, same null labels — not merely isomorphic) to chasing with index
probing disabled, because firing order is fixed by the canonical binding
sort, not by enumeration order.  Plus behavioural tests of the
semi-naive rounds themselves: transitive closures reach the same
fixpoint, egd/tgd interleavings converge, and delta metrics are
recorded.
"""

from __future__ import annotations

import pytest

from repro.logic.evaluation import set_indexes_enabled
from repro.logic.parser import parse_conjunction, parse_rule
from repro.logic.terms import Var
from repro.mapping import ChaseVariant, SchemaMapping, StTgd, chase, universal_solution
from repro.mapping.dependencies import Egd, TargetTgd
from repro.obs import collecting
from repro.relational import constant, instance, relation, schema
from repro.workloads import emp_manager_scenario


def target_tgd(text):
    rule = parse_rule(text)
    return TargetTgd(rule.lhs, rule.branches[0][1])


def closure_mapping():
    """E edges copied to the target, closed transitively there."""
    source = schema(relation("E0", "a", "b"))
    target = schema(relation("E", "a", "b"))
    return SchemaMapping(
        source,
        target,
        [StTgd.parse("E0(x, y) -> E(x, y)")],
        [target_tgd("E(x, y), E(y, z) -> E(x, z)")],
    )


def chain_instance(source_schema, length):
    return instance(
        source_schema, {"E0": [[f"v{i}", f"v{i + 1}"] for i in range(length)]}
    )


def both_modes(mapping, source, variant=ChaseVariant.NAIVE):
    """Chase once with index probing on and once with it off."""
    results = []
    for enabled in (True, False):
        try:
            set_indexes_enabled(enabled)
            results.append(chase(mapping, source, variant))
        finally:
            set_indexes_enabled(None)
    return results


class TestIndexedScanIdentical:
    def test_e1_universal_solution_byte_identical(self):
        scenario = emp_manager_scenario()
        source = instance(
            scenario.source, {"Emp": [[f"emp{i}"] for i in range(50)]}
        )
        indexed, scanned = both_modes(scenario.mapping, source)
        assert indexed.solution == scanned.solution  # same facts, same nulls
        assert indexed.statistics.as_dict() == scanned.statistics.as_dict()

    def test_transitive_closure_byte_identical(self):
        mapping = closure_mapping()
        source = chain_instance(mapping.source, 12)
        indexed, scanned = both_modes(mapping, source)
        assert indexed.solution == scanned.solution
        assert indexed.statistics.as_dict() == scanned.statistics.as_dict()
        # The closure of a 12-chain has 12·13/2 edges.
        assert len(indexed.solution.rows("E")) == 12 * 13 // 2

    def test_standard_variant_byte_identical(self):
        source = schema(relation("Takes", "s", "c"))
        target = schema(relation("Student", "s"), relation("Enr", "s", "c"))
        mapping = SchemaMapping(
            source,
            target,
            [
                StTgd.parse("Takes(s, c) -> Student(s), Enr(s, c)"),
                StTgd.parse("Takes(s, c) -> Student(s)"),
            ],
        )
        I = instance(
            source, {"Takes": [[f"s{i % 7}", f"c{i}"] for i in range(30)]}
        )
        indexed, scanned = both_modes(mapping, I, ChaseVariant.STANDARD)
        assert indexed.solution == scanned.solution

    def test_egd_plus_tgd_byte_identical(self):
        source = schema(relation("Emp", "n"), relation("Boss", "n", "b"))
        target = schema(relation("Manager", "emp", "mgr"), relation("Person", "p"))
        mapping = SchemaMapping(
            source,
            target,
            [
                StTgd.parse("Emp(x) -> exists y . Manager(x, y)"),
                StTgd.parse("Boss(x, b) -> Manager(x, b)"),
            ],
            [
                Egd(
                    parse_conjunction("Manager(x, y), Manager(x, z)"),
                    Var("y"),
                    Var("z"),
                ),
                target_tgd("Manager(x, y) -> Person(x)"),
            ],
        )
        I = instance(
            source,
            {
                "Emp": [[f"e{i}"] for i in range(10)],
                "Boss": [[f"e{i}", f"m{i % 3}"] for i in range(10)],
            },
        )
        indexed, scanned = both_modes(mapping, I)
        assert indexed.solution == scanned.solution
        # Every Emp's null was unified away by the key egd.
        assert indexed.solution.nulls() == set()


class TestSemiNaiveBehaviour:
    def test_closure_fixpoint_multi_round(self):
        mapping = closure_mapping()
        source = chain_instance(mapping.source, 8)
        result = chase(mapping, source)
        assert len(result.solution.rows("E")) == 8 * 9 // 2
        # Semi-naive doubling: the 8-chain closes in ~log rounds, not 1.
        assert 2 <= result.statistics.rounds <= 8

    def test_egd_then_tgd_reaches_joint_fixpoint(self):
        source = schema(relation("Boss", "n", "b"))
        target = schema(relation("Manager", "emp", "mgr"), relation("Mgr", "m"))
        mapping = SchemaMapping(
            source,
            target,
            [StTgd.parse("Boss(x, b) -> Manager(x, b)")],
            [target_tgd("Manager(x, y) -> Mgr(y)")],
        )
        I = instance(source, {"Boss": [["ann", "mona"], ["bob", "mona"]]})
        solution = universal_solution(mapping, I)
        assert solution.rows("Mgr") == {(constant("mona"),)}

    def test_delta_metrics_recorded(self):
        mapping = closure_mapping()
        source = chain_instance(mapping.source, 6)
        with collecting() as registry:
            chase(mapping, source)
            snapshot = registry.snapshot()
        assert snapshot["counters"]["chase.bindings_enumerated"] > 0
        assert snapshot["histograms"]["chase.delta_size"]["count"] >= 2
        # Later rounds enumerate deltas, not the whole instance: the
        # observed delta sizes must shrink below the full closure size.
        assert (
            snapshot["histograms"]["chase.delta_size"]["min"]
            < 6 * 7 // 2
        )

    def test_seminaive_prunes_witnessed_bindings(self):
        mapping = closure_mapping()
        source = chain_instance(mapping.source, 5)
        with collecting() as registry:
            chase(mapping, source)
            counters = registry.snapshot()["counters"]
        assert counters.get("chase.bindings_pruned", 0) > 0

    def test_deterministic_across_runs(self):
        mapping = closure_mapping()
        source = chain_instance(mapping.source, 7)
        first = chase(mapping, source).solution
        second = chase(mapping, source).solution
        assert first == second
