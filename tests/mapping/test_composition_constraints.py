"""Tests for structured composition obstructions and
:func:`compose_with_constraints` (Arenas–Fagin–Nash target constraints).

The de-Skolemization soundness checks each get a witness pair of
mappings whose composition genuinely leaves the st-tgd language; the
constraint-folding path is cross-checked against the materialized
two-hop exchange.
"""

import pytest

from repro.logic.parser import parse_rule
from repro.mapping import (
    CompositionError,
    SchemaMapping,
    StTgd,
    chase,
    compose,
    compose_with_constraints,
    universal_solution,
)
from repro.mapping.dependencies import target_dependency_from_rule
from repro.relational import (
    canonically_equal,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)


def dep(text):
    return target_dependency_from_rule(parse_rule(text))


class TestObstructions:
    def test_partial_arguments_obstruction(self):
        # M1's Skolem f(x) reaches a conclusion that also quantifies w:
        # the SO semantics shares f(x) across w-firings, independent
        # existentials would not.
        A = schema(relation("E", "x"), relation("D", "w"))
        B = schema(relation("F", "x", "y"), relation("Dp", "w"))
        C = schema(relation("G", "u", "v", "w"))
        m1 = SchemaMapping.parse(
            A, B, "E(x) -> exists y . F(x, y)\nD(w) -> Dp(w)"
        )
        m2 = SchemaMapping.parse(B, C, "F(u, v), Dp(w) -> G(u, v, w)")
        with pytest.raises(CompositionError) as err:
            compose_with_constraints(m1, m2)
        obstruction = err.value.obstruction
        assert obstruction is not None
        assert obstruction.kind == "partial-arguments"
        assert obstruction.function
        data = obstruction.as_dict()
        assert data["kind"] == "partial-arguments"

    def test_entangled_function_obstruction(self):
        # Matching F2(a, b) ∧ F2(c, d) against the same Skolem producer
        # puts f(a) and f(c) — one symbol, two maximal terms — into one
        # clause: separate existentials would forget functionality.
        A = schema(relation("E", "x"))
        B = schema(relation("F2", "x", "y"))
        C = schema(relation("P", "b", "d"))
        m1 = SchemaMapping.parse(A, B, "E(x) -> exists y . F2(x, y)")
        m2 = SchemaMapping.parse(B, C, "F2(a, b), F2(c, d) -> P(b, d)")
        with pytest.raises(CompositionError) as err:
            compose_with_constraints(m1, m2)
        assert err.value.obstruction is not None
        assert err.value.obstruction.kind == "entangled-function"

    def test_example_two_premise_function_obstruction(self):
        # The paper's Example 2: the Skolem lands in a composed premise.
        A = schema(relation("Emp", "name"))
        B = schema(relation("Manager", "emp", "mgr"))
        C = schema(relation("SelfMngr", "emp"))
        m1 = SchemaMapping.parse(A, B, "Emp(x) -> exists y . Manager(x, y)")
        m2 = SchemaMapping.parse(B, C, "Manager(x, x) -> SelfMngr(x)")
        with pytest.raises(CompositionError) as err:
            compose_with_constraints(m1, m2)
        assert err.value.obstruction is not None
        assert err.value.obstruction.kind == "premise-function"

    def test_full_composition_has_no_obstruction(self):
        A = schema(relation("S", "a", "b"))
        B = schema(relation("T", "a", "b"))
        C = schema(relation("U", "a", "b"))
        m1 = SchemaMapping.parse(A, B, "S(x, y) -> T(x, y)")
        m2 = SchemaMapping.parse(B, C, "T(x, y) -> U(y, x)")
        composed = compose(m1, m2)
        assert len(composed.tgds) == 1


class TestComposeWithConstraints:
    A = schema(relation("S", "a", "b"))
    B = schema(relation("T", "a", "b"), relation("TRef", "a", "b"))
    C = schema(relation("U", "a", "b"), relation("URef", "a", "b"))

    def _two_hop(self, m1, m2, source):
        mid = chase(m1, source).solution
        return universal_solution(m2, mid.cast(m2.source))

    def test_fk_mid_constraint_folds_into_composition(self):
        m1 = SchemaMapping(
            self.A,
            self.B,
            [StTgd.parse("S(x, y) -> T(x, y)")],
            [dep("T(u, v) -> TRef(u, v)")],
        )
        m2 = SchemaMapping.parse(
            self.B, self.C, "T(x, y) -> U(x, y)\nTRef(x, y) -> URef(x, y)"
        )
        composed = compose_with_constraints(m1, m2)
        source = instance(self.A, {"S": [["1", "2"], ["3", "4"]]})
        direct = universal_solution(composed, source)
        expected = self._two_hop(m1, m2, source)
        assert canonically_equal(direct, expected) or homomorphically_equivalent(
            direct, expected
        )

    def test_final_target_constraints_carry_over(self):
        m1 = SchemaMapping.parse(self.A, self.B, "S(x, y) -> T(x, y)")
        m2 = SchemaMapping(
            self.B,
            self.C,
            [StTgd.parse("T(x, y) -> U(x, y)")],
            [dep("U(u, v) -> URef(u, v)")],
        )
        composed = compose_with_constraints(m1, m2)
        assert composed.target_dependencies == m2.target_dependencies
        source = instance(self.A, {"S": [["1", "2"]]})
        chased = chase(composed, source).solution
        assert chased.rows("URef")

    def test_egd_mid_constraint_is_an_obstruction(self):
        m1 = SchemaMapping(
            self.A,
            self.B,
            [StTgd.parse("S(x, y) -> T(x, y)")],
            [dep("T(u, v) -> u = v")],
        )
        m2 = SchemaMapping.parse(self.B, self.C, "T(x, y) -> U(x, y)")
        with pytest.raises(CompositionError) as err:
            compose_with_constraints(m1, m2)
        assert err.value.obstruction is not None
        assert err.value.obstruction.kind == "mid-constraints"

    def test_joint_premise_mid_constraint_is_an_obstruction(self):
        m1 = SchemaMapping(
            self.A,
            self.B,
            [StTgd.parse("S(x, y) -> T(x, y)")],
            [dep("T(u, v), T(v, w) -> TRef(u, w)")],
        )
        m2 = SchemaMapping.parse(self.B, self.C, "T(x, y) -> U(x, y)")
        with pytest.raises(CompositionError) as err:
            compose_with_constraints(m1, m2)
        assert err.value.obstruction.kind == "mid-constraints"
