"""Tests for target dependencies: egds, target tgds, weak acyclicity."""

import pytest

from repro.logic.formulas import Conjunction, atom, conj
from repro.logic.parser import parse_conjunction, parse_rule
from repro.logic.terms import Var
from repro.mapping.dependencies import (
    Egd,
    TargetTgd,
    egd_from_fd,
    egd_from_key,
    is_weakly_acyclic,
    target_dependencies_from_constraints,
    weak_acyclicity_witness,
)
from repro.relational import (
    FunctionalDependency,
    KeyConstraint,
    instance,
    relation,
    schema,
)


@pytest.fixture
def mgr_schema():
    return schema(relation("Manager", "emp", "mgr"))


class TestEgd:
    def test_satisfied(self, mgr_schema):
        egd = Egd(
            parse_conjunction("Manager(x, y), Manager(x, z)"), Var("y"), Var("z")
        )
        good = instance(mgr_schema, {"Manager": [["a", "m"], ["b", "m"]]})
        assert egd.satisfied_in(good)

    def test_violated(self, mgr_schema):
        egd = Egd(
            parse_conjunction("Manager(x, y), Manager(x, z)"), Var("y"), Var("z")
        )
        bad = instance(mgr_schema, {"Manager": [["a", "m"], ["a", "n"]]})
        assert not egd.satisfied_in(bad)

    def test_equality_variables_must_be_in_premise(self):
        with pytest.raises(ValueError):
            Egd(conj(atom("R", "x")), Var("x"), Var("zz"))


class TestTargetTgd:
    def _fk(self):
        rule = parse_rule("Emp(x, d) -> exists h . Dept(d, h)")
        return TargetTgd(rule.lhs, rule.branches[0][1])

    def test_satisfied(self):
        s = schema(relation("Emp", "n", "d"), relation("Dept", "d", "h"))
        inst = instance(s, {"Emp": [["a", "d1"]], "Dept": [["d1", "h"]]})
        assert self._fk().satisfied_in(inst)

    def test_violated(self):
        s = schema(relation("Emp", "n", "d"), relation("Dept", "d", "h"))
        inst = instance(s, {"Emp": [["a", "dX"]], "Dept": [["d1", "h"]]})
        assert not self._fk().satisfied_in(inst)

    def test_existentials(self):
        tgd = self._fk()
        assert tgd.existential_variables == (Var("h"),)
        assert tgd.frontier == (Var("d"),)


class TestConstraintTranslation:
    def test_fd_to_egds(self):
        s = schema(relation("P", "city", "zip"))
        fd = FunctionalDependency("P", ("city",), ("zip",))
        egds = egd_from_fd(fd, s)
        assert len(egds) == 1
        good = instance(s, {"P": [["c", "z"], ["d", "z"]]})
        bad = instance(s, {"P": [["c", "z1"], ["c", "z2"]]})
        assert egds[0].satisfied_in(good)
        assert not egds[0].satisfied_in(bad)

    def test_fd_with_dependent_in_determinant_skipped(self):
        s = schema(relation("P", "a", "b"))
        fd = FunctionalDependency("P", ("a",), ("a",))
        assert egd_from_fd(fd, s) == []

    def test_key_to_egds(self):
        s = schema(relation("P", "id", "x", "y"))
        egds = egd_from_key(KeyConstraint("P", ("id",)), s)
        assert len(egds) == 2

    def test_bulk_translation(self):
        s = schema(relation("P", "id", "x"))
        deps = target_dependencies_from_constraints(
            [KeyConstraint("P", ("id",)), FunctionalDependency("P", ("id",), ("x",))],
            s,
        )
        assert len(deps) == 2


class TestWeakAcyclicity:
    def _tgd(self, text):
        rule = parse_rule(text)
        return TargetTgd(rule.lhs, rule.branches[0][1])

    def test_copy_tgd_is_weakly_acyclic(self):
        s = schema(relation("A", "x"), relation("B", "x"))
        tgds = [self._tgd("A(x) -> B(x)")]
        assert is_weakly_acyclic(tgds, s)

    def test_existential_self_loop_is_not(self):
        s = schema(relation("E", "a", "b"))
        tgds = [self._tgd("E(x, y) -> exists z . E(y, z)")]
        assert not is_weakly_acyclic(tgds, s)

    def test_two_step_special_cycle(self):
        s = schema(relation("A", "x"), relation("B", "x", "y"))
        tgds = [
            self._tgd("A(x) -> exists y . B(x, y)"),
            self._tgd("B(x, y) -> A(y)"),
        ]
        assert not is_weakly_acyclic(tgds, s)

    def test_unexported_premise_variable_adds_no_edges(self):
        # Dependency-graph edges originate only at positions of universal
        # variables that occur in the conclusion (Fagin et al.); A(x) with
        # x unexported contributes nothing, and the standard chase does
        # terminate here (B already satisfiable after one step).
        s = schema(relation("A", "x"), relation("B", "x"))
        tgds = [
            self._tgd("A(x) -> exists y . B(y)"),
            self._tgd("B(x) -> A(x)"),
        ]
        assert is_weakly_acyclic(tgds, s)

    def test_existential_into_sink_is_fine(self):
        s = schema(relation("A", "x"), relation("B", "x", "y"))
        tgds = [self._tgd("A(x) -> exists y . B(x, y)")]
        assert is_weakly_acyclic(tgds, s)

    def test_empty_set_is_weakly_acyclic(self):
        assert is_weakly_acyclic([], schema())

    def test_constant_in_conclusion_adds_no_edges(self):
        s = schema(relation("A", "x"), relation("B", "x", "y"))
        tgds = [self._tgd('A(x) -> B(x, "chief")')]
        assert is_weakly_acyclic(tgds, s)

    def test_repeated_variable_in_one_atom(self):
        # E(x, x) binds both positions to the same variable; the special
        # edges from both premise positions close a cycle with the regular
        # edge back into position 0.
        s = schema(relation("E", "a", "b"))
        tgds = [self._tgd("E(x, x) -> exists z . E(x, z)")]
        assert not is_weakly_acyclic(tgds, s)

    def test_full_self_reference_is_weakly_acyclic(self):
        # A self-referencing tgd without existentials has only regular
        # cycles, which weak acyclicity allows.
        s = schema(relation("E", "a", "b"))
        tgds = [self._tgd("E(x, y) -> E(y, x)")]
        assert is_weakly_acyclic(tgds, s)


class TestWeakAcyclicityWitness:
    def _tgd(self, text):
        rule = parse_rule(text)
        return TargetTgd(rule.lhs, rule.branches[0][1])

    def test_none_for_acyclic_sets(self):
        assert weak_acyclicity_witness([]) is None
        assert weak_acyclicity_witness([self._tgd("A(x) -> B(x)")]) is None

    def test_self_loop_witness(self):
        witness = weak_acyclicity_witness(
            [self._tgd("E(x, y) -> exists z . E(y, z)")]
        )
        assert witness is not None
        assert witness.positions == (("E", 1),)
        assert witness.labels == ("special",)
        assert witness.tgd_index == 0
        assert witness.existential == "z"
        assert witness.describe() == "(E, 1) --∃--> (E, 1)"

    def test_two_step_witness_names_both_positions(self):
        witness = weak_acyclicity_witness(
            [
                self._tgd("A(x) -> exists y . B(x, y)"),
                self._tgd("B(x, y) -> A(y)"),
            ]
        )
        assert witness is not None
        assert set(witness.positions) == {("A", 0), ("B", 1)}
        assert "special" in witness.labels and "regular" in witness.labels
        assert witness.existential == "y"

    def test_witness_serializes(self):
        witness = weak_acyclicity_witness(
            [self._tgd("E(x, y) -> exists z . E(y, z)")]
        )
        payload = witness.as_dict()
        assert payload["positions"] == [["E", 1]]
        assert payload["labels"] == ["special"]
        assert payload["existential"] == "z"

    def test_bool_api_agrees_with_witness(self):
        cyclic = [self._tgd("E(x, y) -> exists z . E(y, z)")]
        acyclic = [self._tgd("A(x) -> exists y . B(x, y)")]
        assert is_weakly_acyclic(cyclic) is (weak_acyclicity_witness(cyclic) is None)
        assert is_weakly_acyclic(acyclic) is (
            weak_acyclicity_witness(acyclic) is None
        )
