"""Tests for Figure 2's schema-evolution-by-mapping-operators route."""

import pytest

from repro.mapping import (
    EvolutionAmbiguity,
    SchemaMapping,
    evolution_is_ambiguous,
    evolve_source,
    first_branch_chooser,
    maximum_recovery,
    recovery_to_sttgds,
    universal_solution,
)
from repro.relational import constant, instance, relation, schema


@pytest.fixture
def base():
    """M : A → B with A = {Emp(name, dept)}, B = {Works(name, dept)}."""
    A = schema(relation("Emp", "name", "dept"))
    B = schema(relation("Works", "name", "dept"))
    mapping = SchemaMapping.parse(A, B, "Emp(n, d) -> Works(n, d)")
    return A, B, mapping


class TestDeterministicEvolution:
    def test_rename_style_evolution(self, base):
        A, B, mapping = base
        A2 = schema(relation("Staff", "name", "dept"))
        evolution = SchemaMapping.parse(A, A2, "Emp(n, d) -> Staff(n, d)")
        evolved = evolve_source(mapping, evolution)
        I2 = instance(A2, {"Staff": [["ann", "eng"]]})
        out = evolved.exchange(I2)
        assert out.rows("Works") == {(constant("ann"), constant("eng"))}

    def test_symbolic_composition(self, base):
        A, B, mapping = base
        A2 = schema(relation("Staff", "name", "dept"))
        evolution = SchemaMapping.parse(A, A2, "Emp(n, d) -> Staff(n, d)")
        evolved = evolve_source(mapping, evolution)
        symbolic = evolved.symbolic()
        assert isinstance(symbolic, SchemaMapping)
        I2 = instance(A2, {"Staff": [["ann", "eng"]]})
        direct = universal_solution(symbolic, I2)
        assert direct.rows("Works") == {(constant("ann"), constant("eng"))}

    def test_projection_evolution_introduces_existential(self, base):
        A, B, mapping = base
        A2 = schema(relation("Emp2", "name"))
        evolution = SchemaMapping.parse(A, A2, "Emp(n, d) -> Emp2(n)")
        evolved = evolve_source(mapping, evolution)
        I2 = instance(A2, {"Emp2": [["ann"]]})
        out = evolved.exchange(I2)
        rows = out.rows("Works")
        assert len(rows) == 1
        (row,) = rows
        assert row[0] == constant("ann")
        # Department was lost by the evolution; it comes back as a null.
        from repro.relational import is_null

        assert is_null(row[1])


class TestAmbiguousEvolution:
    @pytest.fixture
    def ambiguous(self, base):
        A, _, mapping = base
        A2 = schema(relation("Person", "name", "dept"))
        evolution = SchemaMapping.parse(
            A,
            A2,
            """
            Emp(n, d) -> Person(n, d)
            Emp(n, d), n = d -> Person(n, n)
            """,
        )
        return mapping, evolution

    def test_father_mother_style_ambiguity_detected(self, base):
        A, _, mapping = base
        A2 = schema(relation("P", "name", "dept"))
        evolution = SchemaMapping.parse(
            A,
            A2,
            """
            Emp(n, d) -> P(n, d)
            Emp(d, n) -> P(n, d)
            """,
        )
        assert evolution_is_ambiguous(evolution)
        with pytest.raises(EvolutionAmbiguity):
            evolve_source(mapping, evolution)

    def test_chooser_resolves_ambiguity(self, base):
        A, _, mapping = base
        A2 = schema(relation("P", "name", "dept"))
        evolution = SchemaMapping.parse(
            A,
            A2,
            """
            Emp(n, d) -> P(n, d)
            Emp(d, n) -> P(n, d)
            """,
        )
        evolved = evolve_source(mapping, evolution, chooser=first_branch_chooser)
        I2 = instance(A2, {"P": [["ann", "eng"]]})
        out = evolved.exchange(I2)
        assert len(out.rows("Works")) == 1

    def test_unambiguous_evolution_reported(self, base):
        A, _, _ = base
        A2 = schema(relation("Staff", "name", "dept"))
        evolution = SchemaMapping.parse(A, A2, "Emp(n, d) -> Staff(n, d)")
        assert not evolution_is_ambiguous(evolution)


class TestRecoveryToStTgds:
    def test_guards_move_to_premise(self, base):
        A, _, _ = base
        A2 = schema(relation("Staff", "name", "dept"))
        evolution = SchemaMapping.parse(A, A2, "Emp(n, d) -> Staff(n, d)")
        recovery = maximum_recovery(evolution)
        inverse = recovery_to_sttgds(recovery)
        assert inverse.source == A2
        assert inverse.target == A
        tgd = inverse.tgds[0]
        # C() guards live in the premise; the conclusion is atoms only.
        assert tgd.premise.constant_predicates()
        assert all(
            not hasattr(lit, "term") for lit in tgd.conclusion.literals
        )

    def test_multi_branch_requires_chooser(self):
        A = schema(relation("F", "x"), relation("M", "x"))
        A2 = schema(relation("P", "x"))
        evolution = SchemaMapping.parse(A, A2, "F(x) -> P(x); M(x) -> P(x)")
        recovery = maximum_recovery(evolution)
        with pytest.raises(EvolutionAmbiguity):
            recovery_to_sttgds(recovery)
        inverse = recovery_to_sttgds(recovery, chooser=first_branch_chooser)
        assert len(inverse.tgds) == 1
