"""Tests for mapping composition: Example 2 and the closure results."""

import pytest

from repro.logic.terms import FuncTerm
from repro.mapping import (
    CompositionError,
    SchemaMapping,
    SOMapping,
    compose,
    compose_sotgd,
    universal_solution,
)
from repro.mapping.composition import skolemize
from repro.relational import (
    constant,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)


@pytest.fixture
def example_two():
    """Example 2's two mappings: Emp → Manager, Manager → Boss/SelfMngr."""
    A = schema(relation("Emp", "name"))
    B = schema(relation("Manager", "emp", "mgr"))
    C = schema(relation("Boss", "emp", "boss"), relation("SelfMngr", "emp"))
    m12 = SchemaMapping.parse(A, B, "Emp(x) -> exists y . Manager(x, y)")
    m23 = SchemaMapping.parse(
        B,
        C,
        """
        Manager(x, y) -> Boss(x, y)
        Manager(x, x) -> SelfMngr(x)
        """,
    )
    return A, B, C, m12, m23


class TestSkolemize:
    def test_existential_becomes_function_of_premise_vars(self):
        from repro.mapping import StTgd

        tgd = StTgd.parse("Emp(x) -> exists y . Manager(x, y)")
        sk = skolemize(tgd, 0)
        term = sk.conclusion_atoms[0].terms[1]
        assert isinstance(term, FuncTerm)
        assert term.function == "f0_y"

    def test_full_tgd_unchanged(self):
        from repro.mapping import StTgd

        tgd = StTgd.parse("A(x) -> B(x)")
        sk = skolemize(tgd, 0)
        assert sk.conclusion_atoms[0].is_first_order()


class TestExampleTwo:
    def test_composition_emits_so_tgd(self, example_two):
        *_rest, m12, m23 = example_two
        so = compose_sotgd(m12, m23)
        assert isinstance(so, SOMapping)
        assert len(so.clauses) == 2
        assert so.functions  # at least the f for y

    def test_self_manager_clause_has_equality(self, example_two):
        *_rest, m12, m23 = example_two
        so = compose_sotgd(m12, m23)
        selfmngr = [
            c for c in so.clauses
            if c.conclusion.atoms()[0].relation == "SelfMngr"
        ]
        assert len(selfmngr) == 1
        equalities = selfmngr[0].premise.equalities()
        assert len(equalities) == 1
        # the irreducible x = f(x) the paper highlights
        sides = {type(equalities[0].left), type(equalities[0].right)}
        assert FuncTerm in sides

    def test_compose_returns_so_mapping_for_nonfull_first(self, example_two):
        *_rest, m12, m23 = example_two
        assert isinstance(compose(m12, m23), SOMapping)

    def test_so_chase_agrees_with_sequential_chase(self, example_two):
        A, B, C, m12, m23 = example_two
        so = compose_sotgd(m12, m23)
        I = instance(A, {"Emp": [["Alice"], ["Bob"]]})
        middle = universal_solution(m12, I)
        sequential = universal_solution(m23, middle.cast(B))
        direct = so.chase(I)
        assert homomorphically_equivalent(sequential, direct)

    def test_so_semantics_on_ground_pair(self, example_two):
        A, B, C, m12, m23 = example_two
        so = compose_sotgd(m12, m23)
        I = instance(A, {"Emp": [["a"]]})
        K = instance(C, {"Boss": [["a", "m"]]})
        assert so.satisfied_by(I, K)

    def test_so_semantics_rejects_missing_boss(self, example_two):
        A, B, C, m12, m23 = example_two
        so = compose_sotgd(m12, m23)
        I = instance(A, {"Emp": [["a"]]})
        from repro.relational import empty_instance

        assert not so.satisfied_by(I, empty_instance(C))

    def test_so_semantics_self_manager_case(self, example_two):
        A, B, C, m12, m23 = example_two
        so = compose_sotgd(m12, m23)
        I = instance(A, {"Emp": [["a"]]})
        # Boss(a, a) without SelfMngr(a): the only way to satisfy clause 1
        # with f(a) = a then violates clause 2 — but an interpretation may
        # pick f(a) = b ≠ a... which then fails Boss(a, b) ∉ K. So K is
        # NOT a solution. Adding SelfMngr(a) fixes it.
        K_bad = instance(C, {"Boss": [["a", "a"]]})
        K_good = instance(C, {"Boss": [["a", "a"]], "SelfMngr": [["a"]]})
        assert not so.satisfied_by(I, K_bad)
        assert so.satisfied_by(I, K_good)


class TestFullComposition:
    def test_full_mappings_compose_to_st_tgds(self):
        A = schema(relation("A", "x"))
        B = schema(relation("B", "x"))
        C = schema(relation("D", "x"))
        m1 = SchemaMapping.parse(A, B, "A(x) -> B(x)")
        m2 = SchemaMapping.parse(B, C, "B(x) -> D(x)")
        composed = compose(m1, m2)
        assert isinstance(composed, SchemaMapping)
        I = instance(A, {"A": [["v"]]})
        assert universal_solution(composed, I).rows("D") == {(constant("v"),)}

    def test_full_then_existential_deskolemizes(self):
        A = schema(relation("A", "x"))
        B = schema(relation("B", "x"))
        C = schema(relation("D", "x", "y"))
        m1 = SchemaMapping.parse(A, B, "A(x) -> B(x)")
        m2 = SchemaMapping.parse(B, C, "B(x) -> exists y . D(x, y)")
        composed = compose(m1, m2)
        assert isinstance(composed, SchemaMapping)
        assert composed.tgds[0].existential_variables

    def test_schema_mismatch_rejected(self):
        A = schema(relation("A", "x"))
        B = schema(relation("B", "x"))
        m1 = SchemaMapping.parse(A, B, "A(x) -> B(x)")
        with pytest.raises(CompositionError):
            compose_sotgd(m1, m1)

    def test_unproducible_premise_vanishes(self):
        A = schema(relation("A", "x"))
        B = schema(relation("B", "x"), relation("Unused", "x"))
        C = schema(relation("D", "x"))
        m1 = SchemaMapping.parse(A, B, "A(x) -> B(x)")
        m2 = SchemaMapping.parse(B, C, "Unused(x) -> D(x)")
        so = compose_sotgd(m1, m2)
        assert len(so.clauses) == 0

    def test_constant_clash_prunes_branch(self):
        A = schema(relation("A", "x"))
        B = schema(relation("B", "x"))
        C = schema(relation("D", "x"))
        m1 = SchemaMapping.parse(A, B, "A(x) -> B('left')")
        m2 = SchemaMapping.parse(B, C, "B('right') -> D('out')")
        so = compose_sotgd(m1, m2)
        assert len(so.clauses) == 0

    def test_composition_with_multiple_producers(self):
        A = schema(relation("A", "x"), relation("B", "x"))
        M = schema(relation("Mid", "x"))
        C = schema(relation("Out", "x"))
        m1 = SchemaMapping.parse(A, M, "A(x) -> Mid(x); B(x) -> Mid(x)")
        m2 = SchemaMapping.parse(M, C, "Mid(x) -> Out(x)")
        composed = compose(m1, m2)
        assert isinstance(composed, SchemaMapping)
        assert len(composed.tgds) == 2
