"""Tests for the chase engine: Example 1 and target-dependency chasing."""

import pytest

from repro.logic.parser import parse_conjunction, parse_rule
from repro.logic.terms import Var
from repro.mapping import (
    ChaseFailure,
    ChaseNonTermination,
    ChaseVariant,
    SchemaMapping,
    chase,
    core_universal_solution,
    solution_space_sample,
    universal_solution,
)
from repro.mapping.dependencies import Egd, TargetTgd
from repro.options import ExchangeOptions
from repro.relational import (
    LabeledNull,
    constant,
    instance,
    is_homomorphic,
    relation,
    schema,
)


@pytest.fixture
def example_one():
    source = schema(relation("Emp", "name"))
    target = schema(relation("Manager", "emp", "mgr"))
    mapping = SchemaMapping.parse(
        source, target, "Emp(x) -> exists y . Manager(x, y)"
    )
    I = instance(source, {"Emp": [["Alice"], ["Bob"]]})
    return mapping, I


class TestExampleOne:
    def test_canonical_solution_shape(self, example_one):
        mapping, I = example_one
        jstar = universal_solution(mapping, I)
        rows = jstar.rows("Manager")
        assert len(rows) == 2
        emps = {row[0] for row in rows}
        assert emps == {constant("Alice"), constant("Bob")}
        mgrs = {row[1] for row in rows}
        assert all(isinstance(m, LabeledNull) for m in mgrs)
        assert len(mgrs) == 2  # distinct nulls per firing

    def test_canonical_solution_is_a_solution(self, example_one):
        mapping, I = example_one
        jstar = universal_solution(mapping, I)
        assert mapping.is_solution(I, jstar)

    def test_universality(self, example_one):
        mapping, I = example_one
        jstar = universal_solution(mapping, I)
        target = mapping.target
        j1 = instance(target, {"Manager": [["Alice", "Alice"], ["Bob", "Alice"]]})
        j2 = instance(target, {"Manager": [["Alice", "Bob"], ["Bob", "Ted"]]})
        assert is_homomorphic(jstar, j1)
        assert is_homomorphic(jstar, j2)
        assert not is_homomorphic(j1, jstar)

    def test_statistics(self, example_one):
        mapping, I = example_one
        result = chase(mapping, I)
        assert result.statistics.tgd_firings == 2
        assert result.statistics.nulls_created == 2

    def test_core_solution(self, example_one):
        mapping, I = example_one
        assert core_universal_solution(mapping, I).size() == 2

    def test_solution_space_sample(self, example_one):
        mapping, I = example_one
        jstar = universal_solution(mapping, I)
        nulls = sorted(jstar.nulls(), key=repr)
        samples = solution_space_sample(
            mapping,
            I,
            [{nulls[0]: constant("Ted"), nulls[1]: constant("Ted")}],
        )
        assert len(samples) == 1
        assert samples[0].is_ground()


class TestVariants:
    def test_standard_chase_avoids_redundant_firing(self):
        source = schema(relation("A", "x"), relation("B", "x"))
        target = schema(relation("T", "x", "y"))
        mapping = SchemaMapping.parse(
            source,
            target,
            """
            A(x) -> exists y . T(x, y)
            B(x) -> exists y . T(x, y)
            """,
        )
        I = instance(source, {"A": [["v"]], "B": [["v"]]})
        naive = chase(mapping, I, ChaseVariant.NAIVE).solution
        standard = chase(mapping, I, ChaseVariant.STANDARD).solution
        assert len(naive.rows("T")) == 2
        assert len(standard.rows("T")) == 1

    def test_variants_homomorphically_equivalent(self):
        from repro.relational import homomorphically_equivalent

        source = schema(relation("A", "x"))
        target = schema(relation("T", "x", "y"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> exists y . T(x, y)")
        I = instance(source, {"A": [["u"], ["v"]]})
        naive = chase(mapping, I, ChaseVariant.NAIVE).solution
        standard = chase(mapping, I, ChaseVariant.STANDARD).solution
        assert homomorphically_equivalent(naive, standard)


class TestNullFreshness:
    def test_new_nulls_avoid_source_nulls(self):
        from repro.relational import Fact, Instance

        source = schema(relation("A", "x"))
        target = schema(relation("T", "x", "y"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> exists y . T(x, y)")
        I = Instance(source, [Fact("A", (LabeledNull(5),))])
        solution = universal_solution(mapping, I)
        fresh = [v for v in solution.nulls() if v != LabeledNull(5)]
        assert all(
            not isinstance(v, LabeledNull) or v.label > 5 for v in fresh
        )


class TestTargetDependencies:
    def _key_egd(self):
        return Egd(
            parse_conjunction("Manager(x, y), Manager(x, z)"), Var("y"), Var("z")
        )

    def test_egd_unifies_null_with_constant(self):
        source = schema(relation("Emp", "n"), relation("Boss", "n", "b"))
        target = schema(relation("Manager", "emp", "mgr"))
        mapping = SchemaMapping(
            source,
            target,
            [
                parse_tgd("Emp(x) -> exists y . Manager(x, y)"),
                parse_tgd("Boss(x, b) -> Manager(x, b)"),
            ],
            [self._key_egd()],
        )
        I = instance(source, {"Emp": [["ann"]], "Boss": [["ann", "mona"]]})
        solution = universal_solution(mapping, I)
        assert solution.rows("Manager") == {(constant("ann"), constant("mona"))}

    def test_egd_conflict_fails(self):
        source = schema(relation("Boss", "n", "b"))
        target = schema(relation("Manager", "emp", "mgr"))
        mapping = SchemaMapping(
            source,
            target,
            [parse_tgd("Boss(x, b) -> Manager(x, b)")],
            [self._key_egd()],
        )
        I = instance(source, {"Boss": [["ann", "mona"], ["ann", "rita"]]})
        with pytest.raises(ChaseFailure):
            universal_solution(mapping, I)

    def test_target_tgd_fixpoint(self):
        source = schema(relation("E", "n", "d"))
        target = schema(relation("Emp", "n", "d"), relation("Dept", "d"))
        fk_rule = parse_rule("Emp(x, d) -> Dept(d)")
        mapping = SchemaMapping(
            source,
            target,
            [parse_tgd("E(x, d) -> Emp(x, d)")],
            [TargetTgd(fk_rule.lhs, fk_rule.branches[0][1])],
        )
        I = instance(source, {"E": [["a", "d1"], ["b", "d2"]]})
        solution = universal_solution(mapping, I)
        assert len(solution.rows("Dept")) == 2

    def test_non_terminating_target_chase_detected(self):
        source = schema(relation("A", "x"))
        target = schema(relation("E", "a", "b"))
        loop_rule = parse_rule("E(x, y) -> exists z . E(y, z)")
        mapping = SchemaMapping(
            source,
            target,
            [parse_tgd("A(x) -> exists y . E(x, y)")],
            [TargetTgd(loop_rule.lhs, loop_rule.branches[0][1])],
        )
        I = instance(source, {"A": [["v"]]})
        with pytest.raises(ChaseNonTermination) as excinfo:
            chase(mapping, I, options=ExchangeOptions(max_steps=50))
        # The error is actionable: it points at the lint subcommand and
        # embeds the special-edge cycle that explains the divergence.
        message = str(excinfo.value)
        assert "repro lint" in message
        assert "(E, 1)" in message
        witness = excinfo.value.witness
        assert witness is not None
        assert witness.positions == (("E", 1),)
        assert witness.existential == "z"


def parse_tgd(text):
    from repro.mapping import StTgd

    return StTgd.parse(text)
