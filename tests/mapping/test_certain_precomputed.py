"""certain_answers with a precomputed universal solution (no re-chase)."""

from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.mapping import SchemaMapping, universal_solution
from repro.mapping.certain import certain_answers
from repro.relational import instance, relation, schema


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))


def setting():
    mapping = SchemaMapping.parse(
        SRC, TGT, "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"
    )
    source = instance(
        SRC,
        {
            "Emp": [["e1", "d1"], ["e2", "d2"]],
            "Dept": [["d1", "h1"], ["d2", "h2"]],
        },
    )
    return mapping, source


class TestPrecomputedSolution:
    def test_matches_rechasing_path(self):
        mapping, source = setting()
        query = parse_conjunction("Office(n, h, m)")
        head = [Var("n"), Var("h")]
        solution = universal_solution(mapping, source)
        assert certain_answers(mapping, source, query, head) == certain_answers(
            mapping, source, query, head, solution=solution
        )

    def test_solution_reused_across_queries(self):
        mapping, source = setting()
        solution = universal_solution(mapping, source)
        for text, head in [
            ("Office(n, h, m)", [Var("n")]),
            ("Office(n, h, m)", [Var("h")]),
        ]:
            query = parse_conjunction(text)
            assert certain_answers(
                mapping, source, query, head, solution=solution
            ) == certain_answers(mapping, source, query, head)

    def test_executor_solution_is_acceptable(self):
        from repro.exec import ParallelExchange

        mapping, source = setting()
        with ParallelExchange(mapping, workers=1, cache=2) as executor:
            solution = executor.exchange(source)
            query = parse_conjunction("Office(n, h, m)")
            head = [Var("n"), Var("h")]
            assert certain_answers(
                mapping, source, query, head, solution=solution
            ) == certain_answers(mapping, source, query, head)
