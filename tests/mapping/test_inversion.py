"""Tests for inversion: Example 3, recoveries, the subset property."""

import pytest

from repro.mapping import (
    SchemaMapping,
    is_fagin_invertible_on,
    is_recovery,
    maximum_recovery,
    recovered_sources,
    solution_space_contains,
    subset_property_violations,
    universal_solution,
)
from repro.mapping.inversion import InversionError
from repro.relational import instance, relation, schema


@pytest.fixture
def example_three():
    source = schema(
        relation("Father", "p", "c"), relation("Mother", "p", "c")
    )
    target = schema(relation("Parent", "p", "c"))
    mapping = SchemaMapping.parse(
        source,
        target,
        """
        Father(x, y) -> Parent(x, y)
        Mother(x, y) -> Parent(x, y)
        """,
    )
    I_father = instance(source, {"Father": [["Leslie", "Alice"]]})
    I_mother = instance(source, {"Mother": [["Leslie", "Alice"]]})
    return mapping, I_father, I_mother


class TestMaximumRecoveryConstruction:
    def test_example_three_shape(self, example_three):
        mapping, *_ = example_three
        recovery = maximum_recovery(mapping)
        assert len(recovery.rules) == 1  # the two symmetric rules deduplicate
        rule = recovery.rules[0]
        assert len(rule.branches) == 2
        branch_relations = {
            b.atoms()[0].relation for b in rule.branches
        }
        assert branch_relations == {"Father", "Mother"}

    def test_constant_guards_present(self, example_three):
        mapping, *_ = example_three
        rule = maximum_recovery(mapping).rules[0]
        assert len(rule.premise.constant_predicates()) == 2

    def test_existential_positions_unguarded(self):
        source = schema(relation("Emp", "name"))
        target = schema(relation("Manager", "emp", "mgr"))
        mapping = SchemaMapping.parse(
            source, target, "Emp(x) -> exists y . Manager(x, y)"
        )
        rule = maximum_recovery(mapping).rules[0]
        # Only the frontier position gets a C() guard.
        assert len(rule.premise.constant_predicates()) == 1
        assert len(rule.branches) == 1
        assert rule.branches[0].atoms()[0].relation == "Emp"

    def test_multi_atom_premise_branch_has_existentials(self):
        source = schema(relation("A", "x", "w"), relation("B", "w"))
        target = schema(relation("T", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x, w), B(w) -> T(x)")
        rule = maximum_recovery(mapping).rules[0]
        branch = rule.branches[0]
        assert {a.relation for a in branch.atoms()} == {"A", "B"}

    def test_shared_existential_conclusion_rejected(self):
        source = schema(relation("A", "x"))
        target = schema(relation("T", "x", "z"), relation("U", "z"))
        mapping = SchemaMapping.parse(
            source, target, "A(x) -> exists z . T(x, z), U(z)"
        )
        with pytest.raises(InversionError):
            maximum_recovery(mapping)


class TestRecoveryProperty:
    def test_example_three_is_recovery(self, example_three):
        mapping, I_father, I_mother = example_three
        recovery = maximum_recovery(mapping)
        assert is_recovery(mapping, recovery, [I_father, I_mother])

    def test_round_trip_admits_both_parents(self, example_three):
        mapping, I_father, I_mother = example_three
        recovery = maximum_recovery(mapping)
        admitted = recovered_sources(
            mapping, recovery, I_father, [I_father, I_mother]
        )
        assert admitted == [I_father, I_mother]

    def test_unrelated_source_not_admitted(self, example_three):
        mapping, I_father, I_mother = example_three
        source = mapping.source
        recovery = maximum_recovery(mapping)
        I_other = instance(source, {"Father": [["Someone", "Else"]]})
        admitted = recovered_sources(
            mapping, recovery, I_father, [I_father, I_other]
        )
        assert admitted == [I_father]

    def test_emp_manager_recovery(self):
        source = schema(relation("Emp", "name"))
        target = schema(relation("Manager", "emp", "mgr"))
        mapping = SchemaMapping.parse(
            source, target, "Emp(x) -> exists y . Manager(x, y)"
        )
        recovery = maximum_recovery(mapping)
        I = instance(source, {"Emp": [["Alice"], ["Bob"]]})
        assert is_recovery(mapping, recovery, [I])

    def test_recovery_over_all_scenarios(self):
        from repro.workloads import all_scenarios

        for scenario in all_scenarios():
            recovery = maximum_recovery(scenario.mapping)
            assert is_recovery(
                scenario.mapping, recovery, [scenario.sample]
            ), scenario.name


class TestSubsetProperty:
    def test_example_three_not_invertible(self, example_three):
        mapping, I_father, I_mother = example_three
        violations = subset_property_violations(mapping, [I_father, I_mother])
        assert len(violations) == 2  # symmetric pair
        assert not is_fagin_invertible_on(mapping, [I_father, I_mother])

    def test_copy_mapping_passes_sample(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        mapping = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        I1 = instance(source, {"A": [["u"]]})
        I2 = instance(source, {"A": [["v"]]})
        assert is_fagin_invertible_on(mapping, [I1, I2])

    def test_solution_space_containment(self, example_three):
        mapping, I_father, I_mother = example_three
        # Both sources have the same solution space.
        assert solution_space_contains(mapping, I_father, I_mother)
        assert solution_space_contains(mapping, I_mother, I_father)

    def test_projection_mapping_not_invertible(self):
        source = schema(relation("P", "name", "age"))
        target = schema(relation("N", "name"))
        mapping = SchemaMapping.parse(source, target, "P(x, a) -> N(x)")
        I1 = instance(source, {"P": [["ann", 30]]})
        I2 = instance(source, {"P": [["ann", 40]]})
        assert not is_fagin_invertible_on(mapping, [I1, I2])


class TestDisjunctiveSemantics:
    def test_null_guarded_rows_force_nothing(self, example_three):
        mapping, I_father, _ = example_three
        recovery = maximum_recovery(mapping)
        solution = universal_solution(mapping, I_father)
        from repro.relational import Fact, Instance, LabeledNull, constant

        with_null = solution.with_facts(
            [Fact("Parent", (constant("G"), LabeledNull(99)))]
        )
        # The null-carrying Parent fact has no C() support, so the empty
        # source change is still fine: recovery only reacts to constants.
        assert recovery.satisfied_by(with_null, I_father)

    def test_constant_rows_do_force(self, example_three):
        mapping, I_father, _ = example_three
        recovery = maximum_recovery(mapping)
        solution = universal_solution(mapping, I_father)
        from repro.relational import Fact, constant

        with_extra = solution.with_facts(
            [Fact("Parent", (constant("G"), constant("H")))]
        )
        assert not recovery.satisfied_by(with_extra, I_father)
