"""Tests for the visual correspondence builder (paper, Figure 1)."""

import pytest

from repro.logic.terms import Var
from repro.mapping import (
    CorrespondenceError,
    SchemaMapping,
    VisualMapping,
    universal_solution,
)
from repro.relational import (
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)


@pytest.fixture
def figure_one_schemas():
    left = schema(relation("Takes", "student", "course"))
    right = schema(
        relation("Student", "sid", "name"),
        relation("Assgn", "student", "course"),
    )
    return left, right


class TestFigureOneUpper:
    def test_compiles_to_papers_tgd(self, figure_one_schemas):
        left, right = figure_one_schemas
        visual = VisualMapping(left, right)
        c = visual.correspondence("upper")
        c.source("Takes").target("Student", "Assgn")
        c.arrow("Takes.student", "Student.name")
        c.arrow("Takes.student", "Assgn.student")
        c.arrow("Takes.course", "Assgn.course")
        tgd = c.compile()
        # Takes(x, y) → ∃z (Student(z, x) ∧ Assgn(x, y))
        assert len(tgd.premise.atoms()) == 1
        assert len(tgd.conclusion.atoms()) == 2
        assert len(tgd.existential_variables) == 1
        student_atom = next(
            a for a in tgd.conclusion.atoms() if a.relation == "Student"
        )
        assgn_atom = next(a for a in tgd.conclusion.atoms() if a.relation == "Assgn")
        takes_atom = tgd.premise.atoms()[0]
        # Student's name position and Assgn's student position share the
        # variable of Takes.student.
        assert student_atom.terms[1] == takes_atom.terms[0]
        assert assgn_atom.terms[0] == takes_atom.terms[0]
        assert assgn_atom.terms[1] == takes_atom.terms[1]
        assert student_atom.terms[0] in tgd.existential_variables

    def test_exchanges_like_hand_written_tgd(self, figure_one_schemas):
        left, right = figure_one_schemas
        visual = VisualMapping(left, right)
        c = visual.correspondence()
        c.source("Takes").target("Student", "Assgn")
        c.arrow("Takes.student", "Student.name")
        c.arrow("Takes.student", "Assgn.student")
        c.arrow("Takes.course", "Assgn.course")
        compiled = visual.compile()
        hand_written = SchemaMapping.parse(
            left, right, "Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)"
        )
        I = instance(left, {"Takes": [["ann", "db"], ["bob", "pl"]]})
        assert homomorphically_equivalent(
            universal_solution(compiled, I), universal_solution(hand_written, I)
        )


class TestFigureOneLower:
    def test_join_correspondence(self):
        left = schema(
            relation("Student", "sid", "name"),
            relation("Assgn", "student", "course"),
        )
        right = schema(relation("Enrollment", "sid", "course"))
        visual = VisualMapping(left, right)
        c = visual.correspondence("lower")
        c.source("Student", "Assgn").target("Enrollment")
        c.join("Student.name", "Assgn.student")
        c.arrow("Student.sid", "Enrollment.sid")
        c.arrow("Assgn.course", "Enrollment.course")
        tgd = c.compile()
        # Student(x, y) ∧ Assgn(y, z) → Enrollment(x, z)
        assert len(tgd.premise.atoms()) == 2
        assert tgd.is_full()
        student = next(a for a in tgd.premise.atoms() if a.relation == "Student")
        assgn = next(a for a in tgd.premise.atoms() if a.relation == "Assgn")
        assert student.terms[1] == assgn.terms[0]  # the join variable


class TestValidation:
    @pytest.fixture
    def visual(self, figure_one_schemas):
        left, right = figure_one_schemas
        return VisualMapping(left, right)

    def test_unknown_source_relation(self, visual):
        with pytest.raises(CorrespondenceError):
            visual.correspondence().source("Nope")

    def test_unknown_target_relation(self, visual):
        with pytest.raises(CorrespondenceError):
            visual.correspondence().target("Nope")

    def test_arrow_requires_declared_relations(self, visual):
        c = visual.correspondence()
        c.source("Takes")
        with pytest.raises(CorrespondenceError, match="not declared"):
            c.arrow("Takes.student", "Student.name")

    def test_arrow_unknown_attribute(self, visual):
        c = visual.correspondence().source("Takes").target("Student")
        with pytest.raises(CorrespondenceError, match="no attribute"):
            c.arrow("Takes.student", "Student.zzz")

    def test_double_arrow_into_one_target_rejected(self, visual):
        c = visual.correspondence().source("Takes").target("Student")
        c.arrow("Takes.student", "Student.name")
        with pytest.raises(CorrespondenceError, match="already has"):
            c.arrow("Takes.course", "Student.name")

    def test_cross_side_join_rejected(self, visual):
        c = visual.correspondence().source("Takes").target("Student")
        with pytest.raises(CorrespondenceError, match="same side"):
            c.join("Takes.student", "Student.name")

    def test_malformed_reference(self, visual):
        c = visual.correspondence().source("Takes").target("Student")
        with pytest.raises(CorrespondenceError, match="Relation.attribute"):
            c.arrow("Takes", "Student.name")

    def test_empty_correspondence_rejected(self, visual):
        with pytest.raises(CorrespondenceError, match="needs source"):
            visual.correspondence().compile()


class TestTargetJoins:
    def test_target_join_unifies_existentials(self):
        left = schema(relation("A", "x"))
        right = schema(relation("P", "a", "k"), relation("Q", "k"))
        visual = VisualMapping(left, right)
        c = visual.correspondence()
        c.source("A").target("P", "Q")
        c.arrow("A.x", "P.a")
        c.join("P.k", "Q.k")
        tgd = c.compile()
        p_atom = next(a for a in tgd.conclusion.atoms() if a.relation == "P")
        q_atom = next(a for a in tgd.conclusion.atoms() if a.relation == "Q")
        assert p_atom.terms[1] == q_atom.terms[0]
        assert len(tgd.existential_variables) == 1
