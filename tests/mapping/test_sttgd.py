"""Tests for st-tgds and schema mappings."""

import pytest

from repro.logic.terms import Var
from repro.mapping import SchemaMapping, StTgd
from repro.relational import instance, relation, schema


@pytest.fixture
def setting():
    source = schema(relation("Emp", "name"))
    target = schema(relation("Manager", "emp", "mgr"))
    mapping = SchemaMapping.parse(
        source, target, "Emp(x) -> exists y . Manager(x, y)"
    )
    return source, target, mapping


class TestStructure:
    def test_existentials_inferred(self, setting):
        _, _, mapping = setting
        tgd = mapping.tgds[0]
        assert tgd.existential_variables == (Var("y"),)
        assert tgd.frontier == (Var("x"),)

    def test_is_full(self, setting):
        _, _, mapping = setting
        assert not mapping.tgds[0].is_full()
        full = StTgd.parse("Manager(x, y) -> Boss(x, y)")
        assert full.is_full()

    def test_relations(self):
        tgd = StTgd.parse("A(x), B(x, y) -> T(y)")
        assert tgd.source_relations() == {"A", "B"}
        assert tgd.target_relations() == {"T"}

    def test_conclusion_must_have_atoms(self):
        from repro.logic.formulas import Conjunction, atom, conj

        with pytest.raises(ValueError):
            StTgd(conj(atom("A", "x")), Conjunction([]))

    def test_declared_existentials_checked(self):
        with pytest.raises(ValueError, match="disagree"):
            StTgd.parse("A(x) -> exists x . B(x)")

    def test_rename_variables(self):
        tgd = StTgd.parse("A(x) -> B(x, y)").rename_variables("_1")
        assert tgd.frontier == (Var("x_1"),)
        assert tgd.existential_variables == (Var("y_1"),)


class TestSatisfaction:
    def test_example_one_solutions(self, setting):
        source_schema, target_schema, mapping = setting
        I = instance(source_schema, {"Emp": [["Alice"], ["Bob"]]})
        J1 = instance(
            target_schema,
            {"Manager": [["Alice", "Alice"], ["Bob", "Alice"]]},
        )
        assert mapping.satisfied_by(I, J1)

    def test_missing_witness_violates(self, setting):
        source_schema, target_schema, mapping = setting
        I = instance(source_schema, {"Emp": [["Alice"], ["Bob"]]})
        J = instance(target_schema, {"Manager": [["Alice", "Ted"]]})
        assert not mapping.satisfied_by(I, J)
        assert len(mapping.tgds[0].violations(I, J)) == 1

    def test_empty_source_always_satisfied(self, setting):
        source_schema, target_schema, mapping = setting
        from repro.relational import empty_instance

        assert mapping.satisfied_by(
            empty_instance(source_schema), empty_instance(target_schema)
        )

    def test_extra_target_facts_allowed(self, setting):
        source_schema, target_schema, mapping = setting
        I = instance(source_schema, {"Emp": [["Alice"]]})
        J = instance(
            target_schema,
            {"Manager": [["Alice", "Ted"], ["Ghost", "Casper"]]},
        )
        assert mapping.satisfied_by(I, J)


class TestNormalization:
    def test_split_by_existential_components(self):
        tgd = StTgd.parse("Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)")
        parts = tgd.normalize()
        assert len(parts) == 2
        relations = {p.conclusion.atoms()[0].relation for p in parts}
        assert relations == {"Student", "Assgn"}

    def test_shared_existential_stays_together(self):
        tgd = StTgd.parse("R(x) -> exists z . A(x, z), B(z)")
        assert len(tgd.normalize()) == 1

    def test_full_tgd_with_two_atoms_splits(self):
        tgd = StTgd.parse("R(x, y) -> A(x), B(y)")
        assert len(tgd.normalize()) == 2

    def test_mapping_normalize(self):
        source = schema(relation("Takes", "s", "c"))
        target = schema(relation("Student", "i", "n"), relation("Assgn", "s", "c"))
        mapping = SchemaMapping.parse(
            source,
            target,
            "Takes(x, y) -> exists z . Student(z, x), Assgn(x, y)",
        )
        assert len(mapping.normalize().tgds) == 2


class TestValidation:
    def test_unknown_premise_relation_rejected(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        with pytest.raises(ValueError, match="not a source relation"):
            SchemaMapping.parse(source, target, "Z(x) -> B(x)")

    def test_unknown_conclusion_relation_rejected(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        with pytest.raises(ValueError, match="not a target relation"):
            SchemaMapping.parse(source, target, "A(x) -> Z(x)")

    def test_premise_arity_checked(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        with pytest.raises(ValueError, match="arity"):
            SchemaMapping.parse(source, target, "A(x, y) -> B(x)")

    def test_conclusion_arity_checked(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        with pytest.raises(ValueError, match="arity"):
            SchemaMapping.parse(source, target, "A(x) -> B(x, y)")

    def test_is_full_mapping(self):
        source = schema(relation("A", "x"))
        target = schema(relation("B", "x"))
        full = SchemaMapping.parse(source, target, "A(x) -> B(x)")
        assert full.is_full()

    def test_with_tgds_extends(self, setting):
        source, target, mapping = setting
        more = mapping.with_tgds([StTgd.parse("Emp(x) -> Manager(x, x)")])
        assert len(more) == 2

    def test_iteration(self, setting):
        _, _, mapping = setting
        assert len(list(mapping)) == len(mapping) == 1
