"""The id-space st-tgd chase fast path vs the value-space engine.

When a source instance carries a column store, :func:`chase` routes the
st-tgd phase through :func:`_chase_st_tgds_ids`, which fires tgds
entirely over integer ids.  Its contract is *exact* agreement with the
value-space engine — same facts, same fresh-null labels — on canonical
(and lazily decoded canonical) stores, and a clean decline back to the
value path whenever any tgd is ineligible.  A spy around the fast path
distinguishes "engaged", "declined" and "never attempted".
"""

import importlib

import pytest

# the package re-exports the chase *function* under the same name, so the
# module object needs an explicit import
chase_mod = importlib.import_module("repro.mapping.chase")
from repro.mapping import SchemaMapping, universal_solution
from repro.mapping.chase import ChaseVariant, chase
from repro.mapping.dependencies import Egd
from repro.logic.parser import parse_conjunction
from repro.logic.terms import Var
from repro.options import ExchangeOptions
from repro.relational import instance, relation, schema
from repro.relational.canonical import canonically_equal
from repro.relational.columnar import pack_instance, unpack_instance_lazy
from repro.relational.instance import Instance
from repro.relational.schema import (
    Attribute,
    AttributeType,
    RelationSchema,
    Schema,
)
from repro.relational.values import LabeledNull, SkolemValue, constant


SRC = schema(relation("Emp", "name", "dept"), relation("Dept", "dept", "head"))
TGT = schema(relation("Office", "name", "head", "room"))
JOIN_TEXT = "Emp(n, d), Dept(d, h) -> exists m . Office(n, h, m)"


def join_mapping(target_dependencies=()):
    return SchemaMapping.parse(SRC, TGT, JOIN_TEXT, target_dependencies)


def clustered_source(employees=9, depts=3):
    return instance(
        SRC,
        {
            "Emp": [[f"e{i}", f"d{i % depts}"] for i in range(employees)],
            "Dept": [[f"d{j}", f"h{j}"] for j in range(depts)],
        },
    )


@pytest.fixture
def spy(monkeypatch):
    """Record whether the fast path ran and whether it produced a result."""
    outcome = {}
    original = chase_mod._chase_st_tgds_ids

    def wrapper(mapping, source, factory, stats):
        result = original(mapping, source, factory, stats)
        outcome["engaged"] = result is not None
        return result

    monkeypatch.setattr(chase_mod, "_chase_st_tgds_ids", wrapper)
    return outcome


def stored_copy(inst):
    copy = Instance(inst.schema, list(inst.facts()))
    copy.columnar()
    return copy


class TestExactEquivalence:
    def test_same_facts_and_null_labels_as_value_path(self, spy):
        source = clustered_source()
        fast = universal_solution(join_mapping(), stored_copy(source))
        assert spy["engaged"]
        slow = universal_solution(join_mapping(), source)
        assert not spy["engaged"]  # plain instance: no store, fast declines
        assert fast == slow  # exact, including invented null labels

    def test_lazily_decoded_source_stays_lazy(self, spy):
        source = clustered_source()
        shipped = unpack_instance_lazy(pack_instance(source))
        fast = universal_solution(join_mapping(), shipped)
        assert spy["engaged"]
        # the worker contract: chasing a shipped shard never builds its
        # value table (or the shard's tuple rows)
        assert shipped.columnar_store._table is None
        assert fast == universal_solution(join_mapping(), source)

    def test_source_nulls_keep_their_labels(self, spy):
        source = Instance(
            SRC,
            {
                "Emp": {
                    (LabeledNull(7), constant("d0")),
                    (constant("e1"), constant("d0")),
                },
                "Dept": {(constant("d0"), constant("h0"))},
            },
        )
        fast = universal_solution(join_mapping(), stored_copy(source))
        assert spy["engaged"]
        assert fast == universal_solution(join_mapping(), source)
        assert LabeledNull(7) in fast.nulls()
        # invented nulls start above the source's largest label
        assert all(n.label != 7 or n == LabeledNull(7) for n in fast.nulls())

    def test_novel_conclusion_constants(self, spy):
        mapping = SchemaMapping.parse(
            SRC,
            schema(relation("Badge", "name", "site")),
            'Emp(n, d) -> Badge(n, "HQ")',
        )
        source = clustered_source(employees=4)
        fast = universal_solution(mapping, stored_copy(source))
        assert spy["engaged"]
        assert fast == universal_solution(mapping, source)
        assert (constant("e0"), constant("HQ")) in fast.rows("Badge")

    def test_duplicate_conclusion_atoms_collapse(self, spy):
        mapping = SchemaMapping.parse(
            schema(relation("R", "x")),
            schema(relation("T", "x")),
            "R(x) -> T(x), T(x)",
        )
        source = instance(schema(relation("R", "x")), {"R": [["a"], ["b"]]})
        fast = universal_solution(mapping, stored_copy(source))
        assert spy["engaged"]
        assert fast == universal_solution(mapping, source)
        assert fast.size() == 2

    def test_no_existential_rows_dedupe(self, spy):
        mapping = SchemaMapping.parse(
            schema(relation("R", "x", "y")),
            schema(relation("T", "x")),
            "R(x, y) -> T(x)",
        )
        source = instance(
            schema(relation("R", "x", "y")),
            {"R": [["a", "b"], ["a", "c"], ["d", "e"]]},
        )
        fast = universal_solution(mapping, stored_copy(source))
        assert spy["engaged"]
        assert fast == universal_solution(mapping, source)
        assert len(fast.rows("T")) == 2

    def test_empty_source(self, spy):
        source = instance(SRC, {})
        fast = universal_solution(join_mapping(), stored_copy(source))
        assert spy["engaged"]
        assert fast.is_empty()


class TestDeclines:
    """Ineligible shapes fall back to the value path and stay correct."""

    def assert_declined_but_equal(self, spy, mapping, source):
        fast = universal_solution(mapping, stored_copy(source))
        assert spy["engaged"] is False
        assert canonically_equal(fast, universal_solution(mapping, source))

    def test_skolem_values_in_the_source(self, spy):
        source = Instance(
            SRC,
            {
                "Emp": {
                    (SkolemValue("f", (constant("x"),)), constant("d0")),
                },
                "Dept": {(constant("d0"), constant("h0"))},
            },
        )
        self.assert_declined_but_equal(spy, join_mapping(), source)

    def test_typed_target_columns(self, spy):
        target = Schema(
            [
                RelationSchema(
                    "Office",
                    [
                        Attribute("name", AttributeType.STRING),
                        Attribute("head", AttributeType.STRING),
                        Attribute("room", AttributeType.ANY),
                    ],
                )
            ]
        )
        mapping = SchemaMapping.parse(SRC, target, JOIN_TEXT)
        self.assert_declined_but_equal(spy, mapping, clustered_source(4, 2))

    def test_conclusion_constant_failing_type_check_declines(self, spy):
        target = Schema(
            [
                RelationSchema(
                    "Badge",
                    [
                        Attribute("name", AttributeType.ANY),
                        Attribute("code", AttributeType.INTEGER),
                    ],
                )
            ]
        )
        mapping = SchemaMapping.parse(SRC, target, 'Emp(n, d) -> Badge(n, "x")')
        source = stored_copy(clustered_source(2, 1))
        with pytest.raises(Exception):
            universal_solution(mapping, source)
        assert spy["engaged"] is False  # the value path raised, not the ids


class TestGates:
    """Request shapes the gate never sends to the fast path at all."""

    def assert_not_attempted(self, spy):
        assert "engaged" not in spy

    def test_standard_variant(self, spy):
        source = stored_copy(clustered_source(4, 2))
        chase(join_mapping(), source, ChaseVariant.STANDARD)
        self.assert_not_attempted(spy)

    def test_budgeted_run(self, spy):
        source = stored_copy(clustered_source(4, 2))
        chase(join_mapping(), source, options=ExchangeOptions(max_facts=10_000))
        self.assert_not_attempted(spy)

    def test_provenance_run(self, spy):
        source = stored_copy(clustered_source(4, 2))
        result = chase(join_mapping(), source, provenance=True)
        self.assert_not_attempted(spy)
        assert result.provenance.enabled

    def test_target_dependencies(self, spy):
        egd = Egd(
            parse_conjunction("Office(n, h, m), Office(n, h2, m2)"),
            Var("h"),
            Var("h2"),
        )
        source = stored_copy(clustered_source(4, 2))
        chase(join_mapping([egd]), source)
        self.assert_not_attempted(spy)
