"""Tests for chase-based implication, containment, and redundancy.

The decision procedures of Calì & Torlone: ``M1 ⊑ M2`` iff ``Σ1 ⊨ Σ2``,
with implication decided by freezing the candidate's premise and chasing
it.  Includes the decidable-fragment guards (side conditions, function
terms, weak-acyclicity) and the saturation building block.
"""

import pytest

from repro.logic.parser import parse_rule
from repro.mapping import (
    ContainmentUndecidable,
    Egd,
    SaturationUnsupported,
    SchemaMapping,
    StTgd,
    TargetTgd,
    chase,
    universal_solution,
)
from repro.mapping.containment import (
    containment_certificate,
    equivalent,
    freeze_conjunction,
    implies_st_tgd,
    implies_target_dependency,
    is_contained_in,
    prune_redundant,
    redundant_tgds,
    saturate,
)
from repro.mapping.dependencies import target_dependency_from_rule
from repro.relational import (
    LabeledNull,
    homomorphically_equivalent,
    instance,
    relation,
    schema,
)


S = schema(relation("S", "a", "b"))
T = schema(relation("T", "a", "b"), relation("U", "a", "b"))


def mapping(*tgd_texts, deps=()):
    return SchemaMapping(
        S, T, [StTgd.parse(t) for t in tgd_texts], deps
    )


def dep(text):
    return target_dependency_from_rule(parse_rule(text))


class TestFreeze:
    def test_variables_become_distinct_nulls(self):
        tgd = StTgd.parse("S(x, y) -> T(x, y)")
        frozen, binding = freeze_conjunction(tgd.premise, S)
        assert frozen.size() == 1
        assert binding[list(binding)[0]] != binding[list(binding)[1]]
        assert all(isinstance(v, LabeledNull) for v in binding.values())

    def test_constants_stay_constants(self):
        tgd = StTgd.parse('S(x, "eu") -> T(x, x)')
        frozen, binding = freeze_conjunction(tgd.premise, S)
        (fact,) = frozen.facts()
        assert fact.row[1].value == "eu"
        assert len(binding) == 1


class TestImpliesStTgd:
    def test_projection_is_implied(self):
        m = mapping("S(x, y) -> T(x, y)")
        assert implies_st_tgd(m, StTgd.parse("S(x, y) -> exists z . T(x, z)"))

    def test_renamed_copy_is_implied(self):
        m = mapping("S(x, y) -> T(x, y)")
        assert implies_st_tgd(m, StTgd.parse("S(p, q) -> T(p, q)"))

    def test_swapped_columns_not_implied(self):
        m = mapping("S(x, y) -> T(x, y)")
        assert not implies_st_tgd(m, StTgd.parse("S(x, y) -> T(y, x)"))

    def test_weaker_mapping_does_not_imply_stronger(self):
        m = mapping("S(x, y) -> exists z . T(x, z)")
        assert not implies_st_tgd(m, StTgd.parse("S(x, y) -> T(x, y)"))

    def test_egd_can_rescue_implication(self):
        # T's columns are forced equal, so the swap is implied after all.
        m = mapping("S(x, y) -> T(x, y)", deps=[dep("T(u, v) -> u = v")])
        assert implies_st_tgd(m, StTgd.parse("S(x, y) -> T(y, x)"))

    def test_target_tgd_extends_the_chase(self):
        m = mapping("S(x, y) -> T(x, y)", deps=[dep("T(u, v) -> U(u, v)")])
        assert implies_st_tgd(m, StTgd.parse("S(x, y) -> U(x, y)"))
        assert not implies_st_tgd(m, StTgd.parse("S(x, y) -> U(y, x)"))


class TestImpliesTargetDependency:
    def test_transitive_copy(self):
        deps = [dep("T(u, v) -> U(u, v)")]
        assert implies_target_dependency(
            deps, dep("T(u, v) -> exists w . U(u, w)"), T
        )
        assert not implies_target_dependency(deps, dep("T(u, v) -> U(v, u)"), T)

    def test_egd_implication(self):
        deps = [dep("T(u, v) -> u = v")]
        assert implies_target_dependency(deps, dep("T(p, q) -> p = q"), T)
        assert not implies_target_dependency(
            [dep("U(u, v) -> u = v")], dep("T(p, q) -> p = q"), T
        )


class TestDecidableFragmentGuards:
    def test_side_conditions_are_rejected(self):
        m = mapping("S(x, y) -> T(x, y)")
        candidate = StTgd.from_parsed(parse_rule("S(x, y), x != y -> T(x, y)"))
        with pytest.raises(ContainmentUndecidable) as err:
            implies_st_tgd(m, candidate)
        assert err.value.reason == "side-conditions"

    def test_non_weakly_acyclic_deps_are_rejected(self):
        grow = dep("T(u, v) -> exists w . T(v, w)")
        m = mapping("S(x, y) -> T(x, y)", deps=[grow])
        with pytest.raises(ContainmentUndecidable) as err:
            implies_st_tgd(m, StTgd.parse("S(x, y) -> exists z . T(x, z)"))
        assert err.value.reason == "not-weakly-acyclic"
        assert err.value.witness is not None

    def test_vacuous_when_chase_fails(self):
        # The frozen premise forces a = b, but the candidate premise also
        # carries the constant: any S-instance satisfying it violates the
        # egd's unification with a constant pair... here the egd equates
        # the two frozen nulls, which is fine; use a failing variant:
        # two distinct constants forced equal.
        m = mapping(
            'S(x, y) -> T("a", "b")',
            deps=[dep("T(u, v) -> u = v")],
        )
        # Chasing ANY premise fires the constant tgd and then fails the
        # egd, so M has no solutions at all: implication holds vacuously.
        assert implies_st_tgd(m, StTgd.parse("S(x, y) -> T(y, x)"))


class TestContainment:
    def test_containment_and_equivalence(self):
        strong = mapping("S(x, y) -> T(x, y)")
        weak = mapping("S(x, y) -> exists z . T(x, z)")
        assert is_contained_in(strong, weak)
        assert not is_contained_in(weak, strong)
        assert not equivalent(strong, weak)
        renamed = mapping("S(p, q) -> T(p, q)")
        assert equivalent(strong, renamed)

    def test_certificate_lists_each_dependency(self):
        first = mapping("S(x, y) -> T(x, y)")
        second = mapping(
            "S(x, y) -> exists z . T(x, z)", "S(x, y) -> T(y, x)"
        )
        results = containment_certificate(first, second)
        assert [r.implied for r in results] == [True, False]
        assert results[0].kind == "st-tgd"

    def test_schema_mismatch_raises(self):
        other = SchemaMapping(
            schema(relation("R", "a")), T, [StTgd.parse("R(x) -> T(x, x)")]
        )
        with pytest.raises(ValueError):
            containment_certificate(mapping("S(x, y) -> T(x, y)"), other)

    def test_target_dependencies_participate(self):
        with_dep = mapping(
            "S(x, y) -> T(x, y)", deps=[dep("T(u, v) -> U(u, v)")]
        )
        without = mapping("S(x, y) -> T(x, y)")
        # without ⊑ with_dep fails: with_dep's target tgd is not implied.
        assert not is_contained_in(without, with_dep)
        assert is_contained_in(with_dep, without)


class TestRedundancy:
    def test_duplicate_is_redundant_both_ways(self):
        m = mapping("S(x, y) -> T(x, y)", "S(p, q) -> T(p, q)")
        assert redundant_tgds(m) == [0, 1]

    def test_prune_keeps_one_of_an_equivalent_pair(self):
        m = mapping("S(x, y) -> T(x, y)", "S(p, q) -> T(p, q)")
        pruned, dropped = prune_redundant(m)
        assert dropped == [0]
        assert len(pruned.tgds) == 1
        assert equivalent(m, pruned)

    def test_projection_of_stronger_tgd_is_pruned(self):
        m = mapping(
            "S(x, y) -> T(x, y)",
            "S(x, y) -> exists z . T(x, z)",
        )
        pruned, dropped = prune_redundant(m)
        assert dropped == [1]
        assert [t.to_text() for t in pruned.tgds] == ["S(x, y) -> T(x, y)"]

    def test_independent_tgds_are_kept(self):
        m = mapping("S(x, y) -> T(x, y)", "S(x, y) -> U(x, y)")
        assert redundant_tgds(m) == []
        pruned, dropped = prune_redundant(m)
        assert dropped == [] and pruned is m


class TestSaturate:
    def test_fk_shape_folds_into_tgds(self):
        m = mapping("S(x, y) -> T(x, y)", deps=[dep("T(u, v) -> U(u, v)")])
        saturated = saturate(m)
        assert not saturated.target_dependencies
        src = instance(S, {"S": [["1", "2"]]})
        assert homomorphically_equivalent(
            chase(m, src).solution, universal_solution(saturated, src)
        )

    def test_existential_fk_cascade(self):
        m = mapping(
            "S(x, y) -> T(x, y)",
            deps=[dep("T(u, v) -> exists w . U(v, w)")],
        )
        saturated = saturate(m)
        src = instance(S, {"S": [["1", "2"], ["2", "3"]]})
        assert homomorphically_equivalent(
            chase(m, src).solution, universal_solution(saturated, src)
        )

    def test_egds_are_unsupported(self):
        m = mapping("S(x, y) -> T(x, y)", deps=[dep("T(u, v) -> u = v")])
        with pytest.raises(SaturationUnsupported) as err:
            saturate(m)
        assert err.value.reason == "egd"

    def test_joint_premises_are_unsupported(self):
        m = mapping(
            "S(x, y) -> T(x, y)",
            deps=[dep("T(u, v), T(v, w) -> U(u, w)")],
        )
        with pytest.raises(SaturationUnsupported) as err:
            saturate(m)
        assert err.value.reason == "joint-premise"
