"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so editable
installs work on environments whose setuptools predates native PEP 660
wheel support (no `wheel` package available offline).
"""

from setuptools import setup

setup()
