"""A tour of mapping plans: statistics, optimization, and policy gestures.

The paper's Section 4 analogy in action: the same mapping compiled (a)
naively and (b) with gathered statistics, the resulting plans printed
side by side, and the "user gesture" questions a mapping designer would
be asked.

Run:  python examples/show_plan_tour.py
"""

import time

from repro import (
    ExchangeEngine,
    SchemaMapping,
    Statistics,
    instance,
    relation,
    schema,
)
from repro.compiler import PlannerConfig


def main() -> None:
    source = schema(
        relation("Order", "oid", "cust", "item"),
        relation("Customer", "cust", "region"),
        relation("Item", "item", "category"),
    )
    target = schema(relation("Report", "oid", "region", "category"))
    mapping = SchemaMapping.parse(
        source,
        target,
        "Order(o, c, i), Customer(c, r), Item(i, k) -> Report(o, r, k)",
    )

    orders = 600
    data = instance(
        source,
        {
            "Order": [
                [f"o{i}", f"c{i % 40}", f"i{i % 25}"] for i in range(orders)
            ],
            "Customer": [[f"c{j}", f"r{j % 4}"] for j in range(40)],
            "Item": [[f"i{j}", f"k{j % 6}"] for j in range(25)],
        },
    )
    stats = Statistics.gather(data)
    print("gathered statistics:", stats)

    naive = ExchangeEngine.compile(
        mapping, stats, config=PlannerConfig(optimize=False)
    )
    optimized = ExchangeEngine.compile(mapping, stats)

    print("\n=== naive plan (textual order, nested loops) ===")
    print(naive.show_plan())
    print("\n=== optimized plan (greedy order, hash joins) ===")
    print(optimized.show_plan())

    for label, engine in (("naive", naive), ("optimized", optimized)):
        start = time.perf_counter()
        out = engine.exchange(data)
        elapsed = time.perf_counter() - start
        print(f"\n{label:>9}: exchanged {out.size()} facts in {elapsed * 1000:.1f} ms")

    print("\n=== the plan's user gestures ===")
    for question in optimized.policy_questions():
        print(" •", question)


if __name__ == "__main__":
    main()
