"""Hospital exchange: certain answers, composition and recovery in one tour.

Healthcare is one of the paper's motivating domains.  This example runs a
three-hop scenario:

1. a ward system exchanges patient data into a charting system (with
   existential attending-physician placeholders → labelled nulls);
2. *certain answers* separate what the exchanged data guarantees from
   what it merely allows;
3. the charting mapping composes with a billing mapping (mapping
   composition, Example 2 machinery);
4. a *maximum recovery* answers "which ward states could have produced
   this chart?" (Example 3 machinery).

Run:  python examples/hospital_exchange.py
"""

from repro import (
    SchemaMapping,
    certain_answers,
    compose,
    instance,
    is_recovery,
    maximum_recovery,
    recovered_sources,
    relation,
    schema,
    universal_solution,
)
from repro.logic import Var, parse_conjunction


def main() -> None:
    # --- 1. ward → chart exchange ---------------------------------------
    ward = schema(
        relation("Patient", "pid", "name", "ward"),
        relation("Transfer", "pid", "new_ward"),
    )
    chart = schema(relation("Chart", "pid", "name", "doctor"))
    to_chart = SchemaMapping.parse(
        ward,
        chart,
        "Patient(p, n, w) -> exists d . Chart(p, n, d)",
    )
    ward_db = instance(
        ward,
        {
            "Patient": [[7, "Ines", "W1"], [8, "Joao", "W2"]],
            "Transfer": [[7, "W3"]],
        },
    )
    charts = universal_solution(to_chart, ward_db)
    print("=== charting system after exchange ===")
    for fact in charts.facts():
        print(" ", fact)

    # --- 2. certain answers ----------------------------------------------
    q_patients = parse_conjunction("Chart(p, n, d)")
    certain_names = certain_answers(to_chart, ward_db, q_patients, [Var("n")])
    certain_doctors = certain_answers(
        to_chart, ward_db, q_patients, [Var("n"), Var("d")]
    )
    print("\ncertain 'who has a chart':", sorted(map(repr, certain_names)))
    print("certain 'who is treated by whom':", sorted(map(repr, certain_doctors)))
    print("(the doctor column is existential, so no doctor fact is certain)")

    # --- 3. compose with billing ------------------------------------------
    billing = schema(relation("Invoice", "pid", "doctor"))
    to_billing = SchemaMapping.parse(
        chart, billing, "Chart(p, n, d) -> Invoice(p, d)"
    )
    composed = compose(to_chart, to_billing)
    print("\n=== ward → billing, composed symbolically ===")
    print(composed)
    invoices = (
        composed.chase(ward_db)
        if hasattr(composed, "chase")
        else universal_solution(composed, ward_db)
    )
    print("invoices:", sorted(map(repr, invoices.facts())))

    # --- 4. recovery: what could the ward have looked like? ----------------
    recovery = maximum_recovery(to_chart)
    print("\n=== maximum recovery of the ward → chart mapping ===")
    print(recovery)
    candidates = [
        ward_db,
        instance(ward, {"Patient": [[7, "Ines", "W9"], [8, "Joao", "W9"]]}),
        instance(ward, {"Patient": [[7, "Ines", "W1"]]}),
    ]
    admitted = recovered_sources(to_chart, recovery, ward_db, candidates)
    print("recovery verified:", is_recovery(to_chart, recovery, [ward_db]))
    print("ward states compatible with the exchanged charts:")
    for candidate in admitted:
        print("  -", candidate)
    print(
        "(ward assignments were dropped by the exchange, so any ward "
        "labelling is admitted — but the patient set must cover the charts)"
    )


if __name__ == "__main__":
    main()
