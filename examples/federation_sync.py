"""Federated sync via a cospan of exchange lenses (paper, Section 5).

Two company systems — an HR database and a facilities roster — never talk
directly.  Each carries a compiled mapping *into* a shared Directory
interface; a cospan synchronizer pushes either side's interface view into
the other.  This is the "enterprise interoperation" pattern the paper's
conclusion points at (Johnson's half-duplex interoperations).

Run:  python examples/federation_sync.py
"""

from repro import (
    ExchangeEngine,
    Fact,
    SchemaMapping,
    constant,
    instance,
    relation,
    schema,
)
from repro.lenses import CospanSynchronizer


def main() -> None:
    interface = schema(relation("Directory", "name", "site"))

    hr_schema = schema(
        relation("Employee", "eid", "name", "dept"),
        relation("Department", "dept", "site"),
    )
    hr_mapping = SchemaMapping.parse(
        hr_schema,
        interface,
        "Employee(e, n, d), Department(d, l) -> Directory(n, l)",
    )
    facilities_schema = schema(relation("Badge", "name", "site", "code"))
    facilities_mapping = SchemaMapping.parse(
        facilities_schema, interface, "Badge(n, l, c) -> Directory(n, l)"
    )

    hr_lens = ExchangeEngine.compile(hr_mapping).lens
    facilities_lens = ExchangeEngine.compile(facilities_mapping).lens
    sync = CospanSynchronizer(hr_lens, facilities_lens)

    hr_db = instance(
        hr_schema,
        {
            "Employee": [[1, "ann", "eng"], [2, "bob", "ops"]],
            "Department": [["eng", "berlin"], ["ops", "lisbon"]],
        },
    )
    facilities_db = instance(
        facilities_schema, {"Badge": [["ann", "berlin", "B-071"]]}
    )

    print("consistent before sync:", sync.consistent(hr_db, facilities_db))

    # HR is authoritative today: push HR's interface view into facilities.
    facilities_db = sync.sync_right(hr_db, facilities_db)
    print("\n=== facilities after syncing from HR ===")
    for fact in facilities_db.facts():
        print(" ", fact)
    print("consistent now:", sync.consistent(hr_db, facilities_db))

    # Facilities registers a contractor; push back the other way.
    facilities_db = facilities_db.with_facts(
        [Fact("Badge", (constant("zoe"), constant("rio"), constant("B-099")))]
    )
    hr_db = sync.sync_left(facilities_db, hr_db)
    print("\n=== HR after syncing from facilities ===")
    for fact in hr_db.facts():
        print(" ", fact)
    print("consistent again:", sync.consistent(hr_db, facilities_db))


if __name__ == "__main__":
    main()
