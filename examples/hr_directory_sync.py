"""HR directory sync: visual mapping, show plan, bidirectional session.

A realistic multi-table exchange in the style of the paper's Section 4
workflow:

1. an HR admin draws a *visual* correspondence (Clio-style) between the
   HR database (Employee ⋈ Department) and the company directory;
2. the diagram compiles to st-tgds, then to a statistics-informed
   mapping plan whose operator tree is inspectable ("show plan");
3. the compiled lens runs a *symmetric* synchronization session: edits on
   either side propagate to the other.

Run:  python examples/hr_directory_sync.py
"""

from repro import (
    ExchangeEngine,
    Fact,
    Hints,
    Statistics,
    VisualMapping,
    constant,
    instance,
    relation,
    schema,
)
from repro.rlens import ConstantPolicy


def build_visual_mapping(source, target) -> VisualMapping:
    """Step 1: the box-and-line diagram (Figure 1 style)."""
    visual = VisualMapping(source, target)

    directory = visual.correspondence("directory")
    directory.source("Employee", "Department").target("Directory")
    directory.join("Employee.dept", "Department.dept")
    directory.arrow("Employee.eid", "Directory.eid")
    directory.arrow("Employee.name", "Directory.name")
    directory.arrow("Department.site", "Directory.site")

    orgchart = visual.correspondence("orgchart")
    orgchart.source("Employee", "Department").target("OrgChart")
    orgchart.join("Employee.dept", "Department.dept")
    orgchart.arrow("Employee.eid", "OrgChart.eid")
    orgchart.arrow("Department.head", "OrgChart.head")
    return visual


def main() -> None:
    source = schema(
        relation("Employee", "eid", "name", "dept", "salary"),
        relation("Department", "dept", "head", "site"),
    )
    target = schema(
        relation("Directory", "eid", "name", "site"),
        relation("OrgChart", "eid", "head"),
    )
    hr_db = instance(
        source,
        {
            "Employee": [
                [1, "Alice", "eng", 120],
                [2, "Bob", "eng", 110],
                [3, "Carol", "sales", 90],
            ],
            "Department": [
                ["eng", "Dana", "Berlin"],
                ["sales", "Eve", "Lisbon"],
            ],
        },
    )

    # Steps 1–2: diagram → st-tgds.
    mapping = build_visual_mapping(source, target).compile()
    print("=== compiled st-tgds ===")
    for tgd in mapping.tgds:
        print(" ", tgd)

    # Step 3: tgds → plan → lens, with hints for the backward direction.
    hints = Hints()
    hints.set_column_policy("Employee", "salary", ConstantPolicy(0))
    engine = ExchangeEngine.compile(mapping, Statistics.gather(hr_db), hints)
    print("\n=== mapping plan ===")
    print(engine.show_plan())

    # Symmetric session: neither side is master.
    session = engine.symmetric_session()
    directory, complement = session.putr(hr_db, session.missing)
    print("\n=== directory side after initial sync ===")
    for fact in directory.facts():
        print(" ", fact)

    # The directory side hires someone (a Directory + OrgChart pair).
    edited = directory.with_facts(
        [
            Fact("Directory", (constant(4), constant("Dan"), constant("Berlin"))),
        ]
    )
    hr_db2, complement = session.putl(edited, complement)
    print("\n=== HR side after the directory-side hire ===")
    for fact in hr_db2.facts():
        print(" ", fact)

    # The HR side gives Carol a new department; push right again.
    hr_db3 = hr_db2.without_facts(
        [Fact("Employee", (constant(3), constant("Carol"), constant("sales"), constant(90)))]
    ).with_facts(
        [Fact("Employee", (constant(3), constant("Carol"), constant("eng"), constant(90)))]
    )
    directory2, _ = session.putr(hr_db3, complement)
    print("\n=== directory side after the HR-side transfer ===")
    for fact in directory2.facts():
        print(" ", fact)


if __name__ == "__main__":
    main()
