"""Schema evolution (Figure 2), solved both ways.

A mapping M : HR → Directory exists; the HR schema evolves (table rename,
column rename, a new column).  The paper offers two routes to relate the
*evolved* schema to the directory:

* route (a) — "invert the evolution and compose": (M′)⁻¹ ∘ M, using the
  maximum-recovery machinery;
* route (b) — "propagate the evolution primitives through the mapping"
  (channels), producing an evolved mapping and, for lossy steps, an
  evolved *target* schema.

This example runs both and shows they agree — and shows route (b)'s extra
power on a lossy evolution step.

Run:  python examples/schema_evolution.py
"""

from repro import constant, instance, relation, schema
from repro.channels import (
    AddColumn,
    DropColumn,
    RenameColumn,
    RenameTable,
    evolution_mapping,
    migrate,
    propagate_all,
)
from repro.mapping import SchemaMapping, evolve_source, universal_solution
from repro.relational import homomorphically_equivalent
from repro.relational.schema import Attribute


def main() -> None:
    source = schema(
        relation("Employee", "eid", "name", "dept"),
        relation("Department", "dept", "site"),
    )
    target = schema(relation("Directory", "eid", "name", "site"))
    mapping = SchemaMapping.parse(
        source,
        target,
        "Employee(e, n, d), Department(d, l) -> Directory(e, n, l)",
    )
    hr_db = instance(
        source,
        {
            "Employee": [[1, "Alice", "eng"], [2, "Bob", "sales"]],
            "Department": [["eng", "Berlin"], ["sales", "Lisbon"]],
        },
    )

    # The evolution: three primitives, expressed once, used by both routes.
    evolution = [
        RenameTable("Employee", "Staff"),
        RenameColumn("Staff", "name", "full_name"),
        AddColumn("Staff", Attribute("badge"), constant("none")),
    ]
    evolved_db = migrate(evolution, hr_db)
    print("=== evolved HR instance ===")
    for fact in evolved_db.facts():
        print(" ", fact)

    # --- route (a): invert ∘ compose ------------------------------------
    evolution_as_mapping = evolution_mapping(evolution, source)
    evolved = evolve_source(mapping, evolution_as_mapping)
    via_a = evolved.exchange(evolved_db)
    print("\n=== route (a): (M′)⁻¹ ∘ M ===")
    print("inverse evolution mapping:")
    for tgd in evolved.inverse_evolution.tgds:
        print("  ", tgd)
    print("exchanged:", sorted(map(repr, via_a.facts())))

    # --- route (b): channel propagation -----------------------------------
    propagated = propagate_all(mapping, evolution)
    via_b = universal_solution(propagated.mapping, evolved_db)
    print("\n=== route (b): channels ===")
    print("evolved mapping:")
    for tgd in propagated.mapping.tgds:
        print("  ", tgd)
    print("exchanged:", sorted(map(repr, via_b.facts())))

    print("\nroutes agree:", homomorphically_equivalent(via_a, via_b))

    # --- a lossy step: only route (b) can evolve the *target* -------------
    lossy = DropColumn("Department", "site")
    result = propagate_all(mapping, [lossy])
    print("\n=== lossy evolution: DropColumn(Department.site) ===")
    print("notes:", *result.notes, sep="\n  ")
    print("induced target evolution:", result.induced)
    print("evolved target schema:", result.mapping.target)
    lossy_db = migrate([lossy], hr_db)
    out = universal_solution(result.mapping, lossy_db)
    print("exchange under the evolved schemas:", sorted(map(repr, out.facts())))


if __name__ == "__main__":
    main()
