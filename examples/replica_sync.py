"""Replica synchronization with conflict handling.

The paper's introduction: "With networked and cloud-enabled applications,
one wants such transformations to be bidirectional to enable updates to
propagate between instances."  This example runs a
:class:`~repro.compiler.session.SyncSession` between an operational
employee table and a reporting roster, including the hard case: a replica
that went offline, kept editing against a stale baseline, and comes back
colliding with a newer decision.

Run:  python examples/replica_sync.py
"""

from repro import (
    ExchangeEngine,
    Fact,
    SchemaMapping,
    constant,
    instance,
    relation,
    schema,
)
from repro.compiler import ConflictPolicy, SyncConflict, SyncSession


def main() -> None:
    source_schema = schema(relation("Emp", "name", "dept"))
    target_schema = schema(relation("Roster", "name", "dept"))
    mapping = SchemaMapping.parse(
        source_schema, target_schema, "Emp(n, d) -> Roster(n, d)"
    )
    engine = ExchangeEngine.compile(mapping)

    hr = instance(source_schema, {"Emp": [["ann", "eng"], ["bob", "ops"]]})
    session = SyncSession(engine, hr)
    print("=== initial roster ===")
    for fact in session.target.facts():
        print(" ", fact)

    # Concurrent but compatible edits: HR hires cyd, reporting fixes bob.
    hr_edit = session.source.with_facts(
        [Fact("Emp", (constant("cyd"), constant("eng")))]
    )
    roster_edit = session.target.without_facts(
        [Fact("Roster", (constant("bob"), constant("ops")))]
    ).with_facts([Fact("Roster", (constant("bob"), constant("qa")))])
    outcome = session.synchronize(hr_edit, roster_edit)
    print("\n=== after a clean concurrent merge ===")
    for fact in outcome.target.facts():
        print(" ", fact)

    # The stale-replica case: a reporting replica snapshotted the roster
    # *before* cyd was hired, went offline, and independently added cyd on
    # its own — while HR, in the current round, is removing cyd again.
    cyd_roster = Fact("Roster", (constant("cyd"), constant("eng")))
    cyd_emp = Fact("Emp", (constant("cyd"), constant("eng")))
    stale_baseline = session.target.without_facts([cyd_roster])
    replica = stale_baseline.with_facts([cyd_roster])  # replica's own add
    hr_now = session.source.without_facts([cyd_emp])   # HR removes cyd

    try:
        session.synchronize(
            hr_now, replica,
            policy=ConflictPolicy.FAIL,
            target_baseline=stale_baseline,
        )
    except SyncConflict as conflict:
        print("\n=== conflict detected (FAIL policy) ===")
        for c in conflict.conflicts:
            print(" ", c)

    outcome = session.synchronize(
        hr_now, replica,
        policy=ConflictPolicy.SOURCE_WINS,
        target_baseline=stale_baseline,
    )
    print("\n=== resolved with SOURCE_WINS ===")
    for c in outcome.conflicts:
        print("  overridden:", c)
    for fact in outcome.target.facts():
        print(" ", fact)


if __name__ == "__main__":
    main()
