"""Quickstart: the introduction's Person1 → Person2 exchange, end to end.

The paper opens with "a trivial example of mapping data from a schema
Person1(Id, Name, Age, City) to another schema Person2(Id, Name, Salary,
ZipCode)" and asks:

* How does one populate the Salary field?   → a policy question
* How does one populate the ZipCode field?  → here: a city→zip lookup
* How are changes to Person2 migrated back? → the lens's put
* Is the Age field preserved?               → a backward policy question

Run:  python examples/quickstart.py
"""

from repro import (
    ExchangeEngine,
    Fact,
    Hints,
    SchemaMapping,
    Statistics,
    constant,
    instance,
    relation,
    schema,
)
from repro.rlens import ConstantPolicy, EnvironmentPolicy


def main() -> None:
    # 1. Schemas: the paper's Person1/Person2, plus the city→zip lookup
    #    table that lets the mapping fill ZipCode from City.
    source = schema(
        relation("Person1", "id", "name", "age", "city"),
        relation("CityZip", "city", "zipcode"),
    )
    target = schema(relation("Person2", "id", "name", "salary", "zipcode"))

    # 2. The mapping, written the way Section 2 writes st-tgds.  Salary is
    #    existential — the mapping has no information about it.
    mapping = SchemaMapping.parse(
        source,
        target,
        "Person1(i, n, a, c), CityZip(c, z) -> exists s . Person2(i, n, s, z)",
    )

    data = instance(
        source,
        {
            "Person1": [
                [1, "Alice", 34, "Springfield"],
                [2, "Bob", 41, "Shelbyville"],
            ],
            "CityZip": [["Springfield", "49001"], ["Shelbyville", "49002"]],
        },
    )

    # 3. Compile: st-tgds → lens templates → plan.  Hints answer the
    #    backward policy questions ("Is the Age field preserved?" — we fill
    #    unknown ages with a constant and record who inserted the row).
    hints = Hints(environment={"user": "quickstart-demo"})
    hints.set_column_policy("Person1", "age", ConstantPolicy(0))
    hints.set_column_policy("Person1", "city", ConstantPolicy("Springfield"))
    hints.set_column_policy("CityZip", "city", ConstantPolicy("Springfield"))
    engine = ExchangeEngine.compile(mapping, Statistics.gather(data), hints)

    print("=== show plan ===")
    print(engine.show_plan())

    # 4. Forward exchange (the lens's get).
    exchanged = engine.exchange(data)
    print("\n=== exchanged target instance ===")
    for fact in exchanged.facts():
        print(" ", fact)

    # 5. Edit the target and push back (the lens's put): add a person who
    #    only exists on the Person2 side.
    new_fact = Fact(
        "Person2",
        (constant(3), constant("Carol"), constant(90_000), constant("49001")),
    )
    edited = exchanged.with_facts([new_fact])
    updated_source = engine.put_back(edited, data)
    print("\n=== source after pushing the Person2 edit back ===")
    for fact in updated_source.facts():
        print(" ", fact)

    # 6. The round trip: re-exchanging the updated source re-derives the
    #    edit (salary is regenerated canonically — it is existential).
    final = engine.exchange(updated_source)
    carol_rows = [r for r in final.rows("Person2") if r[0] == constant(3)]
    print("\n=== Carol after the round trip ===")
    print(" ", carol_rows[0])


if __name__ == "__main__":
    main()
